package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"msod/internal/adi"
	"msod/internal/bctx"
	"msod/internal/rbac"
)

// oracle is an independent, deliberately naive implementation of the
// §4.2 semantics (as pinned down in DESIGN.md §5): history is a flat
// record list, every query recomputes from scratch, no indexes, no
// shared store code. The differential test below drives the real engine
// and the oracle with identical random policies and request streams and
// requires bit-identical decisions and history sizes — so a bug in the
// engine's store interplay (context refcounts, purge bookkeeping,
// binding, commit ordering) diverges loudly.
type oracle struct {
	policies []Policy
	records  []oRecord
}

type oRecord struct {
	user   rbac.UserID
	roles  []rbac.RoleName
	op     rbac.Operation
	target rbac.Object
	ctx    bctx.Name
}

func (o *oracle) evaluate(req Request) (Effect, error) {
	type action struct {
		purge   bool
		pattern bctx.Name
		adds    []oRecord
	}
	var actions []action

	for _, p := range o.policies {
		matched, err := bctx.MatchInstance(p.Context, req.Context)
		if err != nil {
			return Deny, err
		}
		if !matched {
			continue
		}
		bound, err := bctx.Bind(p.Context, req.Context)
		if err != nil {
			return Deny, err
		}
		isLast := p.LastStep != nil && p.LastStep.Operation == req.Operation && p.LastStep.Target == req.Target

		// Step 3: any record (any user) within bound?
		active := false
		for _, r := range o.records {
			if ok, _ := bctx.MatchInstance(bound, r.ctx); ok {
				active = true
				break
			}
		}
		if !active {
			if p.FirstStep == nil ||
				(p.FirstStep.Operation == req.Operation && p.FirstStep.Target == req.Target) {
				if isLast {
					actions = append(actions, action{purge: true, pattern: bound})
				} else {
					actions = append(actions, action{adds: []oRecord{{
						user: req.User, roles: req.Roles, op: req.Operation,
						target: req.Target, ctx: req.Context,
					}}})
				}
			}
			continue
		}

		var pending []oRecord

		// Step 5: MMER.
		for _, rule := range p.MMER {
			var matchedRoles, remaining []rbac.RoleName
			for _, role := range rule.Roles {
				if containsRole(req.Roles, role) {
					matchedRoles = append(matchedRoles, role)
				} else {
					remaining = append(remaining, role)
				}
			}
			if len(matchedRoles) == 0 {
				continue
			}
			count := 0
			for _, role := range remaining {
				for _, r := range o.records {
					if r.user != req.User {
						continue
					}
					if ok, _ := bctx.MatchInstance(bound, r.ctx); !ok {
						continue
					}
					if containsRole(r.roles, role) {
						count++
						break
					}
				}
			}
			if count >= rule.Cardinality-len(matchedRoles) {
				return Deny, nil
			}
			for _, role := range matchedRoles {
				pending = append(pending, oRecord{
					user: req.User, roles: []rbac.RoleName{role},
					op: req.Operation, target: req.Target, ctx: req.Context,
				})
			}
		}

		// Step 6: MMEP (multiset counting).
		reqPriv := rbac.Permission{Operation: req.Operation, Object: req.Target}
		for _, rule := range p.MMEP {
			positions := map[rbac.Permission]int{}
			reqPositions := 0
			for _, priv := range rule.Privileges {
				if priv == reqPriv {
					reqPositions++
				} else {
					positions[priv]++
				}
			}
			if reqPositions == 0 {
				continue
			}
			if reqPositions > 1 {
				positions[reqPriv] = reqPositions - 1
			}
			count := 0
			for priv, nPos := range positions {
				have := 0
				for _, r := range o.records {
					if r.user != req.User || r.op != priv.Operation || r.target != priv.Object {
						continue
					}
					if ok, _ := bctx.MatchInstance(bound, r.ctx); ok {
						have++
					}
				}
				if have > nPos {
					have = nPos
				}
				count += have
			}
			if count >= rule.Cardinality-1 {
				return Deny, nil
			}
			pending = append(pending, oRecord{
				user: req.User, roles: req.Roles,
				op: req.Operation, target: req.Target, ctx: req.Context,
			})
		}

		if isLast {
			actions = append(actions, action{purge: true, pattern: bound})
		} else {
			actions = append(actions, action{adds: pending})
		}
	}

	// Commit in policy order.
	for _, a := range actions {
		if a.purge {
			kept := o.records[:0]
			for _, r := range o.records {
				if ok, _ := bctx.MatchInstance(a.pattern, r.ctx); !ok {
					kept = append(kept, r)
				}
			}
			o.records = kept
			continue
		}
		o.records = append(o.records, a.adds...)
	}
	return Grant, nil
}

// genPolicies builds 1..3 random valid policies over small vocabularies.
func genPolicies(r *rand.Rand) []Policy {
	roles := []rbac.RoleName{"R0", "R1", "R2", "R3"}
	ops := []rbac.Operation{"op0", "op1", "op2", "first", "last"}
	n := 1 + r.Intn(3)
	out := make([]Policy, 0, n)
	for i := 0; i < n; i++ {
		// Context: depth 1-2, values from {*, !, a, b}.
		depth := 1 + r.Intn(2)
		comps := make([]bctx.Component, depth)
		for d := range comps {
			vals := []string{bctx.AnyInstance, bctx.PerInstance, "a", "b"}
			comps[d] = bctx.Component{
				Type:  fmt.Sprintf("T%d", d),
				Value: vals[r.Intn(len(vals))],
			}
		}
		p := Policy{Context: bctx.MustName(comps...)}
		// MMER: 0-2 rules of 2-3 distinct roles.
		for k := 0; k < r.Intn(3); k++ {
			nr := 2 + r.Intn(2)
			perm := r.Perm(len(roles))[:nr]
			rule := MMERRule{Cardinality: 2 + r.Intn(nr-1)}
			for _, idx := range perm {
				rule.Roles = append(rule.Roles, roles[idx])
			}
			p.MMER = append(p.MMER, rule)
		}
		// MMEP: 0-2 rules of 2-3 privileges with possible duplicates.
		for k := 0; k < r.Intn(3); k++ {
			np := 2 + r.Intn(2)
			rule := MMEPRule{Cardinality: 2 + r.Intn(np-1)}
			for j := 0; j < np; j++ {
				rule.Privileges = append(rule.Privileges, rbac.Permission{
					Operation: ops[r.Intn(3)], Object: "t",
				})
			}
			p.MMEP = append(p.MMEP, rule)
		}
		if len(p.MMER)+len(p.MMEP) == 0 {
			p.MMER = []MMERRule{{Roles: []rbac.RoleName{"R0", "R1"}, Cardinality: 2}}
		}
		if r.Intn(2) == 0 {
			p.FirstStep = &Step{Operation: "first", Target: "t"}
		}
		if r.Intn(2) == 0 {
			p.LastStep = &Step{Operation: "last", Target: "t"}
		}
		if p.Validate() != nil {
			continue
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		out = []Policy{{
			Context: bctx.MustParse("T0=!"),
			MMER:    []MMERRule{{Roles: []rbac.RoleName{"R0", "R1"}, Cardinality: 2}},
		}}
	}
	return out
}

// TestQuickDifferentialOracle: the engine and the oracle agree on every
// decision and on the retained history size, under random policies and
// random request streams.
func TestQuickDifferentialOracle(t *testing.T) {
	roles := []rbac.RoleName{"R0", "R1", "R2", "R3"}
	ops := []rbac.Operation{"op0", "op1", "op2", "first", "last"}
	users := []rbac.UserID{"u0", "u1", "u2"}
	vals := []string{"a", "b", "c"}

	f := func(seed int64, steps uint8) bool {
		r := rand.New(rand.NewSource(seed))
		policies := genPolicies(r)
		store := adi.NewStore()
		eng, err := NewEngine(store, policies)
		if err != nil {
			return false
		}
		orc := &oracle{policies: policies}

		for i := 0; i < int(steps); i++ {
			nr := 1 + r.Intn(2)
			perm := r.Perm(len(roles))[:nr]
			reqRoles := make([]rbac.RoleName, nr)
			for j, idx := range perm {
				reqRoles[j] = roles[idx]
			}
			req := Request{
				User:      users[r.Intn(len(users))],
				Roles:     reqRoles,
				Operation: ops[r.Intn(len(ops))],
				Target:    "t",
				Context: bctx.MustName(
					bctx.Component{Type: "T0", Value: vals[r.Intn(len(vals))]},
					bctx.Component{Type: "T1", Value: vals[r.Intn(len(vals))]},
				),
			}
			got, err := eng.Evaluate(req)
			if err != nil {
				t.Logf("engine error: %v", err)
				return false
			}
			want, err := orc.evaluate(req)
			if err != nil {
				t.Logf("oracle error: %v", err)
				return false
			}
			if got.Effect != want {
				t.Logf("seed %d step %d: engine=%v oracle=%v req=%+v policies=%+v",
					seed, i, got.Effect, want, req, policies)
				return false
			}
			if store.Len() != len(orc.records) {
				t.Logf("seed %d step %d: engine store %d records, oracle %d",
					seed, i, store.Len(), len(orc.records))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}
