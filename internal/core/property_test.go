package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"msod/internal/adi"
	"msod/internal/bctx"
	"msod/internal/rbac"
)

// TestQuickSafetyInvariant drives random request streams through an
// engine with one MMER and one MMEP policy and asserts the paper's
// safety property after every decision: within any bound business
// context, no user's *granted* history ever supports ForbiddenCardinality
// or more rule positions.
//
// The invariant is computed from scratch from a shadow log of granted
// requests, independently of the engine's own store, so a bookkeeping bug
// in either place fails the test.
func TestQuickSafetyInvariant(t *testing.T) {
	roles := []rbac.RoleName{"Teller", "Auditor", "Clerk"}
	ops := []rbac.Operation{"approve", "combine", "other"}
	users := []rbac.UserID{"u0", "u1"}
	contexts := []string{"P=a", "P=b", "P=a, Q=x"}

	mmer := MMERRule{Roles: []rbac.RoleName{"Teller", "Auditor"}, Cardinality: 2}
	approve := rbac.Permission{Operation: "approve", Object: "t"}
	combine := rbac.Permission{Operation: "combine", Object: "t"}
	mmep := MMEPRule{Privileges: []rbac.Permission{approve, approve, combine}, Cardinality: 2}
	policyCtx := bctx.MustParse("P=!")

	f := func(seed int64, steps uint8) bool {
		r := rand.New(rand.NewSource(seed))
		store := adi.NewStore()
		e, err := NewEngine(store, []Policy{{
			Context: policyCtx,
			MMER:    []MMERRule{mmer},
			MMEP:    []MMEPRule{mmep},
		}}, WithClock(func() time.Time { return time.Unix(0, 0) }))
		if err != nil {
			return false
		}

		// Shadow history: per user, per bound-context key.
		type hist struct {
			roles map[rbac.RoleName]bool
			privs map[rbac.Permission]int
		}
		shadow := map[string]*hist{}
		get := func(u rbac.UserID, key string) *hist {
			k := string(u) + "|" + key
			h := shadow[k]
			if h == nil {
				h = &hist{roles: map[rbac.RoleName]bool{}, privs: map[rbac.Permission]int{}}
				shadow[k] = h
			}
			return h
		}

		for i := 0; i < int(steps); i++ {
			req := Request{
				User:      users[r.Intn(len(users))],
				Roles:     []rbac.RoleName{roles[r.Intn(len(roles))]},
				Operation: ops[r.Intn(len(ops))],
				Target:    "t",
				Context:   bctx.MustParse(contexts[r.Intn(len(contexts))]),
			}
			dec, err := e.Evaluate(req)
			if err != nil {
				return false
			}
			if dec.Effect != Grant {
				continue
			}
			// Record the grant in the shadow under the bound context (the
			// first component value of the request context).
			bound, err := bctx.Bind(policyCtx, req.Context)
			if err != nil {
				return false
			}
			h := get(req.User, bound.Key())
			for _, role := range req.Roles {
				h.roles[role] = true
			}
			h.privs[rbac.Permission{Operation: req.Operation, Object: req.Target}]++

			// Invariant 1 (MMER): a user's granted history never contains
			// the full forbidden role set in one bound context.
			n := 0
			for _, role := range mmer.Roles {
				if h.roles[role] {
					n++
				}
			}
			if n >= mmer.Cardinality {
				return false
			}
			// Invariant 2 (MMEP): the history supports fewer than m rule
			// positions (multiset semantics: each position needs its own
			// granted execution).
			positions := map[rbac.Permission]int{}
			for _, p := range mmep.Privileges {
				positions[p]++
			}
			supported := 0
			for p, nPos := range positions {
				got := h.privs[p]
				if got > nPos {
					got = nPos
				}
				supported += got
			}
			if supported >= mmep.Cardinality {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestConcurrentEvaluateAtomicity fires the same conflicting pair of
// requests from many goroutines; the engine's internal serialisation
// must guarantee that per user and context instance, at most one of the
// two conflicting roles is ever granted.
func TestConcurrentEvaluateAtomicity(t *testing.T) {
	store := adi.NewStore()
	e, err := NewEngine(store, bankPolicies())
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 16
	var wg sync.WaitGroup
	grants := make([][2]int, goroutines) // per-user [teller, auditor] grant counts
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			user := fmt.Sprintf("user%d", g%4) // users shared across goroutines
			for i := 0; i < 25; i++ {
				role := "Teller"
				slot := 0
				if (g+i)%2 == 1 {
					role = "Auditor"
					slot = 1
				}
				dec, err := e.Evaluate(bankReq(user, role, "op", "York", "2006"))
				if err != nil {
					t.Error(err)
					return
				}
				if dec.Effect == Grant {
					grants[g][slot]++
				}
			}
		}(g)
	}
	wg.Wait()

	// Verify from the store: no user has both Teller and Auditor records
	// in the 2006 period.
	pattern := bctx.MustParse("Branch=*, Period=2006")
	for u := 0; u < 4; u++ {
		user := rbac.UserID(fmt.Sprintf("user%d", u))
		hasT, _ := store.UserHasRole(user, pattern, "Teller")
		hasA, _ := store.UserHasRole(user, pattern, "Auditor")
		if hasT && hasA {
			t.Errorf("user%d holds both conflicting roles in one period", u)
		}
	}
}

// TestQuickLastStepAlwaysClearsInstance: whatever happened before, a
// granted last step leaves zero records in the bound instance.
func TestQuickLastStepAlwaysClearsInstance(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		r := rand.New(rand.NewSource(seed))
		store := adi.NewStore()
		e, err := NewEngine(store, bankPolicies())
		if err != nil {
			return false
		}
		users := []string{"a", "b", "c"}
		branches := []string{"York", "Leeds"}
		for i := 0; i < int(steps); i++ {
			role := "Teller"
			if r.Intn(2) == 0 {
				role = "Auditor"
			}
			_, err := e.Evaluate(bankReq(users[r.Intn(3)], role, "op", branches[r.Intn(2)], "2006"))
			if err != nil {
				return false
			}
		}
		dec, err := e.Evaluate(bankReq("closer", "Auditor", "CommitAudit", "York", "2006"))
		if err != nil || dec.Effect != Grant {
			// CommitAudit may be denied if "closer" already told in 2006 —
			// not possible here since closer is fresh.
			return false
		}
		active, err := store.ContextActive(bctx.MustParse("Branch=*, Period=2006"))
		return err == nil && !active
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
