package core

import (
	"testing"

	"msod/internal/adi"
	"msod/internal/bctx"
	"msod/internal/rbac"
)

// tripleRule returns MMEP({p,p,p},3).
func triplePolicies() []Policy {
	p := rbac.Permission{Operation: "approve", Object: "t"}
	return []Policy{{
		Context: bctx.MustParse("P=!"),
		MMEP: []MMEPRule{{
			Privileges:  []rbac.Permission{p, p, p},
			Cardinality: 3,
		}},
	}}
}

// pairPolicies returns MMEP({p,p},2) — the paper's own repetition cap.
func pairPolicies() []Policy {
	p := rbac.Permission{Operation: "approve", Object: "t"}
	return []Policy{{
		Context: bctx.MustParse("P=!"),
		MMEP: []MMEPRule{{
			Privileges:  []rbac.Permission{p, p},
			Cardinality: 2,
		}},
	}}
}

// grantsBeforeDeny counts how many consecutive executions of "approve"
// are granted before the first denial.
func grantsBeforeDeny(t *testing.T, policies []Policy, opts ...Option) int {
	t.Helper()
	e, err := NewEngine(adi.NewStore(), policies, opts...)
	if err != nil {
		t.Fatal(err)
	}
	req := Request{User: "u", Roles: []rbac.RoleName{"Manager"},
		Operation: "approve", Target: "t", Context: bctx.MustParse("P=1")}
	for i := 0; i < 10; i++ {
		dec, err := e.Evaluate(req)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Effect == Deny {
			return i
		}
	}
	t.Fatal("never denied")
	return -1
}

// TestNaiveCountingAblation pins down exactly where the two counting
// semantics agree and diverge — the E11 ablation in test form.
func TestNaiveCountingAblation(t *testing.T) {
	// MMEP({p,p},2): both semantics cap at one execution (the paper's
	// use case is insensitive to the choice).
	if got := grantsBeforeDeny(t, pairPolicies()); got != 1 {
		t.Errorf("pair/multiset: %d grants, want 1", got)
	}
	if got := grantsBeforeDeny(t, pairPolicies(), WithNaiveMMEPCounting()); got != 1 {
		t.Errorf("pair/naive: %d grants, want 1", got)
	}
	// MMEP({p,p,p},3): multiset allows two executions (m-1 positions of
	// p are coverable), naive under-allows at one.
	if got := grantsBeforeDeny(t, triplePolicies()); got != 2 {
		t.Errorf("triple/multiset: %d grants, want 2", got)
	}
	if got := grantsBeforeDeny(t, triplePolicies(), WithNaiveMMEPCounting()); got != 1 {
		t.Errorf("triple/naive: %d grants, want 1", got)
	}
}

// TestNaiveCountingPaperExamples: the full Example 2 behaves identically
// under both semantics (no privilege is listed more than twice).
func TestNaiveCountingPaperExamples(t *testing.T) {
	for _, naive := range []bool{false, true} {
		var opts []Option
		if naive {
			opts = append(opts, WithNaiveMMEPCounting())
		}
		e, err := NewEngine(adi.NewStore(), taxPolicies(), opts...)
		if err != nil {
			t.Fatal(err)
		}
		grant(t, e, taxReq("c1", "Clerk", "prepareCheck", checkTarget, "Leeds", "p1"))
		grant(t, e, taxReq("m1", "Manager", "approve/disapproveCheck", checkTarget, "Leeds", "p1"))
		deny(t, e, taxReq("m1", "Manager", "approve/disapproveCheck", checkTarget, "Leeds", "p1"))
		grant(t, e, taxReq("m2", "Manager", "approve/disapproveCheck", checkTarget, "Leeds", "p1"))
		deny(t, e, taxReq("m1", "Manager", "combineResults", resultsTarget, "Leeds", "p1"))
		grant(t, e, taxReq("m3", "Manager", "combineResults", resultsTarget, "Leeds", "p1"))
		deny(t, e, taxReq("c1", "Clerk", "confirmCheck", auditTarget, "Leeds", "p1"))
		grant(t, e, taxReq("c2", "Clerk", "confirmCheck", auditTarget, "Leeds", "p1"))
	}
}
