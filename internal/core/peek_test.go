package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"msod/internal/adi"
	"msod/internal/bctx"
	"msod/internal/rbac"
)

func TestPeekDoesNotMutate(t *testing.T) {
	e, store := newEngine(t, bankPolicies())
	req := bankReq("alice", "Teller", "HandleCash", "York", "2006")

	dec, err := e.Peek(req)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Effect != Grant || dec.Recorded != 1 {
		t.Fatalf("peek = %+v", dec)
	}
	if store.Len() != 0 {
		t.Fatalf("peek wrote %d records", store.Len())
	}
	// Peeking repeatedly always gives the same answer (no hidden state).
	for i := 0; i < 3; i++ {
		dec, err = e.Peek(bankReq("alice", "Auditor", "Audit", "York", "2006"))
		if err != nil || dec.Effect != Grant {
			t.Fatalf("peek %d = %+v, %v (no history yet)", i, dec, err)
		}
	}

	// After a real grant, peek sees the conflict.
	grant(t, e, req)
	dec, err = e.Peek(bankReq("alice", "Auditor", "Audit", "York", "2006"))
	if err != nil || dec.Effect != Deny {
		t.Fatalf("peek after history = %+v, %v", dec, err)
	}
	if store.Len() != 1 {
		t.Fatalf("store len = %d", store.Len())
	}
}

func TestPeekLastStepDoesNotPurge(t *testing.T) {
	e, store := newEngine(t, bankPolicies())
	grant(t, e, bankReq("alice", "Teller", "HandleCash", "York", "2006"))
	before := store.Len()
	dec, err := e.Peek(bankReq("bob", "Auditor", "CommitAudit", "York", "2006"))
	if err != nil || dec.Effect != Grant {
		t.Fatalf("peek last step = %+v, %v", dec, err)
	}
	if store.Len() != before {
		t.Fatal("peek of a last step purged the store")
	}
}

// TestQuickPeekPredictsEvaluate: for any request against any reachable
// state, Peek's effect equals the immediately following Evaluate's
// effect (single-threaded, so no TOCTOU window).
func TestQuickPeekPredictsEvaluate(t *testing.T) {
	users := []rbac.UserID{"u0", "u1"}
	roles := []rbac.RoleName{"Teller", "Auditor"}
	branches := []string{"York", "Leeds"}

	f := func(seed int64, steps uint8) bool {
		r := rand.New(rand.NewSource(seed))
		e, err := NewEngine(adi.NewStore(), bankPolicies())
		if err != nil {
			return false
		}
		for i := 0; i < int(steps); i++ {
			role := roles[r.Intn(len(roles))]
			op, target := rbac.Operation("op"), rbac.Object("t")
			if r.Intn(10) == 0 {
				op, target = "CommitAudit", "audit"
			}
			req := Request{
				User:      users[r.Intn(len(users))],
				Roles:     []rbac.RoleName{role},
				Operation: op,
				Target:    target,
				Context: bctx.MustName(
					bctx.Component{Type: "Branch", Value: branches[r.Intn(len(branches))]},
					bctx.Component{Type: "Period", Value: "2006"},
				),
			}
			peek, err := e.Peek(req)
			if err != nil {
				return false
			}
			real, err := e.Evaluate(req)
			if err != nil {
				return false
			}
			if peek.Effect != real.Effect {
				return false
			}
			if peek.Recorded != real.Recorded {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
