package core

import (
	"testing"
	"time"

	"msod/internal/adi"
	"msod/internal/bctx"
	"msod/internal/rbac"
)

// TestAllOptionsCompose wires every engine option together — clock,
// hierarchy expander, naive counting, striping — and checks the
// composed engine still enforces the examples correctly.
func TestAllOptionsCompose(t *testing.T) {
	model := rbac.NewModel()
	for _, r := range []rbac.RoleName{"Teller", "Auditor", "HeadCashier"} {
		if err := model.AddRole(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := model.AddInheritance("HeadCashier", "Teller"); err != nil {
		t.Fatal(err)
	}

	store := adi.NewShardedStore(4)
	e, err := NewEngine(store, bankPolicies(),
		WithClock(fixedTestClock),
		WithRoleExpander(model.Closure),
		WithNaiveMMEPCounting(),
		WithStriping(4),
	)
	if err != nil {
		t.Fatal(err)
	}

	// Hierarchy expansion works under striping.
	grant(t, e, Request{User: "u", Roles: []rbac.RoleName{"HeadCashier"},
		Operation: "HandleCash", Target: "till",
		Context: bctx.MustParse("Branch=York, Period=2006")})
	deny(t, e, Request{User: "u", Roles: []rbac.RoleName{"Auditor"},
		Operation: "Audit", Target: "ledger",
		Context: bctx.MustParse("Branch=Leeds, Period=2006")})

	// The striping self-conflict guard also sees expanded roles: a
	// request with HeadCashier + Auditor expands to include Teller and
	// is denied even on a fresh context instance.
	dec, err := e.Evaluate(Request{User: "v",
		Roles:     []rbac.RoleName{"HeadCashier", "Auditor"},
		Operation: "op", Target: "t",
		Context: bctx.MustParse("Branch=York, Period=2031")})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Effect != Deny {
		t.Fatal("expanded self-conflict granted on fresh context")
	}

	// Last-step purge (write-lock path) under the full option set.
	dec = grant(t, e, Request{User: "w", Roles: []rbac.RoleName{"Auditor"},
		Operation: "CommitAudit", Target: "http://audit.location.com/audit",
		Context: bctx.MustParse("Branch=York, Period=2006")})
	if dec.Purged == 0 {
		t.Fatal("commit purged nothing")
	}
	active, _ := store.ContextActive(bctx.MustParse("Branch=*, Period=2006"))
	if active {
		t.Fatal("period still active after commit")
	}
	// Records carry the fixed clock.
	grant(t, e, Request{User: "x", Roles: []rbac.RoleName{"Teller"},
		Operation: "HandleCash", Target: "till",
		Context: bctx.MustParse("Branch=York, Period=2007")})
	// ShardedStore has no UserRecords; verify through the recorder API.
	n, _ := store.CountUserRole("x", bctx.Universal, "Teller", 0)
	if n != 1 {
		t.Fatalf("records for x = %d", n)
	}
}

func fixedTestClock() time.Time {
	return time.Date(2006, 7, 1, 12, 0, 0, 0, time.UTC)
}
