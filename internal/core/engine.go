package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"msod/internal/adi"
	"msod/internal/bctx"
	"msod/internal/explain"
	"msod/internal/obsv"
	"msod/internal/rbac"
)

// Request is the MSoD-relevant slice of an access control decision
// request (§4.1): the user's stable ID, the roles activated for this
// request, the operation and target, and the business context instance.
type Request struct {
	// User is mandatory for MSoD (§4.1: "the user's ID becomes
	// mandatory so that the PDP can link together the user's sessions").
	User rbac.UserID
	// Roles are the user's activated roles for this request.
	Roles []rbac.RoleName
	// Operation and Target identify the requested privilege.
	Operation rbac.Operation
	Target    rbac.Object
	// Context is the current business context instance, supplied by the
	// PEP with every request.
	Context bctx.Name
}

// Validate checks the request can be evaluated.
func (r Request) Validate() error {
	if r.User == "" {
		return fmt.Errorf("core: request has empty user ID")
	}
	if !r.Context.IsInstance() {
		return fmt.Errorf("core: request context %q is not an instance", r.Context)
	}
	return nil
}

// Effect is the outcome of an MSoD evaluation.
type Effect int

const (
	// Grant means no MSoD constraint was violated; the decision has been
	// recorded in the retained ADI where applicable.
	Grant Effect = iota
	// Deny means a constraint was violated; the retained ADI is
	// unchanged.
	Deny
)

// String renders the effect.
func (e Effect) String() string {
	if e == Grant {
		return "grant"
	}
	return "deny"
}

// Denial explains which constraint denied a request.
type Denial struct {
	// PolicyContext is the policy's (unbound) business context.
	PolicyContext bctx.Name
	// BoundContext is the context after "!" binding to the request
	// instance — the scope in which the conflict was found.
	BoundContext bctx.Name
	// Rule identifies the violated constraint: "MMER[i]" or "MMEP[i]".
	Rule string
	// Held is the conflict count the algorithm found in the retained
	// history (conflicting roles already held, or conflicting privilege
	// positions already exercised) — the k that tripped the constraint.
	Held int
	// Cardinality is the rule's forbidden cardinality m.
	Cardinality int
	// Reason is a human-readable explanation.
	Reason string
}

// Error renders the denial; Denial satisfies error so PEPs can surface it.
func (d *Denial) Error() string {
	return fmt.Sprintf("msod: denied by %s of policy %q (bound %q): %s",
		d.Rule, d.PolicyContext, d.BoundContext, d.Reason)
}

// Decision is the result of evaluating a request against the MSoD policy
// set.
type Decision struct {
	Effect Effect
	// Denial is set when Effect is Deny.
	Denial *Denial
	// MatchedPolicies counts how many policies' contexts matched the
	// request (diagnostics; 0 means MSoD did not apply).
	MatchedPolicies int
	// Recorded counts retained-ADI records written for a grant.
	Recorded int
	// Purged counts retained-ADI records deleted because the request was
	// a granted last step.
	Purged int
	// Activated lists the bound context instances this grant started
	// for FirstStep-gated policies (the opening record committed).
	// Distributed deployments need it: §4.2 step 4 skips recording
	// while a context has no local history UNLESS the operation is the
	// first step, so a PDP holding a slice of the user population must
	// be told when some OTHER node saw the first step — otherwise its
	// users' operations in the now-running instance pass unrecorded
	// and a later k-of-m check under-counts (a false grant). Policies
	// without a FirstStep never appear here: their opening branch
	// matches every operation, so each node activates independently
	// without losing records.
	Activated []bctx.Name
}

// Engine evaluates requests against a compiled MSoD policy set and a
// retained-ADI store. Evaluations are serialised by an internal mutex so
// the read-check-append sequence of the §4.2 algorithm is atomic with
// respect to concurrent requests (two in-flight conflicting requests
// cannot both pass their history checks and both record).
type Engine struct {
	mu        sync.Mutex
	policies  []Policy
	store     adi.Recorder
	ctxStore  adi.CtxAppender // non-nil when store supports ctx-aware appends
	now       func() time.Time
	expand    func([]rbac.RoleName) []rbac.RoleName
	naiveMMEP bool

	// Striping (WithStriping): rw + stripes replace mu; nil stripes
	// means the default single-mutex mode.
	rw      sync.RWMutex
	stripes []sync.Mutex
}

// Option configures an Engine.
type Option func(*Engine)

// WithClock overrides the engine's time source (used for deterministic
// retained-ADI timestamps in tests and experiments).
func WithClock(now func() time.Time) Option {
	return func(e *Engine) { e.now = now }
}

// WithNaiveMMEPCounting switches MMEP evaluation from multiset counting
// (each remaining rule position needs a distinct supporting ADI record)
// to the literal any-record reading of §4.2 step 6.iii (a remaining
// position counts if *any* matching record exists). The two coincide on
// every constraint in the paper, including MMEP({p,p},2); they diverge
// only when a privilege is listed three or more times — naive counting
// then under-allows (MMEP({p,p,p},3) caps p at one execution instead of
// two). Experiment E11 is the ablation; the engine defaults to multiset
// counting (see DESIGN.md §5).
func WithNaiveMMEPCounting() Option {
	return func(e *Engine) { e.naiveMMEP = true }
}

// WithRoleExpander makes MMER constraints hierarchy-aware: activated
// roles are expanded (typically to their inheritance closure, see
// rbac.Model.Closure) before matching, and retained records carry the
// expanded set. Activating a senior role then conflicts exactly like
// activating the junior roles it inherits.
//
// This is an extension beyond the paper, which does not discuss the
// interaction of MMER with role hierarchies; omit the option for the
// paper's literal behaviour.
func WithRoleExpander(expand func([]rbac.RoleName) []rbac.RoleName) Option {
	return func(e *Engine) { e.expand = expand }
}

// NewEngine builds an engine over the given store and policies. Policies
// are validated; the store must be non-nil.
func NewEngine(store adi.Recorder, policies []Policy, opts ...Option) (*Engine, error) {
	if store == nil {
		return nil, fmt.Errorf("core: nil retained-ADI store")
	}
	for i := range policies {
		if err := policies[i].Validate(); err != nil {
			return nil, fmt.Errorf("core: policy %d: %w", i, err)
		}
	}
	e := &Engine{
		policies: append([]Policy(nil), policies...),
		store:    store,
		now:      time.Now,
	}
	// Resolved once here so the commit path pays no per-decision
	// type assertion.
	e.ctxStore, _ = store.(adi.CtxAppender)
	for _, o := range opts {
		o(e)
	}
	return e, nil
}

// Policies returns a copy of the engine's compiled policies.
func (e *Engine) Policies() []Policy {
	return append([]Policy(nil), e.policies...)
}

// Store returns the engine's retained-ADI store.
func (e *Engine) Store() adi.Recorder { return e.store }

// action is one deferred store mutation, applied in policy order only if
// the overall result is Grant.
type action struct {
	purge     bool
	pattern   bctx.Name    // purge pattern
	records   []adi.Record // appends
	activated *bctx.Name   // bound context a FirstStep opening record starts
}

// Evaluate runs the §4.2 enforcement algorithm. The request must already
// have passed the ordinary RBAC check. On Grant, the retained ADI is
// updated (new records and/or last-step purges); on Deny, the store is
// untouched.
func (e *Engine) Evaluate(req Request) (Decision, error) {
	return e.evaluate(context.Background(), req, true)
}

// EvaluateCtx is Evaluate carrying a context: when the context holds
// an obsv.Trace, the engine records one span per matched policy and
// an obsv.StageStore span around the retained-ADI commit phase.
// Untraced contexts pay a single nil check.
func (e *Engine) EvaluateCtx(ctx context.Context, req Request) (Decision, error) {
	return e.evaluate(ctx, req, true)
}

// Peek runs the same algorithm as Evaluate but never mutates the
// retained ADI, answering "would this request be granted right now?" —
// an advisory mode for UX (greying out actions) and for planners. The
// Decision's Recorded field reports how many records a real evaluation
// would have written; Purged is only populated by Evaluate.
//
// Note the TOCTOU caveat inherent to any advisory answer: a Grant from
// Peek can become Deny by the time Evaluate runs if conflicting history
// lands in between.
func (e *Engine) Peek(req Request) (Decision, error) {
	return e.evaluate(context.Background(), req, false)
}

// PeekCtx is Peek carrying a context (see EvaluateCtx).
func (e *Engine) PeekCtx(ctx context.Context, req Request) (Decision, error) {
	return e.evaluate(ctx, req, false)
}

func (e *Engine) evaluate(ctx context.Context, req Request, commit bool) (Decision, error) {
	if err := req.Validate(); err != nil {
		return Decision{}, err
	}
	if e.expand != nil {
		// Hierarchy-aware extension: evaluate and record with the
		// expanded role set (req is a copy; the caller's slice is not
		// modified).
		req.Roles = e.expand(req.Roles)
	}
	unlock := e.lockFor(req)
	defer unlock()

	var (
		dec     Decision
		actions []action
		now     = e.now()
		// tr is resolved once; all per-policy and store span
		// bookkeeping is skipped when the request is untraced. xr is
		// the decision's explain record (nil when the request is not
		// being explained — advisories, and servers without a
		// recorder); per-rule counter capture is skipped entirely then.
		tr = obsv.TraceFrom(ctx)
		xr = explain.FromContext(ctx)
	)

	// Step 1: select the policies whose business context matches the
	// request's context instance, binding "!" components.
	for pi := range e.policies {
		p := &e.policies[pi]
		matched, err := bctx.MatchInstance(p.Context, req.Context)
		if err != nil {
			return Decision{}, err
		}
		if !matched {
			continue
		}
		dec.MatchedPolicies++
		bound, err := bctx.Bind(p.Context, req.Context)
		if err != nil {
			return Decision{}, err
		}

		var endPolicy func()
		if tr != nil {
			endPolicy = tr.StartSpan("msod.policy:" + p.Context.String())
		}
		act, denial, err := e.evaluatePolicy(p, bound, req, now, xr)
		if endPolicy != nil {
			endPolicy()
		}
		if err != nil {
			return Decision{}, err
		}
		if denial != nil {
			// Deny exits immediately; no retained-ADI mutation at all.
			return Decision{Effect: Deny, Denial: denial, MatchedPolicies: dec.MatchedPolicies}, nil
		}
		if act != nil {
			actions = append(actions, *act)
		}
	}

	// Commit phase: every matched policy granted, apply mutations in
	// policy order. In advisory mode (Peek) the mutations are only
	// counted, never applied.
	if tr != nil && commit && len(actions) > 0 {
		endStore := tr.StartSpan(obsv.StageStore)
		defer endStore()
	}
	for _, act := range actions {
		if act.purge {
			if commit {
				n, err := e.store.PurgeContext(act.pattern)
				if err != nil {
					return Decision{}, fmt.Errorf("core: purge %q: %w", act.pattern, err)
				}
				dec.Purged += n
				if xr != nil {
					// Recorded at commit (not evaluation) time so a
					// later policy's denial cannot leave a phantom
					// termination in the explain record.
					xr.Terminate(act.pattern.String())
				}
			}
			continue
		}
		if len(act.records) > 0 {
			if commit {
				var err error
				if e.ctxStore != nil {
					// Context-aware stores (the durable ADI) record the
					// WAL round trip as a sub-span of the store stage.
					err = e.ctxStore.AppendCtx(ctx, act.records...)
				} else {
					err = e.store.Append(act.records...)
				}
				if err != nil {
					return Decision{}, fmt.Errorf("core: record decision: %w", err)
				}
			}
			dec.Recorded += len(act.records)
			if commit && act.activated != nil {
				dec.Activated = append(dec.Activated, *act.activated)
			}
		}
	}
	dec.Effect = Grant
	return dec, nil
}

// evaluatePolicy runs steps 3–7 for one matched policy with its bound
// context. It returns the deferred store action for a grant, or a denial.
// When xr is non-nil, every consulted constraint is appended to the
// explain record with its k-of-m counter state before and after.
func (e *Engine) evaluatePolicy(p *Policy, bound bctx.Name, req Request, now time.Time, xr *explain.Record) (*action, *Denial, error) {
	// Step 7 precheck: a granted last step terminates the context
	// instance — the §4.2 text orders this after the constraint checks,
	// and the PERMIS implementation (§5.2) flushes on recording the
	// granted last step. Constraint checks still apply to the last step
	// itself (it may be one of the mutually exclusive privileges).
	isLast := p.LastStep.matches(req.Operation, req.Target)

	// Step 3: has this bound context instance any retained history?
	active, err := e.store.ContextActive(bound)
	if err != nil {
		return nil, nil, fmt.Errorf("core: context query: %w", err)
	}

	if !active {
		// Step 4: no history. Record only if this is the policy's first
		// step, or the policy defines none (enforcement starts with the
		// first operation invoked inside the context).
		if p.FirstStep == nil || p.FirstStep.matches(req.Operation, req.Target) {
			if e.stripes != nil {
				// Striping-mode guard: deny a request that activates a
				// full conflicting role set even on the opening request,
				// so cross-user commit order cannot change outcomes (see
				// WithStriping).
				if i, bad := selfConflict(p, req.Roles); bad {
					if xr != nil {
						xr.Rule(explain.RuleEval{
							Policy: p.Context.String(), Bound: bound.String(),
							Rule: fmt.Sprintf("MMER[%d]", i), Kind: explain.KindMMER,
							K: 0, KAfter: 0, M: p.MMER[i].Cardinality,
							Matched: roleStrings(req.Roles), Denied: true,
						})
					}
					return nil, &Denial{
						PolicyContext: p.Context,
						BoundContext:  bound,
						Rule:          fmt.Sprintf("MMER[%d]", i),
						Held:          0,
						Cardinality:   p.MMER[i].Cardinality,
						Reason: fmt.Sprintf("user %q activates %d or more mutually exclusive roles in one request",
							req.User, p.MMER[i].Cardinality),
					}, nil
				}
			}
			if isLast {
				// First operation is also the last step: the instance
				// terminates immediately; nothing to retain.
				return &action{purge: true, pattern: bound}, nil, nil
			}
			if xr != nil {
				// The opening record seeds the k-of-m counters that
				// later requests are judged against, so the provenance
				// trace shows which constraints now track this context
				// and where their counters land (k 0 -> nr).
				explainOpening(p, bound, req, xr)
			}
			act := &action{records: []adi.Record{newRecord(req, now)}}
			if p.FirstStep != nil {
				// An explicit first step starting the instance is the
				// activation other nodes of a distributed PDP must hear
				// about (see Decision.Activated).
				b := bound
				act.activated = &b
			}
			return act, nil, nil
		}
		// Context has not started: MSoD does not yet apply.
		return nil, nil, nil
	}

	pending := make([]adi.Record, 0, 2)

	// Step 5: MMER constraints.
	for i, rule := range p.MMER {
		nr := 0
		var matchedRoles []rbac.RoleName
		remaining := make([]rbac.RoleName, 0, len(rule.Roles))
		for _, role := range rule.Roles {
			if containsRole(req.Roles, role) {
				nr++
				matchedRoles = append(matchedRoles, role)
			} else {
				remaining = append(remaining, role)
			}
		}
		if nr == 0 {
			continue
		}
		count := 0
		for _, role := range remaining {
			ok, err := e.store.UserHasRole(req.User, bound, role)
			if err != nil {
				return nil, nil, fmt.Errorf("core: role history query: %w", err)
			}
			if ok {
				count++
			}
		}
		denied := count >= rule.Cardinality-nr
		if xr != nil {
			after := count
			if !denied {
				// A grant records every matched role (step 5.iv), so the
				// user then holds all of them in the bound context.
				after = count + nr
			}
			xr.Rule(explain.RuleEval{
				Policy: p.Context.String(), Bound: bound.String(),
				Rule: fmt.Sprintf("MMER[%d]", i), Kind: explain.KindMMER,
				K: count, KAfter: after, M: rule.Cardinality,
				Matched: roleStrings(matchedRoles), Denied: denied,
			})
		}
		if denied {
			return nil, &Denial{
				PolicyContext: p.Context,
				BoundContext:  bound,
				Rule:          fmt.Sprintf("MMER[%d]", i),
				Held:          count,
				Cardinality:   rule.Cardinality,
				Reason: fmt.Sprintf("user %q activating %v already holds %d conflicting role(s) in this context (forbidden cardinality %d)",
					req.User, matchedRoles, count, rule.Cardinality),
			}, nil
		}
		// Step 5.iv: one new record per currently matched role.
		for _, role := range matchedRoles {
			rec := newRecord(req, now)
			rec.Roles = []rbac.RoleName{role}
			pending = append(pending, rec)
		}
	}

	// Step 6: MMEP constraints.
	reqPriv := rbac.Permission{Operation: req.Operation, Object: req.Target}
	for i, rule := range p.MMEP {
		// Positions equal to the requested privilege; one occurrence is
		// the current request and is ignored from counting.
		positions := make(map[rbac.Permission]int, len(rule.Privileges))
		reqPositions := 0
		for _, priv := range rule.Privileges {
			if priv == reqPriv {
				reqPositions++
			} else {
				positions[priv]++
			}
		}
		if reqPositions == 0 {
			continue
		}
		if reqPositions > 1 {
			// The privilege is listed multiple times: the occurrences
			// beyond the current request remain countable positions, so
			// prior executions of the same privilege are conflicts (this
			// is the MMEP({p,p},2) repetition cap of §2.4/§3).
			positions[reqPriv] = reqPositions - 1
		}
		// Multiset matching (default): each remaining position needs a
		// distinct supporting ADI record of the same privilege. Naive
		// mode counts a position whenever any matching record exists
		// (the E11 ablation).
		count := 0
		for priv, nPos := range positions {
			limit := nPos
			if e.naiveMMEP {
				limit = 1
			}
			n, err := e.store.CountUserPrivilege(req.User, bound, priv, limit)
			if err != nil {
				return nil, nil, fmt.Errorf("core: privilege history query: %w", err)
			}
			if e.naiveMMEP && n > 0 {
				n = nPos
			}
			count += n
		}
		denied := count >= rule.Cardinality-1
		if xr != nil {
			after := count
			if !denied {
				after = count + 1 // this request consumes one position
			}
			xr.Rule(explain.RuleEval{
				Policy: p.Context.String(), Bound: bound.String(),
				Rule: fmt.Sprintf("MMEP[%d]", i), Kind: explain.KindMMEP,
				K: count, KAfter: after, M: rule.Cardinality,
				Matched: []string{fmt.Sprint(reqPriv)}, Denied: denied,
			})
		}
		if denied {
			return nil, &Denial{
				PolicyContext: p.Context,
				BoundContext:  bound,
				Rule:          fmt.Sprintf("MMEP[%d]", i),
				Held:          count,
				Cardinality:   rule.Cardinality,
				Reason: fmt.Sprintf("user %q requesting %v already exercised %d conflicting privilege(s) in this context (forbidden cardinality %d)",
					req.User, reqPriv, count, rule.Cardinality),
			}, nil
		}
		pending = append(pending, newRecord(req, now))
	}

	// Step 7: a granted last step terminates the bound context instance;
	// otherwise the pending records are retained.
	if isLast {
		return &action{purge: true, pattern: bound}, nil, nil
	}
	return &action{records: pending}, nil, nil
}

// explainOpening appends the rule evaluations of a context-opening
// grant (step 4: no retained history, so every consulted counter is
// zero). The opening record supports later UserHasRole /
// CountUserPrivilege counts, so KAfter reflects the state the grant
// leaves behind: nr matched roles for MMER, one consumed position for
// MMEP.
func explainOpening(p *Policy, bound bctx.Name, req Request, xr *explain.Record) {
	for i, rule := range p.MMER {
		var matched []rbac.RoleName
		for _, role := range rule.Roles {
			if containsRole(req.Roles, role) {
				matched = append(matched, role)
			}
		}
		if len(matched) == 0 {
			continue
		}
		xr.Rule(explain.RuleEval{
			Policy: p.Context.String(), Bound: bound.String(),
			Rule: fmt.Sprintf("MMER[%d]", i), Kind: explain.KindMMER,
			K: 0, KAfter: len(matched), M: rule.Cardinality,
			Matched: roleStrings(matched),
		})
	}
	reqPriv := rbac.Permission{Operation: req.Operation, Object: req.Target}
	for i, rule := range p.MMEP {
		listed := false
		for _, priv := range rule.Privileges {
			if priv == reqPriv {
				listed = true
				break
			}
		}
		if !listed {
			continue
		}
		xr.Rule(explain.RuleEval{
			Policy: p.Context.String(), Bound: bound.String(),
			Rule: fmt.Sprintf("MMEP[%d]", i), Kind: explain.KindMMEP,
			K: 0, KAfter: 1, M: rule.Cardinality,
			Matched: []string{fmt.Sprint(reqPriv)},
		})
	}
}

// newRecord builds the §4.2 six-tuple for the request. The stored
// context is the request's concrete instance, so that future policies
// binding different patterns can still match it.
func newRecord(req Request, now time.Time) adi.Record {
	return adi.Record{
		User:      req.User,
		Roles:     append([]rbac.RoleName(nil), req.Roles...),
		Operation: req.Operation,
		Target:    req.Target,
		Context:   req.Context,
		Time:      now,
	}
}

// roleStrings renders a role list for an explain record; only called
// on the explained path, so unexplained decisions never pay the
// conversion.
func roleStrings(roles []rbac.RoleName) []string {
	out := make([]string, len(roles))
	for i, r := range roles {
		out[i] = string(r)
	}
	return out
}

func containsRole(roles []rbac.RoleName, r rbac.RoleName) bool {
	for _, x := range roles {
		if x == r {
			return true
		}
	}
	return false
}
