package core

import (
	"hash/fnv"
	"sync"

	"msod/internal/rbac"
)

// WithStriping replaces the engine's single evaluation mutex with
// per-user lock striping, so decisions for different users proceed in
// parallel. Every MSoD constraint is scoped to one user's history, so
// same-user requests (which serialise on their stripe) keep the §4.2
// read-check-record sequence atomic, while cross-user requests only
// interact through two global effects, both handled explicitly:
//
//   - last-step purges take the engine's write lock, excluding all
//     in-flight evaluations, and
//   - the step-4 "fresh context" shortcut gains a self-conflict check
//     (a request activating ForbiddenCardinality or more roles of one
//     MMER rule is denied even when the context has no history), which
//     restores serialisability for the one corner where the literal
//     algorithm's outcome depends on cross-user commit order.
//
// The self-conflict check is a strictly-safer deviation from the
// paper's literal step 4 (see TestFirstStepCornerCase for the literal
// behaviour); it is only active under striping. n is the stripe count
// (rounded up to at least 1). Experiment E14 measures the scaling.
func WithStriping(n int) Option {
	return func(e *Engine) {
		if n < 1 {
			n = 1
		}
		e.stripes = make([]sync.Mutex, n)
	}
}

// stripeFor hashes a user to a stripe index.
func (e *Engine) stripeFor(user rbac.UserID) *sync.Mutex {
	h := fnv.New32a()
	h.Write([]byte(user))
	return &e.stripes[int(h.Sum32())%len(e.stripes)]
}

// lockFor acquires the locks appropriate for the request and returns
// the matching unlock. Without striping, the global mutex serialises
// everything. With striping, a request that can trigger a last-step
// purge takes the global write lock; everything else shares the read
// lock plus its user stripe.
func (e *Engine) lockFor(req Request) (unlock func()) {
	if e.stripes == nil {
		e.mu.Lock()
		return e.mu.Unlock
	}
	if e.touchesLastStep(req) {
		e.rw.Lock()
		return e.rw.Unlock
	}
	e.rw.RLock()
	stripe := e.stripeFor(req.User)
	stripe.Lock()
	return func() {
		stripe.Unlock()
		e.rw.RUnlock()
	}
}

// touchesLastStep reports whether any policy's last step matches the
// request (conservative: context matching is not consulted, so a
// last-step operation in an unrelated context still takes the write
// lock — rare enough not to matter).
func (e *Engine) touchesLastStep(req Request) bool {
	for i := range e.policies {
		if e.policies[i].LastStep.matches(req.Operation, req.Target) {
			return true
		}
	}
	return false
}

// selfConflict reports whether the request's own activated roles
// already contain ForbiddenCardinality or more roles of some MMER rule
// of the policy — the striping-mode step-4 guard.
func selfConflict(p *Policy, roles []rbac.RoleName) (int, bool) {
	for i, rule := range p.MMER {
		n := 0
		for _, r := range rule.Roles {
			if containsRole(roles, r) {
				n++
			}
		}
		if n >= rule.Cardinality {
			return i, true
		}
	}
	return 0, false
}
