package core

import (
	"fmt"
	"sync"
	"testing"

	"msod/internal/adi"
	"msod/internal/bctx"
	"msod/internal/rbac"
)

// TestStripedEngineBehavesLikeDefault replays the Example 1 and
// Example 2 scripts on a striped engine: single-threaded behaviour must
// be identical to the default engine (the self-conflict guard only
// changes the all-roles-at-once corner).
func TestStripedEngineBehavesLikeDefault(t *testing.T) {
	store := adi.NewStore()
	e, err := NewEngine(store, bankPolicies(), WithStriping(8))
	if err != nil {
		t.Fatal(err)
	}
	grant(t, e, bankReq("alice", "Teller", "HandleCash", "York", "2006"))
	deny(t, e, bankReq("alice", "Auditor", "Audit", "Leeds", "2006"))
	grant(t, e, bankReq("bob", "Auditor", "Audit", "York", "2006"))
	dec := grant(t, e, bankReq("bob", "Auditor", "CommitAudit", "York", "2006"))
	if dec.Purged == 0 {
		t.Fatal("striped engine last step purged nothing")
	}
	grant(t, e, bankReq("alice", "Auditor", "Audit", "York", "2006"))

	e2, err := NewEngine(adi.NewStore(), taxPolicies(), WithStriping(4))
	if err != nil {
		t.Fatal(err)
	}
	grant(t, e2, taxReq("c1", "Clerk", "prepareCheck", checkTarget, "Leeds", "p1"))
	grant(t, e2, taxReq("m1", "Manager", "approve/disapproveCheck", checkTarget, "Leeds", "p1"))
	deny(t, e2, taxReq("m1", "Manager", "approve/disapproveCheck", checkTarget, "Leeds", "p1"))
	deny(t, e2, taxReq("c1", "Clerk", "confirmCheck", auditTarget, "Leeds", "p1"))
}

// TestStripedSelfConflictGuard: under striping the all-conflicting-roles
// opening request is denied (the documented deviation from literal
// step 4).
func TestStripedSelfConflictGuard(t *testing.T) {
	e, store := func() (*Engine, *adi.Store) {
		s := adi.NewStore()
		e, err := NewEngine(s, bankPolicies(), WithStriping(4))
		if err != nil {
			t.Fatal(err)
		}
		return e, s
	}()
	dec, err := e.Evaluate(Request{
		User:      "mallory",
		Roles:     []rbac.RoleName{"Teller", "Auditor"},
		Operation: "HandleCash", Target: "t",
		Context: bctx.MustParse("Branch=York, Period=2006"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Effect != Deny {
		t.Fatal("striped engine granted the all-roles opening request")
	}
	if store.Len() != 0 {
		t.Fatal("denied request recorded history")
	}
}

// TestStripedConcurrentInvariant hammers a striped engine with
// conflicting requests across many users and verifies the per-user
// safety invariant afterwards; a CommitAudit closer also exercises the
// write-lock purge path concurrently.
func TestStripedConcurrentInvariant(t *testing.T) {
	store := adi.NewStore()
	e, err := NewEngine(store, bankPolicies(), WithStriping(8))
	if err != nil {
		t.Fatal(err)
	}
	const (
		goroutines = 16
		perG       = 50
		users      = 8
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				user := fmt.Sprintf("user%d", (g*7+i)%users)
				role := "Teller"
				if (g+i)%2 == 1 {
					role = "Auditor"
				}
				if _, err := e.Evaluate(bankReq(user, role, "op", "York", "2006")); err != nil {
					t.Error(err)
					return
				}
				if g == 0 && i%20 == 19 {
					// Occasionally close the period from a dedicated user
					// (write-lock path).
					if _, err := e.Evaluate(bankReq("closer", "Auditor", "CommitAudit", "York", "2006")); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	pattern := bctx.MustParse("Branch=*, Period=2006")
	for u := 0; u < users; u++ {
		user := rbac.UserID(fmt.Sprintf("user%d", u))
		hasT, _ := store.UserHasRole(user, pattern, "Teller")
		hasA, _ := store.UserHasRole(user, pattern, "Auditor")
		if hasT && hasA {
			t.Errorf("user%d holds both conflicting roles under striping", u)
		}
	}
}

// TestStripingOptionNormalisation: n < 1 becomes a single stripe.
func TestStripingOptionNormalisation(t *testing.T) {
	e, err := NewEngine(adi.NewStore(), bankPolicies(), WithStriping(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(e.stripes) != 1 {
		t.Errorf("stripes = %d", len(e.stripes))
	}
	grant(t, e, bankReq("u", "Teller", "HandleCash", "York", "2006"))
}
