package core

import (
	"testing"

	"msod/internal/bctx"
	"msod/internal/rbac"
)

// TestCommitOrderAppendThenPurge: when one request matches both a
// recording policy and a later policy whose last step it is, actions
// apply in policy order — the first policy's records are written and
// then swept by the second policy's purge if they fall inside its bound
// context.
func TestCommitOrderAppendThenPurge(t *testing.T) {
	policies := []Policy{
		{
			// Policy 0 records "close" activity (no last step).
			Context: bctx.MustParse("P=!"),
			MMEP: []MMEPRule{{
				Privileges: []rbac.Permission{
					{Operation: "close", Object: "t"},
					{Operation: "open", Object: "t"},
				},
				Cardinality: 2,
			}},
		},
		{
			// Policy 1 terminates the same context on "close".
			Context:  bctx.MustParse("P=!"),
			LastStep: &Step{Operation: "close", Target: "t"},
			MMER: []MMERRule{{
				Roles:       []rbac.RoleName{"A", "B"},
				Cardinality: 2,
			}},
		},
	}
	e, store := newEngine(t, policies)

	// Start the context with an "open".
	grant(t, e, Request{User: "u", Roles: []rbac.RoleName{"A"},
		Operation: "open", Target: "t", Context: bctx.MustParse("P=1")})
	if store.Len() != 2 { // policy 0 MMEP record + policy 1 step-4 record
		t.Fatalf("after open: %d records", store.Len())
	}

	// "close": policy 0 would record it (different privilege, but the
	// user already did "open" so MMEP denies!). Use another user.
	dec := grant(t, e, Request{User: "v", Roles: []rbac.RoleName{"B"},
		Operation: "close", Target: "t", Context: bctx.MustParse("P=1")})
	// Policy 0 appended v's record, then policy 1's last step purged the
	// whole P=1 instance including it.
	if store.Len() != 0 {
		t.Fatalf("after close: %d records (purge must sweep same-request appends)", store.Len())
	}
	if dec.Purged == 0 {
		t.Fatal("close purged nothing")
	}
}

// TestReverseOrderPurgeThenAppend: with the policies swapped, the purge
// action commits first and the recording policy's append survives.
func TestReverseOrderPurgeThenAppend(t *testing.T) {
	policies := []Policy{
		{
			Context:  bctx.MustParse("P=!"),
			LastStep: &Step{Operation: "close", Target: "t"},
			MMER: []MMERRule{{
				Roles:       []rbac.RoleName{"A", "B"},
				Cardinality: 2,
			}},
		},
		{
			Context: bctx.MustParse("P=!"),
			MMEP: []MMEPRule{{
				Privileges: []rbac.Permission{
					{Operation: "close", Object: "t"},
					{Operation: "open", Object: "t"},
				},
				Cardinality: 2,
			}},
		},
	}
	e, store := newEngine(t, policies)
	grant(t, e, Request{User: "u", Roles: []rbac.RoleName{"A"},
		Operation: "open", Target: "t", Context: bctx.MustParse("P=1")})
	grant(t, e, Request{User: "v", Roles: []rbac.RoleName{"B"},
		Operation: "close", Target: "t", Context: bctx.MustParse("P=1")})
	// Purge (policy 0) ran before the append (policy 1): v's close
	// record survives as the seed of a "new" instance history.
	if store.Len() != 1 {
		t.Fatalf("after close: %d records", store.Len())
	}
	recs := store.UserRecords("v", bctx.MustParse("P=1"))
	if len(recs) != 1 || recs[0].Operation != "close" {
		t.Fatalf("surviving record = %v", recs)
	}
}

// TestLastStepWithFirstStepUnstartedContext: a last-step request in a
// context that never started (policy has a FirstStep that never ran)
// does nothing.
func TestLastStepWithFirstStepUnstartedContext(t *testing.T) {
	policies := []Policy{{
		Context:   bctx.MustParse("P=!"),
		FirstStep: &Step{Operation: "open", Target: "t"},
		LastStep:  &Step{Operation: "close", Target: "t"},
		MMEP: []MMEPRule{{
			Privileges: []rbac.Permission{
				{Operation: "open", Object: "t"},
				{Operation: "close", Object: "t"},
			},
			Cardinality: 2,
		}},
	}}
	e, store := newEngine(t, policies)
	dec := grant(t, e, Request{User: "u", Roles: []rbac.RoleName{"A"},
		Operation: "close", Target: "t", Context: bctx.MustParse("P=1")})
	if dec.Recorded != 0 || dec.Purged != 0 || store.Len() != 0 {
		t.Fatalf("unstarted-context close had effects: %+v len=%d", dec, store.Len())
	}
}
