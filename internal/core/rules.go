// Package core implements the MSoD decision engine: compiled MMER/MMEP
// constraints scoped by business contexts, evaluated with the §4.2
// enforcement algorithm of the paper against a retained-ADI store.
//
// The engine is deliberately independent of the surrounding RBAC
// machinery: it receives requests whose interim RBAC decision is already
// Grant (§4.2: "The PDP first performs its normal checking against the
// RBAC policy, and if the interim result is grant, then the PDP will
// further perform the following algorithm"), and returns either Grant —
// after atomically recording the decision in the retained ADI — or Deny
// with an explanation. The full PDP composition lives in internal/pdp.
package core

import (
	"errors"
	"fmt"

	"msod/internal/bctx"
	"msod/internal/policy"
	"msod/internal/rbac"
)

// ErrCompile tags policy compilation failures.
var ErrCompile = errors.New("core: compile")

// MMERRule is a compiled multi-session mutually exclusive roles
// constraint: a user may activate fewer than Cardinality of Roles within
// one (bound) business context.
type MMERRule struct {
	// Roles are the mutually exclusive roles (distinct, n >= 2).
	Roles []rbac.RoleName
	// Cardinality is the forbidden cardinality m (1 <= m <= n).
	Cardinality int
}

// MMEPRule is a compiled multi-session mutually exclusive privileges
// constraint: a user may exercise fewer than Cardinality of the
// privilege *multiset* Privileges within one (bound) business context.
// A privilege listed k times contributes up to k countable positions, so
// MMEP({p, p}, 2) caps p at a single execution per context instance.
type MMEPRule struct {
	// Privileges is the privilege multiset (n >= 2, duplicates allowed).
	Privileges []rbac.Permission
	// Cardinality is the forbidden cardinality m (1 <= m <= n).
	Cardinality int
}

// Step is a business-context delimiter: an operation on a target.
type Step struct {
	Operation rbac.Operation
	Target    rbac.Object
}

// matches reports whether the step equals the request's operation/target.
func (s *Step) matches(op rbac.Operation, target rbac.Object) bool {
	return s != nil && s.Operation == op && s.Target == target
}

// Policy is one compiled MSoD policy: constraints scoped to a business
// context pattern, optionally delimited by first and last steps.
type Policy struct {
	// Context is the policy's business context; it may contain the
	// wildcard values "*" (across all instances) and "!" (per instance).
	Context bctx.Name
	// FirstStep, when non-nil, starts history retention for a context
	// instance: until it is granted, the policy does not record or
	// constrain anything in that instance.
	FirstStep *Step
	// LastStep, when non-nil, terminates a context instance when
	// granted: all retained history within the bound context is purged.
	LastStep *Step
	// MMER and MMEP are the policy's constraints.
	MMER []MMERRule
	MMEP []MMEPRule
}

// Validate checks the compiled policy's structural constraints (the same
// shape rules as policy.MSoDPolicy.Validate, for programmatically built
// policies).
func (p *Policy) Validate() error {
	if len(p.MMER)+len(p.MMEP) == 0 {
		return fmt.Errorf("%w: policy %q has no constraints", ErrCompile, p.Context)
	}
	for i, r := range p.MMER {
		if len(r.Roles) < 2 {
			return fmt.Errorf("%w: policy %q MMER %d needs >= 2 roles", ErrCompile, p.Context, i)
		}
		// Cardinality 1 is legal and denies every listed role once the
		// context instance has history (count >= 1-nr always holds);
		// only the context-opening request, recorded in step 4 before
		// constraints apply, is exempt. policy.Lint warns.
		if r.Cardinality < 1 || r.Cardinality > len(r.Roles) {
			return fmt.Errorf("%w: policy %q MMER %d cardinality %d outside 1..%d",
				ErrCompile, p.Context, i, r.Cardinality, len(r.Roles))
		}
		seen := make(map[rbac.RoleName]bool, len(r.Roles))
		for _, role := range r.Roles {
			if seen[role] {
				return fmt.Errorf("%w: policy %q MMER %d lists role %q twice", ErrCompile, p.Context, i, role)
			}
			seen[role] = true
		}
	}
	for i, r := range p.MMEP {
		if len(r.Privileges) < 2 {
			return fmt.Errorf("%w: policy %q MMEP %d needs >= 2 privileges", ErrCompile, p.Context, i)
		}
		if r.Cardinality < 1 || r.Cardinality > len(r.Privileges) {
			return fmt.Errorf("%w: policy %q MMEP %d cardinality %d outside 1..%d",
				ErrCompile, p.Context, i, r.Cardinality, len(r.Privileges))
		}
	}
	return nil
}

// Compile translates a parsed XML MSoDPolicySet into engine policies.
func Compile(set *policy.MSoDPolicySet) ([]Policy, error) {
	if set == nil {
		return nil, fmt.Errorf("%w: nil policy set", ErrCompile)
	}
	if err := set.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCompile, err)
	}
	out := make([]Policy, 0, len(set.Policies))
	for i, xp := range set.Policies {
		ctx, err := xp.Context()
		if err != nil {
			return nil, fmt.Errorf("%w: policy %d: %v", ErrCompile, i, err)
		}
		p := Policy{Context: ctx}
		if xp.FirstStep != nil {
			p.FirstStep = &Step{Operation: rbac.Operation(xp.FirstStep.Operation), Target: rbac.Object(xp.FirstStep.TargetURI)}
		}
		if xp.LastStep != nil {
			p.LastStep = &Step{Operation: rbac.Operation(xp.LastStep.Operation), Target: rbac.Object(xp.LastStep.TargetURI)}
		}
		for _, m := range xp.MMER {
			rule := MMERRule{Cardinality: m.ForbiddenCardinality}
			for _, role := range m.Roles {
				rule.Roles = append(rule.Roles, rbac.RoleName(role.Value))
			}
			p.MMER = append(p.MMER, rule)
		}
		for _, m := range xp.MMEP {
			rule := MMEPRule{Cardinality: m.ForbiddenCardinality}
			for _, pr := range m.AllPrivileges() {
				rule.Privileges = append(rule.Privileges, rbac.Permission{
					Operation: rbac.Operation(pr.Operation),
					Object:    rbac.Object(pr.Target),
				})
			}
			p.MMEP = append(p.MMEP, rule)
		}
		if err := p.Validate(); err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
