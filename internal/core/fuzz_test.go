package core

import (
	"testing"

	"msod/internal/adi"
	"msod/internal/bctx"
	"msod/internal/rbac"
)

// FuzzEvaluate throws arbitrary request fields at an engine carrying
// both paper policies: it must never panic, must error only on invalid
// requests (empty user / non-instance context), and a denial must never
// change the store.
func FuzzEvaluate(f *testing.F) {
	f.Add("alice", "Teller", "HandleCash", "till", "Branch=York, Period=2006")
	f.Add("c1", "Clerk", "prepareCheck", "http://www.myTaxOffice.com/Check", "TaxOffice=Leeds, taxRefundProcess=p1")
	f.Add("", "Teller", "op", "t", "A=1")
	f.Add("u", "Auditor", "CommitAudit", "http://audit.location.com/audit", "Branch=York, Period=2006")
	f.Add("u", "X", "op", "t", "A=*")
	f.Add("u", "", "", "", "")

	policies := append(bankPolicies(), taxPolicies()...)
	store := adi.NewStore()
	eng, err := NewEngine(store, policies)
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, user, role, op, target, ctx string) {
		name, err := bctx.Parse(ctx)
		if err != nil {
			return
		}
		req := Request{
			User:      rbac.UserID(user),
			Roles:     []rbac.RoleName{rbac.RoleName(role)},
			Operation: rbac.Operation(op),
			Target:    rbac.Object(target),
			Context:   name,
		}
		before := store.Len()
		dec, err := eng.Evaluate(req)
		if err != nil {
			// Errors are only legal for invalid requests.
			if user != "" && name.IsInstance() {
				t.Fatalf("valid request errored: %v (req %+v)", err, req)
			}
			if store.Len() != before {
				t.Fatal("errored request changed the store")
			}
			return
		}
		if dec.Effect == Deny && store.Len() != before {
			t.Fatal("denied request changed the store")
		}
		if dec.Effect == Deny && dec.Denial == nil {
			t.Fatal("denial without explanation")
		}
	})
}
