package core

import (
	"strings"
	"testing"
	"time"

	"msod/internal/adi"
	"msod/internal/bctx"
	"msod/internal/rbac"
)

// bankPolicies returns the Example 1 policy:
// MMER({Teller, Auditor}, 2, "Branch=*, Period=!") with last step
// CommitAudit.
func bankPolicies() []Policy {
	return []Policy{{
		Context:  bctx.MustParse("Branch=*, Period=!"),
		LastStep: &Step{Operation: "CommitAudit", Target: "http://audit.location.com/audit"},
		MMER: []MMERRule{{
			Roles:       []rbac.RoleName{"Teller", "Auditor"},
			Cardinality: 2,
		}},
	}}
}

const (
	checkTarget   = rbac.Object("http://www.myTaxOffice.com/Check")
	auditTarget   = rbac.Object("http://secret.location.com/audit")
	resultsTarget = rbac.Object("http://secret.location.com/results")
)

// taxPolicies returns the Example 2 policy set from §3.
func taxPolicies() []Policy {
	return []Policy{{
		Context:   bctx.MustParse("TaxOffice=!, taxRefundProcess=!"),
		FirstStep: &Step{Operation: "prepareCheck", Target: checkTarget},
		LastStep:  &Step{Operation: "confirmCheck", Target: auditTarget},
		MMEP: []MMEPRule{
			{
				Privileges: []rbac.Permission{
					{Operation: "prepareCheck", Object: checkTarget},
					{Operation: "confirmCheck", Object: auditTarget},
				},
				Cardinality: 2,
			},
			{
				Privileges: []rbac.Permission{
					{Operation: "approve/disapproveCheck", Object: checkTarget},
					{Operation: "approve/disapproveCheck", Object: checkTarget},
					{Operation: "combineResults", Object: resultsTarget},
				},
				Cardinality: 2,
			},
		},
	}}
}

func newEngine(t *testing.T, policies []Policy) (*Engine, *adi.Store) {
	t.Helper()
	store := adi.NewStore()
	eng, err := NewEngine(store, policies, WithClock(func() time.Time {
		return time.Date(2006, 7, 1, 12, 0, 0, 0, time.UTC)
	}))
	if err != nil {
		t.Fatal(err)
	}
	return eng, store
}

func grant(t *testing.T, e *Engine, req Request) Decision {
	t.Helper()
	dec, err := e.Evaluate(req)
	if err != nil {
		t.Fatalf("Evaluate(%+v): %v", req, err)
	}
	if dec.Effect != Grant {
		t.Fatalf("Evaluate(%+v) = deny: %v", req, dec.Denial)
	}
	return dec
}

func deny(t *testing.T, e *Engine, req Request) Decision {
	t.Helper()
	dec, err := e.Evaluate(req)
	if err != nil {
		t.Fatalf("Evaluate(%+v): %v", req, err)
	}
	if dec.Effect != Deny {
		t.Fatalf("Evaluate(%+v) = grant, want deny", req)
	}
	return dec
}

func bankReq(user, role, op, branch, period string) Request {
	target := rbac.Object("http://bank.example/till")
	if op == "CommitAudit" {
		target = "http://audit.location.com/audit"
	}
	return Request{
		User:      rbac.UserID(user),
		Roles:     []rbac.RoleName{rbac.RoleName(role)},
		Operation: rbac.Operation(op),
		Target:    target,
		Context:   bctx.MustParse("Branch=" + branch + ", Period=" + period),
	}
}

// TestExample1BankCashProcessing walks the paper's first motivating
// example end to end.
func TestExample1BankCashProcessing(t *testing.T) {
	e, store := newEngine(t, bankPolicies())

	// Alice handles cash as a Teller in York during period 2006.
	grant(t, e, bankReq("alice", "Teller", "HandleCash", "York", "2006"))

	// Later (different session, different branch, same period) she has
	// been promoted to Auditor — MSoD must deny, even though neither SSD
	// nor DSD would: the period's history remembers her Teller activity.
	dec := deny(t, e, bankReq("alice", "Auditor", "Audit", "Leeds", "2006"))
	if dec.Denial == nil || !strings.Contains(dec.Denial.Rule, "MMER") {
		t.Fatalf("denial = %+v", dec.Denial)
	}
	if dec.Denial.BoundContext.String() != "Branch=*, Period=2006" {
		t.Errorf("bound context = %q", dec.Denial.BoundContext)
	}

	// She can still act as Teller again in the same period...
	grant(t, e, bankReq("alice", "Teller", "HandleCash", "York", "2006"))
	// ...and as Auditor in a *different* period ("!" separates instances).
	grant(t, e, bankReq("alice", "Auditor", "Audit", "York", "2007"))

	// Another employee can audit period 2006.
	grant(t, e, bankReq("bob", "Auditor", "Audit", "York", "2006"))
	// But bob is now barred from telling in 2006 anywhere.
	deny(t, e, bankReq("bob", "Teller", "HandleCash", "Leeds", "2006"))

	// CommitAudit closes period 2006: history is purged...
	dec = grant(t, e, bankReq("bob", "Auditor", "CommitAudit", "York", "2006"))
	if dec.Purged == 0 {
		t.Fatal("CommitAudit purged nothing")
	}
	// ...so alice may now become an Auditor for 2006 work (paper: "After
	// auditing has been completed ... MMER enforcement for this business
	// context instance is finished, and the history information is
	// deleted").
	grant(t, e, bankReq("alice", "Auditor", "Audit", "York", "2006"))

	// The 2007 record must have survived the 2006 purge.
	ok, _ := store.UserHasRole("alice", bctx.MustParse("Branch=*, Period=2007"), "Auditor")
	if !ok {
		t.Error("2007 history lost in 2006 purge")
	}
}

func taxReq(user, role, op string, target rbac.Object, office, process string) Request {
	return Request{
		User:      rbac.UserID(user),
		Roles:     []rbac.RoleName{rbac.RoleName(role)},
		Operation: rbac.Operation(op),
		Target:    target,
		Context:   bctx.MustParse("TaxOffice=" + office + ", taxRefundProcess=" + process),
	}
}

// TestExample2TaxRefund walks the paper's second motivating example: the
// four-task tax refund workflow with MMEP constraints.
func TestExample2TaxRefund(t *testing.T) {
	e, _ := newEngine(t, taxPolicies())

	// T1: clerk c1 prepares the check (the first step).
	grant(t, e, taxReq("c1", "Clerk", "prepareCheck", checkTarget, "Leeds", "p1"))

	// T2: manager m1 approves; manager m2 approves.
	grant(t, e, taxReq("m1", "Manager", "approve/disapproveCheck", checkTarget, "Leeds", "p1"))
	grant(t, e, taxReq("m2", "Manager", "approve/disapproveCheck", checkTarget, "Leeds", "p1"))

	// m1 may not approve twice in the same process instance (the
	// repeated-privilege constraint MMEP({p1,p1},2)).
	deny(t, e, taxReq("m1", "Manager", "approve/disapproveCheck", checkTarget, "Leeds", "p1"))

	// T3: a manager who approved may not combine the results.
	deny(t, e, taxReq("m1", "Manager", "combineResults", resultsTarget, "Leeds", "p1"))
	deny(t, e, taxReq("m2", "Manager", "combineResults", resultsTarget, "Leeds", "p1"))
	// A third manager may.
	grant(t, e, taxReq("m3", "Manager", "combineResults", resultsTarget, "Leeds", "p1"))

	// Having combined, m3 may not now approve in the same instance.
	deny(t, e, taxReq("m3", "Manager", "approve/disapproveCheck", checkTarget, "Leeds", "p1"))

	// T4: the preparing clerk may not confirm the check...
	deny(t, e, taxReq("c1", "Clerk", "confirmCheck", auditTarget, "Leeds", "p1"))
	// ...but a different clerk may (and this is the last step).
	dec := grant(t, e, taxReq("c2", "Clerk", "confirmCheck", auditTarget, "Leeds", "p1"))
	if dec.Purged == 0 {
		t.Fatal("confirmCheck (last step) purged nothing")
	}

	// The process instance is over: everyone is free again in a new
	// instance, including in the same office.
	grant(t, e, taxReq("m1", "Manager", "approve/disapproveCheck", checkTarget, "Leeds", "p2"))
	// And c1 can confirm in p2 if someone else prepared.
	grant(t, e, taxReq("c3", "Clerk", "prepareCheck", checkTarget, "Leeds", "p2"))
	grant(t, e, taxReq("c1", "Clerk", "confirmCheck", auditTarget, "Leeds", "p2"))
}

// TestExample2InstanceIndependence checks that the same user may perform
// conflicting tasks in different process instances concurrently ("the
// same clerk is authorized to do either Task 1 or Task 4 in a different
// tax refund process instance", §2.2).
func TestExample2InstanceIndependence(t *testing.T) {
	e, _ := newEngine(t, taxPolicies())
	grant(t, e, taxReq("c1", "Clerk", "prepareCheck", checkTarget, "Leeds", "pA"))
	grant(t, e, taxReq("c2", "Clerk", "prepareCheck", checkTarget, "Leeds", "pB"))
	// c1 prepared pA so cannot confirm pA, but can confirm pB.
	deny(t, e, taxReq("c1", "Clerk", "confirmCheck", auditTarget, "Leeds", "pA"))
	grant(t, e, taxReq("c1", "Clerk", "confirmCheck", auditTarget, "Leeds", "pB"))
	// Different offices are different instances too (TaxOffice=!).
	grant(t, e, taxReq("c1", "Clerk", "prepareCheck", checkTarget, "York", "pA"))
	deny(t, e, taxReq("c1", "Clerk", "confirmCheck", auditTarget, "York", "pA"))
}

// TestFirstStepGatesEnforcement checks §3: "If the first step is
// omitted, the PDP must start to enforce MSoD from whatever is the first
// operation... "; with a first step, earlier operations are not
// recorded or constrained.
func TestFirstStepGatesEnforcement(t *testing.T) {
	e, store := newEngine(t, taxPolicies())

	// approve before prepareCheck: context not started, no history kept,
	// request passes through MSoD untouched.
	dec := grant(t, e, taxReq("m1", "Manager", "approve/disapproveCheck", checkTarget, "Leeds", "p1"))
	if dec.Recorded != 0 {
		t.Fatalf("recorded %d before first step", dec.Recorded)
	}
	if store.Len() != 0 {
		t.Fatalf("store has %d records before first step", store.Len())
	}

	// Start the process; now the same manager approves twice — the first
	// (pre-context) approval is invisible, so one approval is granted and
	// the second is denied.
	grant(t, e, taxReq("c1", "Clerk", "prepareCheck", checkTarget, "Leeds", "p1"))
	grant(t, e, taxReq("m1", "Manager", "approve/disapproveCheck", checkTarget, "Leeds", "p1"))
	deny(t, e, taxReq("m1", "Manager", "approve/disapproveCheck", checkTarget, "Leeds", "p1"))
}

// TestNoFirstStepStartsOnAnyOperation checks that without a FirstStep
// the first operation in a context instance starts retention (the bank
// policy has no first step).
func TestNoFirstStepStartsOnAnyOperation(t *testing.T) {
	e, store := newEngine(t, bankPolicies())
	dec := grant(t, e, bankReq("alice", "Teller", "HandleCash", "York", "2006"))
	if dec.Recorded != 1 {
		t.Fatalf("recorded %d, want 1", dec.Recorded)
	}
	if store.Len() != 1 {
		t.Fatalf("store has %d records", store.Len())
	}
}

// TestUnmatchedContextBypassesMSoD checks step 1's EXIT: requests in
// contexts no policy covers are granted without recording.
func TestUnmatchedContextBypassesMSoD(t *testing.T) {
	e, store := newEngine(t, taxPolicies())
	dec := grant(t, e, Request{
		User: "u", Roles: []rbac.RoleName{"Clerk"},
		Operation: "prepareCheck", Target: checkTarget,
		Context: bctx.MustParse("Warehouse=7"),
	})
	if dec.MatchedPolicies != 0 || dec.Recorded != 0 || store.Len() != 0 {
		t.Fatalf("dec=%+v len=%d", dec, store.Len())
	}
}

// TestSubordinateContextMatches checks "all contexts which are equal or
// subordinate to the context in the MMER rule should be applied with the
// MMER rule" (§2.3).
func TestSubordinateContextMatches(t *testing.T) {
	e, _ := newEngine(t, bankPolicies())
	// A deeper instance (with a Till component) is subordinate to
	// "Branch=*, Period=!".
	deepTeller := Request{
		User: "alice", Roles: []rbac.RoleName{"Teller"},
		Operation: "HandleCash", Target: "t",
		Context: bctx.MustParse("Branch=York, Period=2006, Till=4"),
	}
	grant(t, e, deepTeller)
	// Auditing in the plain period context is denied: the bound policy
	// context "Branch=*, Period=2006" covers the deep record.
	deny(t, e, bankReq("alice", "Auditor", "Audit", "Leeds", "2006"))
}

// TestDenyLeavesStoreUntouched checks the §4.2 note: "if the access
// request is denied, then no change needs to be made to the retained ADI
// database".
func TestDenyLeavesStoreUntouched(t *testing.T) {
	e, store := newEngine(t, bankPolicies())
	grant(t, e, bankReq("alice", "Teller", "HandleCash", "York", "2006"))
	before := store.Len()
	deny(t, e, bankReq("alice", "Auditor", "Audit", "York", "2006"))
	if store.Len() != before {
		t.Fatalf("store changed on deny: %d -> %d", before, store.Len())
	}
}

// TestSimultaneousConflictingRoles checks that activating m conflicting
// roles in a single request is denied once the context has history.
func TestSimultaneousConflictingRoles(t *testing.T) {
	e, _ := newEngine(t, bankPolicies())
	grant(t, e, bankReq("bob", "Teller", "HandleCash", "York", "2006"))
	dec, err := e.Evaluate(Request{
		User:      "alice",
		Roles:     []rbac.RoleName{"Teller", "Auditor"},
		Operation: "Anything", Target: "t",
		Context: bctx.MustParse("Branch=York, Period=2006"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Effect != Deny {
		t.Fatal("simultaneous activation of the full conflicting set was granted")
	}
}

// TestFirstStepCornerCase documents the algorithm's literal step-4
// behaviour: the very first request in a context instance is recorded
// without MMER checks, so a user activating the whole conflicting set on
// the opening request slips through once — but is then locked out of
// every conflicting role for the rest of the instance.
func TestFirstStepCornerCase(t *testing.T) {
	e, _ := newEngine(t, bankPolicies())
	both := Request{
		User:      "mallory",
		Roles:     []rbac.RoleName{"Teller", "Auditor"},
		Operation: "HandleCash", Target: "t",
		Context: bctx.MustParse("Branch=York, Period=2006"),
	}
	grant(t, e, both) // step 4: no history yet, recorded verbatim
	// From now on every use of either role by mallory in 2006 is denied:
	// the recorded history lists the other conflicting role.
	deny(t, e, bankReq("mallory", "Teller", "HandleCash", "York", "2006"))
	deny(t, e, bankReq("mallory", "Auditor", "Audit", "York", "2006"))
}

// TestMultiplePoliciesAllApply checks step 1: "If there are multiple
// matches then all policies apply and are selected."
func TestMultiplePoliciesAllApply(t *testing.T) {
	policies := append(bankPolicies(), Policy{
		Context: bctx.MustParse("Branch=York"),
		MMEP: []MMEPRule{{
			Privileges: []rbac.Permission{
				{Operation: "OpenVault", Object: "vault"},
				{Operation: "CloseVault", Object: "vault"},
			},
			Cardinality: 2,
		}},
	})
	e, _ := newEngine(t, policies)

	req := Request{
		User: "alice", Roles: []rbac.RoleName{"Teller"},
		Operation: "OpenVault", Target: "vault",
		Context: bctx.MustParse("Branch=York, Period=2006"),
	}
	dec := grant(t, e, req)
	if dec.MatchedPolicies != 2 {
		t.Fatalf("MatchedPolicies = %d, want 2", dec.MatchedPolicies)
	}
	// The vault policy (scoped to Branch=York, all periods) now forbids
	// alice closing the vault even in another period.
	deny(t, e, Request{
		User: "alice", Roles: []rbac.RoleName{"Teller"},
		Operation: "CloseVault", Target: "vault",
		Context: bctx.MustParse("Branch=York, Period=2007"),
	})
	// The bank MMER policy still applies independently.
	deny(t, e, bankReq("alice", "Auditor", "Audit", "York", "2006"))
}

// TestStarAggregatesAcrossInstances contrasts "*" with "!": with
// Branch=* the history is shared across branches, with Branch=! it is
// per branch.
func TestStarAggregatesAcrossInstances(t *testing.T) {
	star := []Policy{{
		Context: bctx.MustParse("Branch=*"),
		MMER:    []MMERRule{{Roles: []rbac.RoleName{"Teller", "Auditor"}, Cardinality: 2}},
	}}
	bang := []Policy{{
		Context: bctx.MustParse("Branch=!"),
		MMER:    []MMERRule{{Roles: []rbac.RoleName{"Teller", "Auditor"}, Cardinality: 2}},
	}}

	eStar, _ := newEngine(t, star)
	grant(t, eStar, Request{User: "u", Roles: []rbac.RoleName{"Teller"},
		Operation: "op", Target: "t", Context: bctx.MustParse("Branch=York")})
	deny(t, eStar, Request{User: "u", Roles: []rbac.RoleName{"Auditor"},
		Operation: "op", Target: "t", Context: bctx.MustParse("Branch=Leeds")})

	eBang, _ := newEngine(t, bang)
	grant(t, eBang, Request{User: "u", Roles: []rbac.RoleName{"Teller"},
		Operation: "op", Target: "t", Context: bctx.MustParse("Branch=York")})
	// Different branch, different instance: allowed under "!".
	grant(t, eBang, Request{User: "u", Roles: []rbac.RoleName{"Auditor"},
		Operation: "op", Target: "t", Context: bctx.MustParse("Branch=Leeds")})
	// Same branch: denied.
	deny(t, eBang, Request{User: "u", Roles: []rbac.RoleName{"Auditor"},
		Operation: "op", Target: "t", Context: bctx.MustParse("Branch=York")})
}

func TestRequestValidation(t *testing.T) {
	e, _ := newEngine(t, bankPolicies())
	if _, err := e.Evaluate(Request{Context: bctx.MustParse("A=1")}); err == nil {
		t.Error("empty user accepted")
	}
	if _, err := e.Evaluate(Request{User: "u", Context: bctx.MustParse("A=*")}); err == nil {
		t.Error("wildcard request context accepted")
	}
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(nil, nil); err == nil {
		t.Error("nil store accepted")
	}
	bad := []Policy{{Context: bctx.Universal}}
	if _, err := NewEngine(adi.NewStore(), bad); err == nil {
		t.Error("constraint-free policy accepted")
	}
}

// TestLastStepAtContextStart: the opening operation is also the last
// step — the instance terminates immediately and nothing is retained.
func TestLastStepAtContextStart(t *testing.T) {
	e, store := newEngine(t, bankPolicies())
	dec := grant(t, e, bankReq("alice", "Auditor", "CommitAudit", "York", "2006"))
	if dec.Recorded != 0 || store.Len() != 0 {
		t.Fatalf("immediate last step retained history: %+v len=%d", dec, store.Len())
	}
}

// TestMMERThreeOfN exercises an m<n cardinality: 2-out-of-3.
func TestMMERThreeOfN(t *testing.T) {
	policies := []Policy{{
		Context: bctx.MustParse("P=!"),
		MMER: []MMERRule{{
			Roles:       []rbac.RoleName{"A", "B", "C"},
			Cardinality: 2,
		}},
	}}
	e, _ := newEngine(t, policies)
	ctx := "P=1"
	grant(t, e, Request{User: "u", Roles: []rbac.RoleName{"A"}, Operation: "op", Target: "t", Context: bctx.MustParse(ctx)})
	// Any second distinct role from the set is now denied.
	deny(t, e, Request{User: "u", Roles: []rbac.RoleName{"B"}, Operation: "op", Target: "t", Context: bctx.MustParse(ctx)})
	deny(t, e, Request{User: "u", Roles: []rbac.RoleName{"C"}, Operation: "op", Target: "t", Context: bctx.MustParse(ctx)})
	// Same role again is fine.
	grant(t, e, Request{User: "u", Roles: []rbac.RoleName{"A"}, Operation: "op2", Target: "t", Context: bctx.MustParse(ctx)})
}

// TestMMERThreeOfThree: with m=n=3 a user may hold any two but not all
// three.
func TestMMERThreeOfThree(t *testing.T) {
	policies := []Policy{{
		Context: bctx.MustParse("P=!"),
		MMER: []MMERRule{{
			Roles:       []rbac.RoleName{"A", "B", "C"},
			Cardinality: 3,
		}},
	}}
	e, _ := newEngine(t, policies)
	ctx := bctx.MustParse("P=1")
	grant(t, e, Request{User: "u", Roles: []rbac.RoleName{"A"}, Operation: "op", Target: "t", Context: ctx})
	grant(t, e, Request{User: "u", Roles: []rbac.RoleName{"B"}, Operation: "op", Target: "t", Context: ctx})
	deny(t, e, Request{User: "u", Roles: []rbac.RoleName{"C"}, Operation: "op", Target: "t", Context: ctx})
}

// TestTripleRepeatedPrivilege: MMEP({p,p,p},3) caps executions at two
// per instance (multiset counting).
func TestTripleRepeatedPrivilege(t *testing.T) {
	p := rbac.Permission{Operation: "approve", Object: "t"}
	policies := []Policy{{
		Context: bctx.MustParse("P=!"),
		MMEP: []MMEPRule{{
			Privileges:  []rbac.Permission{p, p, p},
			Cardinality: 3,
		}},
	}}
	e, _ := newEngine(t, policies)
	ctx := bctx.MustParse("P=1")
	req := Request{User: "u", Roles: []rbac.RoleName{"Manager"}, Operation: "approve", Target: "t", Context: ctx}
	grant(t, e, req)
	grant(t, e, req)
	deny(t, e, req)
}

func TestDenialError(t *testing.T) {
	e, _ := newEngine(t, bankPolicies())
	grant(t, e, bankReq("alice", "Teller", "HandleCash", "York", "2006"))
	dec := deny(t, e, bankReq("alice", "Auditor", "Audit", "York", "2006"))
	msg := dec.Denial.Error()
	for _, want := range []string{"MMER[0]", "Branch=*, Period=!", "alice"} {
		if !strings.Contains(msg, want) {
			t.Errorf("denial message %q missing %q", msg, want)
		}
	}
	if Grant.String() != "grant" || Deny.String() != "deny" {
		t.Error("Effect.String broken")
	}
}
