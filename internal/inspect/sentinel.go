package inspect

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"msod/internal/audit"
	"msod/internal/obsv"
)

// Sentinel metric family names.
const (
	// VerifiedSeqMetric is the last audit sequence number the chain has
	// been verified through.
	VerifiedSeqMetric = "msod_audit_chain_verified_seq"
	// CheckDurationMetric is the incremental check latency histogram.
	CheckDurationMetric = "msod_audit_chain_check_duration_seconds"
	// TamperDetectedMetric is the latched tamper alarm (0 or 1; once 1,
	// it stays 1 until restart).
	TamperDetectedMetric = "msod_audit_chain_tamper_detected"
)

// DefaultSentinelInterval is used when SentinelConfig.Interval is not
// positive.
const DefaultSentinelInterval = 10 * time.Second

// SentinelConfig configures an audit-chain integrity sentinel.
type SentinelConfig struct {
	// Dir and Key locate and verify the trail (same values as the
	// audit.Writer's).
	Dir string
	Key []byte
	// Interval is the background check period (DefaultSentinelInterval
	// when <= 0).
	Interval time.Duration
	// Logger receives check errors; nil discards them.
	Logger *slog.Logger
	// OnTamper, when non-nil, is called exactly once, from the checking
	// goroutine, when tampering is first detected. The server uses it
	// to flip fail-closed.
	OnTamper func(error)
}

// Sentinel continuously re-verifies the audit trail's HMAC chain while
// the daemon runs: an incremental pass over newly appended entries on
// every interval, with a latched alarm on the first chain break. The
// paper's implementation only verifies the trail during start-up
// reconstruction, leaving a window where on-disk tampering goes
// unnoticed until the next restart; the sentinel closes that window.
type Sentinel struct {
	cfg SentinelConfig

	mu        sync.Mutex // serialises checks; guards iv and tamperErr
	iv        *audit.IncrementalVerifier
	tamperErr error

	tampered    atomic.Bool
	verifiedSeq atomic.Uint64
	checks      atomic.Int64
	hist        *obsv.Histogram

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewSentinel builds a sentinel; call Start to begin background checks,
// or drive it manually with CheckNow.
func NewSentinel(cfg SentinelConfig) (*Sentinel, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("inspect: sentinel needs a trail directory")
	}
	iv, err := audit.NewIncrementalVerifier(cfg.Dir, cfg.Key)
	if err != nil {
		return nil, err
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultSentinelInterval
	}
	return &Sentinel{
		cfg:  cfg,
		iv:   iv,
		hist: obsv.NewHistogram(obsv.DefaultDurationBuckets),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}, nil
}

// Start launches the background checking goroutine (idempotent).
func (s *Sentinel) Start() {
	s.startOnce.Do(func() {
		go s.run()
	})
}

// Stop terminates the background goroutine and waits for it (idempotent,
// safe without Start).
func (s *Sentinel) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.startOnce.Do(func() { close(s.done) }) // never started: unblock the wait
	<-s.done
}

func (s *Sentinel) run() {
	defer close(s.done)
	t := time.NewTicker(s.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.CheckNow()
		}
	}
}

// CheckNow runs one incremental verification pass immediately. After
// tampering has latched, it returns the original tamper error without
// touching the trail again.
func (s *Sentinel) CheckNow() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tamperErr != nil {
		return s.tamperErr
	}
	start := time.Now() //msod:ignore clockuse check-duration histogram telemetry; verification reads the trail, never writes it
	_, err := s.iv.Advance()
	s.hist.Observe(time.Since(start))
	s.checks.Add(1)
	s.verifiedSeq.Store(s.iv.VerifiedSeq())
	if err == nil {
		return nil
	}
	if errors.Is(err, audit.ErrTampered) || errors.Is(err, audit.ErrBadSequence) {
		s.tamperErr = fmt.Errorf("audit chain integrity failure: %w", err)
		s.tampered.Store(true)
		if s.cfg.Logger != nil {
			s.cfg.Logger.Error("audit chain tamper detected",
				"err", err, "verified_seq", s.iv.VerifiedSeq())
		}
		if s.cfg.OnTamper != nil {
			s.cfg.OnTamper(s.tamperErr)
		}
		return s.tamperErr
	}
	// Transient I/O trouble: report, do not latch.
	if s.cfg.Logger != nil {
		s.cfg.Logger.Warn("audit chain check failed", "err", err)
	}
	return err
}

// Tampered reports whether the latched alarm has fired.
func (s *Sentinel) Tampered() bool { return s.tampered.Load() }

// TamperError returns the latched tamper error (nil before detection).
func (s *Sentinel) TamperError() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tamperErr
}

// VerifiedSeq returns the last sequence number verified.
func (s *Sentinel) VerifiedSeq() uint64 { return s.verifiedSeq.Load() }

// Checks returns how many verification passes have run.
func (s *Sentinel) Checks() int64 { return s.checks.Load() }

// WriteMetrics emits the sentinel's metric families in Prometheus text
// format.
func (s *Sentinel) WriteMetrics(w io.Writer) {
	obsv.WriteGauge(w, VerifiedSeqMetric,
		"Last audit trail sequence number verified by the integrity sentinel.",
		float64(s.VerifiedSeq()))
	s.hist.Write(w, CheckDurationMetric,
		"Duration of incremental audit chain verification passes.")
	tampered := 0.0
	if s.Tampered() {
		tampered = 1
	}
	obsv.WriteGauge(w, TamperDetectedMetric,
		"1 once the audit chain has failed verification (latched until restart).",
		tampered)
}
