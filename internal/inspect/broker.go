// Package inspect provides live observability over MSoD state: a
// retained-ADI introspection API (per user × context instance
// constraint progress, the operator's "how close is this user to a
// violation" view), a bounded decision event broker feeding /v1/events
// subscribers, and an audit-chain integrity sentinel that continuously
// re-verifies the HMAC chain the paper only checks at start-up
// reconstruction (§5.2).
package inspect

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"msod/internal/bctx"
)

// Decision outcomes as they appear in events and filters (matching the
// audit trail's effect vocabulary). OutcomePurge extends it: management
// purges mutate the retained ADI without being decisions, and a mirror
// replaying the stream must see them or silently diverge.
const (
	OutcomeGrant = "grant"
	OutcomeDeny  = "deny"
	OutcomePurge = "purge"
)

// ErrGap reports that a sequence-resumed subscription cannot be
// satisfied: the events after the requested sequence have rotated out
// of the ring (or the broker restarted and its numbering reset), so
// resuming would silently skip history. Callers must fall back to a
// full state resync instead.
var ErrGap = errors.New("inspect: resume gap: requested sequence is no longer retained")

// DecisionEvent is one PDP decision as published to the event stream.
// It mirrors the audit event's request echo, with the denial stage and
// reason added so a tailing operator sees *why* without opening the
// trail.
type DecisionEvent struct {
	// Seq is the broker-assigned publication number (1-based,
	// per-broker; not the audit trail sequence).
	Seq uint64 `json:"seq"`
	// Time is the decision time.
	Time time.Time `json:"time"`
	// TraceID correlates the event with the DecisionResponse, gateway
	// log line and audit record of the same request.
	TraceID string `json:"trace,omitempty"`
	// User, Roles, Operation, Target, Context echo the request.
	User      string   `json:"user"`
	Roles     []string `json:"roles,omitempty"`
	Operation string   `json:"op"`
	Target    string   `json:"target"`
	Context   string   `json:"ctx"`
	// Effect is OutcomeGrant or OutcomeDeny.
	Effect string `json:"effect"`
	// Stage names the pipeline stage that denied (cvs, rbac, msod);
	// empty on grants.
	Stage string `json:"stage,omitempty"`
	// Reason is the denial explanation; empty on grants.
	Reason string `json:"reason,omitempty"`
	// Rule, K and M identify the refusing MSoD constraint on an msod
	// denial — the rule's ID within its policy ("MMER[0]", "MMEP[1]"),
	// the conflict count already consumed, and the forbidden
	// cardinality — so a tailing operator sees which k-of-m counter
	// tripped without fetching the full explain record.
	Rule string `json:"rule,omitempty"`
	K    int    `json:"k,omitempty"`
	M    int    `json:"m,omitempty"`
	// MatchedPolicies is how many MSoD policies matched the request.
	MatchedPolicies int `json:"matched,omitempty"`
	// Recorded and Purged echo the decision's retained-ADI effects
	// (records appended, records removed by a last-step or management
	// purge). A mirror replaying the stream compares its own effects
	// against these to detect divergence instead of drifting silently.
	Recorded int `json:"recorded,omitempty"`
	Purged   int `json:"purged,omitempty"`
	// Before is the cutoff of a purge-before management event; nil
	// otherwise.
	Before *time.Time `json:"before,omitempty"`
	// Shard is stamped by the gateway fan-in with the shard ID the
	// event came from; empty on a shard's own stream.
	Shard string `json:"shard,omitempty"`
}

// Filter selects a subset of the event stream. The zero Filter matches
// everything. Construct with NewFilter to validate and compile the
// context pattern.
type Filter struct {
	// User, when non-empty, matches only that user's decisions.
	User string
	// Outcome, when non-empty, is OutcomeGrant or OutcomeDeny.
	Outcome string

	ctx    bctx.Name
	hasCtx bool
}

// NewFilter compiles a filter from query-style string parameters. The
// context parameter is a business-context pattern (wildcards allowed);
// events whose instance falls within it match.
func NewFilter(user, ctxPattern, outcome string) (Filter, error) {
	f := Filter{User: user, Outcome: outcome}
	switch outcome {
	case "", OutcomeGrant, OutcomeDeny, OutcomePurge:
	default:
		return Filter{}, fmt.Errorf("inspect: outcome %q is not %q, %q or %q", outcome, OutcomeGrant, OutcomeDeny, OutcomePurge)
	}
	if ctxPattern != "" {
		pat, err := bctx.Parse(ctxPattern)
		if err != nil {
			return Filter{}, fmt.Errorf("inspect: context filter: %w", err)
		}
		f.ctx, f.hasCtx = pat, true
	}
	return f, nil
}

// Match reports whether the event passes the filter.
func (f Filter) Match(ev DecisionEvent) bool {
	if f.User != "" && ev.User != f.User {
		return false
	}
	if f.Outcome != "" && ev.Effect != f.Outcome {
		return false
	}
	if f.hasCtx {
		inst, err := bctx.Parse(ev.Context)
		if err != nil {
			return false
		}
		ok, err := bctx.MatchInstance(f.ctx, inst)
		if err != nil || !ok {
			return false
		}
	}
	return true
}

// Subscriber is one live consumer of the event stream. Events arrive on
// Events(); a consumer that falls behind loses events (counted by
// Dropped) rather than back-pressuring the PDP.
type Subscriber struct {
	ch      chan DecisionEvent
	filter  Filter
	dropped atomic.Uint64
}

// Events is the subscriber's delivery channel. It is closed by
// Unsubscribe (or Close on the broker).
func (s *Subscriber) Events() <-chan DecisionEvent { return s.ch }

// Dropped returns how many matching events were discarded because the
// subscriber's buffer was full.
func (s *Subscriber) Dropped() uint64 { return s.dropped.Load() }

// DefaultBrokerCapacity is the ring size used when NewBroker is given a
// non-positive capacity.
const DefaultBrokerCapacity = 1024

// Broker is a bounded ring-buffer event broker: the PDP publishes every
// decision, subscribers tail the stream, and the ring retains the most
// recent events for replay and last-trace lookups. Publishing never
// blocks on consumers. Broker is safe for concurrent use.
type Broker struct {
	mu     sync.Mutex
	ring   []DecisionEvent
	head   int // index of the oldest retained event
	size   int
	seq    uint64
	subs   map[*Subscriber]struct{}
	closed bool
	// now stamps events published without a time; injectable so the
	// event stream stays deterministic under replay (see SetClock).
	now func() time.Time
}

// NewBroker returns a broker retaining up to capacity events.
func NewBroker(capacity int) *Broker {
	if capacity <= 0 {
		capacity = DefaultBrokerCapacity
	}
	return &Broker{
		ring: make([]DecisionEvent, capacity),
		subs: make(map[*Subscriber]struct{}),
		now:  time.Now,
	}
}

// SetClock replaces the time source used to stamp events published
// without an explicit Time. The PDP passes its injected clock through
// so trail records and streamed events carry the same timestamps.
func (b *Broker) SetClock(now func() time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if now != nil {
		b.now = now
	}
}

// Publish assigns the event its sequence number, retains it in the ring
// and fans it out to matching subscribers without blocking. It returns
// the assigned sequence number.
func (b *Broker) Publish(ev DecisionEvent) uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return 0
	}
	b.seq++
	ev.Seq = b.seq
	if ev.Time.IsZero() {
		ev.Time = b.now()
	}
	if b.size < len(b.ring) {
		b.ring[(b.head+b.size)%len(b.ring)] = ev
		b.size++
	} else {
		b.ring[b.head] = ev
		b.head = (b.head + 1) % len(b.ring)
	}
	for s := range b.subs {
		if !s.filter.Match(ev) {
			continue
		}
		select {
		case s.ch <- ev:
		default:
			s.dropped.Add(1)
		}
	}
	return ev.Seq
}

// Subscribe registers a consumer. Up to replay of the most recent
// retained events matching the filter are queued first (oldest first),
// so a tail can show recent history before going live.
func (b *Broker) Subscribe(f Filter, replay int) *Subscriber {
	if replay < 0 {
		replay = 0
	}
	if replay > len(b.ring) {
		replay = len(b.ring)
	}
	buf := replay + 64
	s := &Subscriber{ch: make(chan DecisionEvent, buf), filter: f}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		close(s.ch)
		return s
	}
	if replay > 0 {
		// Collect the newest `replay` matches, then enqueue oldest first.
		matches := make([]DecisionEvent, 0, replay)
		for i := b.size - 1; i >= 0 && len(matches) < replay; i-- {
			ev := b.ring[(b.head+i)%len(b.ring)]
			if f.Match(ev) {
				matches = append(matches, ev)
			}
		}
		for i := len(matches) - 1; i >= 0; i-- {
			s.ch <- matches[i]
		}
	}
	b.subs[s] = struct{}{}
	return s
}

// SubscribeFrom registers a consumer resuming after a known sequence
// number: every retained event with Seq > afterSeq that matches the
// filter is queued first (oldest first, gap-free), then the
// subscription goes live. It returns ErrGap when the span after
// afterSeq is no longer fully retained — either the ring rotated past
// it or the broker restarted and afterSeq is from a previous
// incarnation — because resuming would silently skip events; callers
// must fall back to a full state resync. afterSeq 0 means "from the
// oldest retained event" and gaps once the ring has rotated at all.
func (b *Broker) SubscribeFrom(f Filter, afterSeq uint64) (*Subscriber, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		s := &Subscriber{ch: make(chan DecisionEvent), filter: f}
		close(s.ch)
		return s, nil
	}
	if afterSeq > b.seq {
		return nil, fmt.Errorf("%w: resume after seq %d, but this broker is at seq %d (restarted?)",
			ErrGap, afterSeq, b.seq)
	}
	pending := b.seq - afterSeq
	if pending > uint64(b.size) {
		return nil, fmt.Errorf("%w: resume after seq %d needs %d events but only %d are retained (oldest retained seq %d)",
			ErrGap, afterSeq, pending, b.size, b.seq-uint64(b.size)+1)
	}
	s := &Subscriber{ch: make(chan DecisionEvent, int(pending)+64), filter: f}
	for i := b.size - int(pending); i < b.size; i++ {
		ev := b.ring[(b.head+i)%len(b.ring)]
		if f.Match(ev) {
			s.ch <- ev
		}
	}
	b.subs[s] = struct{}{}
	return s, nil
}

// Unsubscribe removes the consumer and closes its channel.
func (b *Broker) Unsubscribe(s *Subscriber) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.subs[s]; !ok {
		return
	}
	delete(b.subs, s)
	close(s.ch)
}

// Close closes every subscriber and stops accepting events.
func (b *Broker) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for s := range b.subs {
		delete(b.subs, s)
		close(s.ch)
	}
}

// Recent returns up to n of the most recent retained events matching
// the filter, oldest first.
func (b *Broker) Recent(f Filter, n int) []DecisionEvent {
	b.mu.Lock()
	defer b.mu.Unlock()
	if n <= 0 || n > b.size {
		n = b.size
	}
	matches := make([]DecisionEvent, 0, n)
	for i := b.size - 1; i >= 0 && len(matches) < n; i-- {
		ev := b.ring[(b.head+i)%len(b.ring)]
		if f.Match(ev) {
			matches = append(matches, ev)
		}
	}
	for i, j := 0, len(matches)-1; i < j; i, j = i+1, j-1 {
		matches[i], matches[j] = matches[j], matches[i]
	}
	return matches
}

// LastMatch returns the most recent retained event for which match
// returns true.
func (b *Broker) LastMatch(match func(DecisionEvent) bool) (DecisionEvent, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := b.size - 1; i >= 0; i-- {
		ev := b.ring[(b.head+i)%len(b.ring)]
		if match(ev) {
			return ev, true
		}
	}
	return DecisionEvent{}, false
}

// Seq returns the last published sequence number.
func (b *Broker) Seq() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}
