package inspect

import (
	"testing"

	"msod/internal/adi"
	"msod/internal/bctx"
	"msod/internal/core"
	"msod/internal/rbac"
)

// newTaxLikeEngine builds an engine with two policies:
//
//   - "Project=!": MMER {A,B,C} forbidden cardinality 3 (holding all
//     three within one project instance is a violation), plus an MMEP
//     multiset {p@t, p@t, q@t} forbidden cardinality 3.
//   - "W=!" with first/last steps: MMEP {start@w, mid@w} cardinality 2.
func newTaxLikeEngine(t *testing.T) (*core.Engine, *adi.Store) {
	t.Helper()
	store := adi.NewStore()
	pols := []core.Policy{
		{
			Context: bctx.MustParse("Project=!"),
			MMER:    []core.MMERRule{{Roles: []rbac.RoleName{"A", "B", "C"}, Cardinality: 3}},
			MMEP: []core.MMEPRule{{
				Privileges: []rbac.Permission{
					{Operation: "p", Object: "t"},
					{Operation: "p", Object: "t"},
					{Operation: "q", Object: "t"},
				},
				Cardinality: 3,
			}},
		},
		{
			Context:   bctx.MustParse("W=!"),
			FirstStep: &core.Step{Operation: "start", Target: "w"},
			LastStep:  &core.Step{Operation: "end", Target: "w"},
			MMEP: []core.MMEPRule{{
				Privileges: []rbac.Permission{
					{Operation: "start", Object: "w"},
					{Operation: "mid", Object: "w"},
				},
				Cardinality: 2,
			}},
		},
	}
	eng, err := core.NewEngine(store, pols)
	if err != nil {
		t.Fatal(err)
	}
	return eng, store
}

func grant(t *testing.T, eng *core.Engine, user, role, op, target, ctx string) {
	t.Helper()
	var roles []rbac.RoleName
	if role != "" {
		roles = []rbac.RoleName{rbac.RoleName(role)}
	}
	dec, err := eng.Evaluate(core.Request{
		User: rbac.UserID(user), Roles: roles,
		Operation: rbac.Operation(op), Target: rbac.Object(target),
		Context: bctx.MustParse(ctx),
	})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Effect != core.Grant {
		t.Fatalf("%s %s@%s in %s: denied: %+v", user, op, target, ctx, dec.Denial)
	}
}

func newTestInspector(t *testing.T) (*Inspector, *core.Engine) {
	t.Helper()
	eng, store := newTaxLikeEngine(t)
	browser, ok := adi.BrowserFor(store)
	if !ok {
		t.Fatal("Store does not support browsing")
	}
	return NewInspector(eng, browser, nil), eng
}

func findConstraint(t *testing.T, cons []ConstraintProgress, rule string) ConstraintProgress {
	t.Helper()
	for _, c := range cons {
		if c.Rule == rule {
			return c
		}
	}
	t.Fatalf("no %s constraint in %+v", rule, cons)
	return ConstraintProgress{}
}

func TestUserStateMMERProgress(t *testing.T) {
	in, eng := newTestInspector(t)
	grant(t, eng, "alice", "A", "x", "o", "Project=p1")
	grant(t, eng, "alice", "B", "y", "o", "Project=p1")

	st := in.UserState("alice")
	if len(st.Records) != 2 {
		t.Fatalf("records = %d, want 2", len(st.Records))
	}
	c := findConstraint(t, st.Constraints, "MMER[0]")
	if c.K != 2 || c.M != 3 || !c.NearLimit {
		t.Errorf("MMER progress = k=%d m=%d near=%v, want 2/3 near-limit", c.K, c.M, c.NearLimit)
	}
	if len(c.Roles) != 2 {
		t.Errorf("roles consumed = %v, want [A B]", c.Roles)
	}
	if c.Bound != "Project=p1" {
		t.Errorf("bound = %q", c.Bound)
	}

	// The third mutually exclusive role is denied — and the engine's
	// threshold is exactly what NearLimit promised.
	dec, err := eng.Evaluate(core.Request{
		User: "alice", Roles: []rbac.RoleName{"C"},
		Operation: "z", Target: "o", Context: bctx.MustParse("Project=p1"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Effect != core.Deny {
		t.Fatal("third mutually exclusive role was granted past near-limit")
	}
	// Progress is unchanged by the denial.
	if c2 := findConstraint(t, in.UserState("alice").Constraints, "MMER[0]"); c2.K != 2 {
		t.Errorf("k after denial = %d, want 2", c2.K)
	}
}

func TestUserStateMMEPMultisetProgress(t *testing.T) {
	in, eng := newTestInspector(t)
	// p is listed twice in the rule: two executions fill two positions.
	grant(t, eng, "alice", "A", "p", "t", "Project=p1")
	grant(t, eng, "alice", "A", "p", "t", "Project=p1")

	c := findConstraint(t, in.UserState("alice").Constraints, "MMEP[0]")
	if c.K != 2 || c.M != 3 || !c.NearLimit {
		t.Errorf("MMEP progress = k=%d m=%d near=%v, want 2/3 near-limit", c.K, c.M, c.NearLimit)
	}
	if len(c.Privileges) != 2 || c.Privileges[0] != "p@t" {
		t.Errorf("privileges consumed = %v, want [p@t p@t]", c.Privileges)
	}
	// A third p grant exceeds the multiset's two positions for p: it is
	// still granted (only two count), and k stays at 2.
	grant(t, eng, "alice", "A", "p", "t", "Project=p1")
	if c := findConstraint(t, in.UserState("alice").Constraints, "MMEP[0]"); c.K != 2 {
		t.Errorf("k after third p = %d, want 2 (multiset caps per-privilege count)", c.K)
	}
}

func TestContextStateScopesToPattern(t *testing.T) {
	in, eng := newTestInspector(t)
	grant(t, eng, "alice", "A", "x", "o", "Project=p1")
	grant(t, eng, "bob", "B", "x", "o", "Project=p2")
	grant(t, eng, "carol", "A", "start", "w", "W=w1")

	st := in.ContextState(bctx.MustParse("Project=*"))
	if len(st.Instances) != 2 {
		t.Fatalf("instances = %v, want the two Project instances", st.Instances)
	}
	if len(st.Users) != 2 {
		t.Fatalf("users = %d, want alice and bob", len(st.Users))
	}
	for _, u := range st.Users {
		if u.User == "carol" {
			t.Error("carol (active only in W=w1) reported under Project=*")
		}
	}

	narrow := in.ContextState(bctx.MustParse("Project=p1"))
	if len(narrow.Instances) != 1 || len(narrow.Users) != 1 || narrow.Users[0].User != "alice" {
		t.Errorf("Project=p1 state = %+v, want just alice in p1", narrow)
	}
}

func TestSummaryNearLimitRisesAndFalls(t *testing.T) {
	in, eng := newTestInspector(t)

	// Rise: one start grant puts alice at k=1 of m=2 in W=w1.
	grant(t, eng, "alice", "A", "start", "w", "W=w1")
	s := in.Summary()
	if s.InstancesOpen != 1 || s.ConstraintsTracked != 1 || s.ConstraintsNearLimit != 1 {
		t.Fatalf("after start: %+v, want 1/1/1", s)
	}

	// Fall: the granted last step purges the bound context entirely.
	grant(t, eng, "alice", "A", "end", "w", "W=w1")
	s = in.Summary()
	if s.InstancesOpen != 0 || s.ConstraintsTracked != 0 || s.ConstraintsNearLimit != 0 {
		t.Fatalf("after last step: %+v, want all zero", s)
	}
}

func TestLastTraceIDFromBroker(t *testing.T) {
	eng, store := newTaxLikeEngine(t)
	browser, _ := adi.BrowserFor(store)
	broker := NewBroker(8)
	in := NewInspector(eng, browser, broker)

	grant(t, eng, "alice", "A", "x", "o", "Project=p1")
	e := ev("alice", OutcomeGrant, "Project=p1")
	e.TraceID = "trace-1"
	broker.Publish(e)

	c := findConstraint(t, in.UserState("alice").Constraints, "MMER[0]")
	if c.LastTraceID != "trace-1" {
		t.Errorf("LastTraceID = %q, want trace-1", c.LastTraceID)
	}
}

// TestBrowserConsistencyAcrossStores runs the same scenario over every
// store implementation and expects identical introspection answers.
func TestBrowserConsistencyAcrossStores(t *testing.T) {
	stores := map[string]adi.Recorder{
		"store":   adi.NewStore(),
		"linear":  adi.NewLinearStore(),
		"sharded": adi.NewShardedStore(4),
	}
	for name, store := range stores {
		t.Run(name, func(t *testing.T) {
			pols := []core.Policy{{
				Context: bctx.MustParse("Project=!"),
				MMER:    []core.MMERRule{{Roles: []rbac.RoleName{"A", "B"}, Cardinality: 2}},
			}}
			eng, err := core.NewEngine(store, pols)
			if err != nil {
				t.Fatal(err)
			}
			grant(t, eng, "alice", "A", "x", "o", "Project=p1")
			browser, ok := adi.BrowserFor(store)
			if !ok {
				t.Fatalf("%s does not support browsing", name)
			}
			in := NewInspector(eng, browser, nil)
			c := findConstraint(t, in.UserState("alice").Constraints, "MMER[0]")
			if c.K != 1 || c.M != 2 || !c.NearLimit {
				t.Errorf("%s: progress = %+v, want 1/2 near-limit", name, c)
			}
			s := in.Summary()
			if s.InstancesOpen != 1 || s.ConstraintsTracked != 1 || s.ConstraintsNearLimit != 1 {
				t.Errorf("%s: summary = %+v", name, s)
			}
		})
	}
}
