package inspect

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"msod/internal/audit"
)

var sentinelKey = []byte("sentinel-test-key")

func appendEvents(t *testing.T, w *audit.Writer, n int, user string) {
	t.Helper()
	for i := 0; i < n; i++ {
		_, err := w.Append(audit.Event{
			Time: time.Unix(int64(i), 0), User: user,
			Operation: "op", Target: "t", Context: "P=1", Effect: "grant",
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func newTrailSentinel(t *testing.T) (string, *audit.Writer, *Sentinel) {
	t.Helper()
	dir := t.TempDir()
	w, err := audit.NewWriter(dir, sentinelKey, 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	s, err := NewSentinel(SentinelConfig{Dir: dir, Key: sentinelKey, Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	return dir, w, s
}

func TestSentinelAdvancesOverAppends(t *testing.T) {
	_, w, s := newTrailSentinel(t)
	appendEvents(t, w, 6, "alice")
	if err := s.CheckNow(); err != nil {
		t.Fatalf("first check: %v", err)
	}
	if s.VerifiedSeq() != 6 {
		t.Fatalf("VerifiedSeq = %d, want 6", s.VerifiedSeq())
	}
	// Incremental: new entries appended after the checkpoint are picked
	// up by the next check without re-reading history.
	appendEvents(t, w, 3, "bob")
	if err := s.CheckNow(); err != nil {
		t.Fatalf("second check: %v", err)
	}
	if s.VerifiedSeq() != 9 {
		t.Fatalf("VerifiedSeq = %d, want 9", s.VerifiedSeq())
	}
	if s.Tampered() {
		t.Error("Tampered() on a clean trail")
	}
	if s.Checks() != 2 {
		t.Errorf("Checks = %d, want 2", s.Checks())
	}
}

// corruptNewestEntry flips content inside the last complete line of the
// newest segment — a region the sentinel has not verified yet.
func corruptNewestEntry(t *testing.T, dir string) {
	t.Helper()
	segs, err := audit.Segments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v (%d)", err, len(segs))
	}
	path := filepath.Join(dir, segs[len(segs)-1])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mutated := strings.Replace(string(data), `"user":"mallory"`, `"user":"innocent"`, 1)
	if mutated == string(data) {
		t.Fatal("corruption target not found in newest segment")
	}
	if err := os.WriteFile(path, []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestSentinelDetectsMidRunTamperAndLatches(t *testing.T) {
	dir, w, s := newTrailSentinel(t)
	appendEvents(t, w, 3, "alice")
	if err := s.CheckNow(); err != nil {
		t.Fatalf("clean check: %v", err)
	}

	var tamperCalls int
	s.cfg.OnTamper = func(error) { tamperCalls++ }

	// Mid-run: entries appended after the last check are rewritten
	// before the sentinel sees them.
	appendEvents(t, w, 2, "mallory")
	corruptNewestEntry(t, dir)

	err := s.CheckNow()
	if !errors.Is(err, audit.ErrTampered) {
		t.Fatalf("CheckNow after tamper = %v, want ErrTampered", err)
	}
	if !s.Tampered() || s.TamperError() == nil {
		t.Fatal("tamper did not latch")
	}
	if tamperCalls != 1 {
		t.Fatalf("OnTamper called %d times, want 1", tamperCalls)
	}

	// Latched: every later check reports the same failure without
	// re-running verification, even though the writer keeps appending.
	appendEvents(t, w, 1, "alice")
	err2 := s.CheckNow()
	if !errors.Is(err2, audit.ErrTampered) {
		t.Fatalf("latched CheckNow = %v", err2)
	}
	if tamperCalls != 1 {
		t.Errorf("OnTamper re-fired on latched alarm (%d calls)", tamperCalls)
	}
}

func TestSentinelDetectsSegmentShrink(t *testing.T) {
	dir, w, s := newTrailSentinel(t)
	appendEvents(t, w, 3, "alice")
	if err := s.CheckNow(); err != nil {
		t.Fatal(err)
	}
	segs, _ := audit.Segments(dir)
	path := filepath.Join(dir, segs[len(segs)-1])
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()/2); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckNow(); !errors.Is(err, audit.ErrTampered) {
		t.Fatalf("CheckNow after shrink = %v, want ErrTampered", err)
	}
}

func TestSentinelWriteMetrics(t *testing.T) {
	_, w, s := newTrailSentinel(t)
	appendEvents(t, w, 5, "alice")
	if err := s.CheckNow(); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	s.WriteMetrics(&sb)
	out := sb.String()
	for _, want := range []string{
		VerifiedSeqMetric + " 5",
		TamperDetectedMetric + " 0",
		CheckDurationMetric + "_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q in:\n%s", want, out)
		}
	}
}

func TestSentinelBackgroundLoop(t *testing.T) {
	dir := t.TempDir()
	w, err := audit.NewWriter(dir, sentinelKey, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	s, err := NewSentinel(SentinelConfig{Dir: dir, Key: sentinelKey, Interval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	appendEvents(t, w, 4, "alice")
	s.Start()
	defer s.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for s.VerifiedSeq() < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("sentinel loop never verified: seq=%d", s.VerifiedSeq())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSentinelStopWithoutStart(t *testing.T) {
	dir := t.TempDir()
	if _, err := audit.NewWriter(dir, sentinelKey, 4); err != nil {
		t.Fatal(err)
	}
	s, err := NewSentinel(SentinelConfig{Dir: dir, Key: sentinelKey})
	if err != nil {
		t.Fatal(err)
	}
	s.Stop() // must not hang or panic
}

func TestSentinelConfigValidation(t *testing.T) {
	if _, err := NewSentinel(SentinelConfig{Dir: "", Key: sentinelKey}); err == nil {
		t.Error("NewSentinel accepted empty dir")
	}
	if _, err := NewSentinel(SentinelConfig{Dir: t.TempDir(), Key: nil}); err == nil {
		t.Error("NewSentinel accepted empty key")
	}
}
