package inspect

import (
	"fmt"
	"sort"
	"time"

	"msod/internal/adi"
	"msod/internal/bctx"
	"msod/internal/core"
	"msod/internal/rbac"
)

// RecordView is the JSON shape of one retained-ADI record in state
// answers.
type RecordView struct {
	Roles     []string  `json:"roles,omitempty"`
	Operation string    `json:"op"`
	Target    string    `json:"target"`
	Context   string    `json:"ctx"`
	Time      time.Time `json:"time"`
}

// ConstraintProgress is one user's progress against one MMER/MMEP rule
// inside one bound context: k of the forbidden cardinality m consumed.
// The engine denies the request that would reach m, so k == m−1 is "one
// step from violation".
type ConstraintProgress struct {
	// Policy is the owning policy's context pattern.
	Policy string `json:"policy"`
	// Bound is the context the rule is evaluated in: the policy pattern
	// with "!" components bound to the instance's values.
	Bound string `json:"bound"`
	// Rule identifies the rule within the policy (MMER[i] / MMEP[i],
	// matching the Denial.Rule vocabulary).
	Rule string `json:"rule"`
	// Kind is "MMER" or "MMEP".
	Kind string `json:"kind"`
	// K is the consumed count, M the forbidden cardinality.
	K int `json:"k"`
	M int `json:"m"`
	// NearLimit is k == m−1: the next conflicting activation is denied.
	NearLimit bool `json:"near_limit"`
	// Roles lists the consumed mutually exclusive roles (MMER).
	Roles []string `json:"roles_consumed,omitempty"`
	// Privileges lists the consumed privilege positions as op@target
	// strings (MMEP), one entry per counted position.
	Privileges []string `json:"privileges_consumed,omitempty"`
	// LastTraceID is the trace ID of the user's most recent decision in
	// the bound context still retained by the event broker (empty when
	// no broker is attached or the event has rotated out).
	LastTraceID string `json:"last_trace_id,omitempty"`
}

// UserState is the /v1/state/users/{user} answer: the user's retained
// records and constraint progress across every open context instance.
type UserState struct {
	User        string               `json:"user"`
	Records     []RecordView         `json:"records,omitempty"`
	Constraints []ConstraintProgress `json:"constraints,omitempty"`
}

// ContextState is the /v1/state/contexts/{bc} answer: the open
// instances within the pattern and, per user active there, their
// records and constraint progress scoped to it.
type ContextState struct {
	Context   string      `json:"context"`
	Instances []string    `json:"instances,omitempty"`
	Users     []UserState `json:"users,omitempty"`
}

// Summary feeds the derived gauges on /v1/metrics.
type Summary struct {
	// InstancesOpen is the number of distinct context instances with
	// retained records (msod_context_instances_open).
	InstancesOpen int `json:"instances_open"`
	// ConstraintsTracked counts (user, policy, bound context, rule)
	// tuples with k >= 1 (msod_constraints_tracked).
	ConstraintsTracked int `json:"constraints_tracked"`
	// ConstraintsNearLimit counts tracked tuples with k == m−1
	// (msod_constraints_near_limit).
	ConstraintsNearLimit int `json:"constraints_near_limit"`
}

// Inspector answers state introspection queries by combining the
// engine's compiled policies with a read-only view of the retained ADI.
// All answers are computed from live store state at call time. The
// broker is optional and only supplies last-trace correlation.
type Inspector struct {
	engine  *core.Engine
	browser adi.Browser
	broker  *Broker
}

// NewInspector builds an inspector over the engine's policies and the
// store's browse surface. broker may be nil.
func NewInspector(engine *core.Engine, browser adi.Browser, broker *Broker) *Inspector {
	return &Inspector{engine: engine, browser: browser, broker: broker}
}

// boundPair is one (policy, bound context) evaluation scope derived
// from an open instance.
type boundPair struct {
	policy *core.Policy
	bound  bctx.Name
}

// boundPairs derives the deduplicated (policy, bound context) pairs
// from the open instances, optionally restricted to instances within
// scope. Multiple instances bind a "*"-scoped policy to the same bound
// context; they are reported once, exactly as the engine evaluates
// them.
func (in *Inspector) boundPairs(scope bctx.Name, scoped bool) []boundPair {
	policies := in.engine.Policies()
	seen := make(map[string]bool)
	var out []boundPair
	for _, inst := range in.browser.Instances() {
		if scoped {
			if ok, err := bctx.MatchInstance(scope, inst); err != nil || !ok {
				continue
			}
		}
		for pi := range policies {
			p := &policies[pi]
			if ok, err := bctx.MatchInstance(p.Context, inst); err != nil || !ok {
				continue
			}
			bound, err := bctx.Bind(p.Context, inst)
			if err != nil {
				continue
			}
			key := fmt.Sprintf("%d|%s", pi, bound.Key())
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, boundPair{policy: p, bound: bound})
		}
	}
	return out
}

// progressFor computes the user's constraint progress over the pairs,
// reporting only rules with k >= 1 (a constraint is "tracked" once the
// user has consumed something it counts).
func (in *Inspector) progressFor(user rbac.UserID, pairs []boundPair) []ConstraintProgress {
	var out []ConstraintProgress
	for _, pair := range pairs {
		recs := in.browser.UserRecords(user, pair.bound)
		if len(recs) == 0 {
			continue
		}
		lastTrace := in.lastTraceID(user, pair.bound)
		for i, rule := range pair.policy.MMER {
			var held []string
			for _, role := range rule.Roles {
				for _, rec := range recs {
					if rec.HasRole(role) {
						held = append(held, string(role))
						break
					}
				}
			}
			k := len(held)
			if k == 0 {
				continue
			}
			out = append(out, ConstraintProgress{
				Policy:      pair.policy.Context.String(),
				Bound:       pair.bound.String(),
				Rule:        fmt.Sprintf("MMER[%d]", i),
				Kind:        "MMER",
				K:           k,
				M:           rule.Cardinality,
				NearLimit:   k == rule.Cardinality-1,
				Roles:       held,
				LastTraceID: lastTrace,
			})
		}
		for i, rule := range pair.policy.MMEP {
			// The rule is a privilege multiset: a privilege listed n
			// times contributes up to n countable positions, each needing
			// a distinct supporting record (§4.2 step 6.iii).
			positions := make(map[rbac.Permission]int, len(rule.Privileges))
			for _, priv := range rule.Privileges {
				positions[priv]++
			}
			k := 0
			var consumed []string
			for priv, nPos := range positions {
				n := 0
				for _, rec := range recs {
					if rec.Operation == priv.Operation && rec.Target == priv.Object {
						n++
						if n >= nPos {
							break
						}
					}
				}
				k += n
				for j := 0; j < n; j++ {
					consumed = append(consumed, fmt.Sprintf("%s@%s", priv.Operation, priv.Object))
				}
			}
			if k == 0 {
				continue
			}
			sort.Strings(consumed)
			out = append(out, ConstraintProgress{
				Policy:      pair.policy.Context.String(),
				Bound:       pair.bound.String(),
				Rule:        fmt.Sprintf("MMEP[%d]", i),
				Kind:        "MMEP",
				K:           k,
				M:           rule.Cardinality,
				NearLimit:   k == rule.Cardinality-1,
				Privileges:  consumed,
				LastTraceID: lastTrace,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Policy != out[j].Policy {
			return out[i].Policy < out[j].Policy
		}
		if out[i].Bound != out[j].Bound {
			return out[i].Bound < out[j].Bound
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// lastTraceID finds the user's most recent broker-retained decision
// whose context instance falls within bound.
func (in *Inspector) lastTraceID(user rbac.UserID, bound bctx.Name) string {
	if in.broker == nil {
		return ""
	}
	ev, ok := in.broker.LastMatch(func(ev DecisionEvent) bool {
		if ev.User != string(user) {
			return false
		}
		inst, err := bctx.Parse(ev.Context)
		if err != nil {
			return false
		}
		match, err := bctx.MatchInstance(bound, inst)
		return err == nil && match
	})
	if !ok {
		return ""
	}
	return ev.TraceID
}

func recordViews(recs []adi.Record) []RecordView {
	out := make([]RecordView, 0, len(recs))
	for _, rec := range recs {
		v := RecordView{
			Operation: string(rec.Operation),
			Target:    string(rec.Target),
			Context:   rec.Context.String(),
			Time:      rec.Time,
		}
		for _, role := range rec.Roles {
			v.Roles = append(v.Roles, string(role))
		}
		out = append(out, v)
	}
	return out
}

// UserState reports the user's retained records and constraint progress
// across all open instances.
func (in *Inspector) UserState(user rbac.UserID) UserState {
	pairs := in.boundPairs(bctx.Name{}, false)
	return UserState{
		User:        string(user),
		Records:     recordViews(in.browser.UserRecords(user, bctx.Name{})),
		Constraints: in.progressFor(user, pairs),
	}
}

// ContextState reports the instances open within the pattern and each
// active user's state scoped to it.
func (in *Inspector) ContextState(pattern bctx.Name) ContextState {
	out := ContextState{Context: pattern.String()}
	for _, inst := range in.browser.Instances() {
		if ok, err := bctx.MatchInstance(pattern, inst); err == nil && ok {
			out.Instances = append(out.Instances, inst.String())
		}
	}
	pairs := in.boundPairs(pattern, true)
	for _, user := range in.browser.UserIDs() {
		if user == adi.ActivationUser {
			continue // cluster activation markers are infrastructure, not user state
		}
		recs := in.browser.UserRecords(user, pattern)
		cons := in.progressFor(user, pairs)
		if len(recs) == 0 && len(cons) == 0 {
			continue
		}
		out.Users = append(out.Users, UserState{
			User:        string(user),
			Records:     recordViews(recs),
			Constraints: cons,
		})
	}
	return out
}

// Summary computes the derived gauge values.
func (in *Inspector) Summary() Summary {
	s := Summary{InstancesOpen: len(in.browser.Instances())}
	pairs := in.boundPairs(bctx.Name{}, false)
	for _, user := range in.browser.UserIDs() {
		for _, c := range in.progressFor(user, pairs) {
			s.ConstraintsTracked++
			if c.NearLimit {
				s.ConstraintsNearLimit++
			}
		}
	}
	return s
}
