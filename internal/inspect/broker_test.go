package inspect

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func ev(user, effect, ctx string) DecisionEvent {
	return DecisionEvent{
		User: user, Effect: effect, Context: ctx,
		Operation: "op", Target: "t", Time: time.Unix(1, 0),
	}
}

func TestBrokerPublishAssignsSequence(t *testing.T) {
	b := NewBroker(8)
	for i := 1; i <= 3; i++ {
		if got := b.Publish(ev("u", OutcomeGrant, "P=1")); got != uint64(i) {
			t.Fatalf("Publish #%d assigned seq %d", i, got)
		}
	}
	if b.Seq() != 3 {
		t.Errorf("Seq() = %d, want 3", b.Seq())
	}
}

func TestBrokerRingOverwritesOldest(t *testing.T) {
	b := NewBroker(4)
	for i := 0; i < 10; i++ {
		b.Publish(ev(fmt.Sprintf("u%d", i), OutcomeGrant, "P=1"))
	}
	recent := b.Recent(Filter{}, 100)
	if len(recent) != 4 {
		t.Fatalf("Recent returned %d events, want capacity 4", len(recent))
	}
	// Oldest-first, only the newest four survive.
	for i, e := range recent {
		if want := fmt.Sprintf("u%d", 6+i); e.User != want {
			t.Errorf("recent[%d].User = %q, want %q", i, e.User, want)
		}
	}
}

func TestBrokerSubscribeReceivesLive(t *testing.T) {
	b := NewBroker(8)
	sub := b.Subscribe(Filter{}, 0)
	defer b.Unsubscribe(sub)
	b.Publish(ev("alice", OutcomeDeny, "P=1"))
	select {
	case got := <-sub.Events():
		if got.User != "alice" || got.Effect != OutcomeDeny || got.Seq != 1 {
			t.Fatalf("received %+v", got)
		}
	case <-time.After(time.Second):
		t.Fatal("no event delivered")
	}
}

func TestBrokerReplayThenLive(t *testing.T) {
	b := NewBroker(16)
	b.Publish(ev("a", OutcomeGrant, "P=1"))
	b.Publish(ev("b", OutcomeGrant, "P=1"))
	b.Publish(ev("c", OutcomeGrant, "P=1"))
	sub := b.Subscribe(Filter{}, 2)
	defer b.Unsubscribe(sub)
	b.Publish(ev("d", OutcomeGrant, "P=1"))
	want := []string{"b", "c", "d"} // newest 2 replayed oldest-first, then live
	for i, u := range want {
		select {
		case got := <-sub.Events():
			if got.User != u {
				t.Fatalf("event %d: user %q, want %q", i, got.User, u)
			}
		case <-time.After(time.Second):
			t.Fatalf("event %d (%q) never arrived", i, u)
		}
	}
}

func TestBrokerFilters(t *testing.T) {
	mk := func(user, ctxPat, outcome string) Filter {
		t.Helper()
		f, err := NewFilter(user, ctxPat, outcome)
		if err != nil {
			t.Fatalf("NewFilter(%q,%q,%q): %v", user, ctxPat, outcome, err)
		}
		return f
	}
	grant := ev("alice", OutcomeGrant, "Branch=York, Period=2006")
	deny := ev("bob", OutcomeDeny, "Branch=Leeds, Period=2006")
	cases := []struct {
		name  string
		f     Filter
		event DecisionEvent
		want  bool
	}{
		{"empty matches all", mk("", "", ""), grant, true},
		{"user match", mk("alice", "", ""), grant, true},
		{"user mismatch", mk("alice", "", ""), deny, false},
		{"outcome match", mk("", "", "deny"), deny, true},
		{"outcome mismatch", mk("", "", "deny"), grant, false},
		{"context wildcard", mk("", "Branch=*", ""), grant, true},
		{"context exact mismatch", mk("", "Branch=Leeds", ""), grant, false},
	}
	for _, c := range cases {
		if got := c.f.Match(c.event); got != c.want {
			t.Errorf("%s: Match = %v, want %v", c.name, got, c.want)
		}
	}
	if _, err := NewFilter("", "", "maybe"); err == nil {
		t.Error("NewFilter accepted outcome \"maybe\"")
	}
	if _, err := NewFilter("", "Branch", ""); err == nil {
		t.Error("NewFilter accepted malformed context pattern")
	}
}

func TestBrokerSlowSubscriberDropsNotBlocks(t *testing.T) {
	b := NewBroker(8)
	sub := b.Subscribe(Filter{}, 0)
	defer b.Unsubscribe(sub)
	// Never drain; far more events than the subscriber buffer holds.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			b.Publish(ev("u", OutcomeGrant, "P=1"))
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Publish blocked on a slow subscriber")
	}
	if sub.Dropped() == 0 {
		t.Error("slow subscriber reported zero drops after 500 undrained events")
	}
}

// drain reads queued events until the channel would block, returning
// the users in arrival order.
func drain(t *testing.T, sub *Subscriber) []string {
	t.Helper()
	var users []string
	for {
		select {
		case e, ok := <-sub.Events():
			if !ok {
				return users
			}
			users = append(users, e.User)
		default:
			return users
		}
	}
}

// TestBrokerReplayBoundary pins the replay-window arithmetic at its
// edges: replay == everything retained, replay == capacity after the
// ring has rotated, and replay beyond capacity clamping — the
// off-by-one class of bug where a subscriber gets one event too few
// (silent loss) or a stale slot from the rotated-out past.
func TestBrokerReplayBoundary(t *testing.T) {
	// Ring not yet full: replay == size returns every event, in order.
	b := NewBroker(8)
	for _, u := range []string{"a", "b", "c"} {
		b.Publish(ev(u, OutcomeGrant, "P=1"))
	}
	sub := b.Subscribe(Filter{}, 3)
	if got := drain(t, sub); len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("replay==size: got %v, want [a b c]", got)
	}
	b.Unsubscribe(sub)

	// Ring exactly full: replay == capacity returns all capacity events.
	b2 := NewBroker(4)
	for i := 0; i < 4; i++ {
		b2.Publish(ev(fmt.Sprintf("u%d", i), OutcomeGrant, "P=1"))
	}
	sub = b2.Subscribe(Filter{}, 4)
	if got := drain(t, sub); len(got) != 4 || got[0] != "u0" || got[3] != "u3" {
		t.Fatalf("replay==capacity(full): got %v, want [u0 u1 u2 u3]", got)
	}
	b2.Unsubscribe(sub)

	// Rotated ring: only the surviving window replays — never an
	// overwritten slot, never fewer than retained.
	for i := 4; i < 7; i++ { // seq 5..7 overwrite u0..u2
		b2.Publish(ev(fmt.Sprintf("u%d", i), OutcomeGrant, "P=1"))
	}
	sub = b2.Subscribe(Filter{}, 100) // clamped to capacity
	if got := drain(t, sub); len(got) != 4 || got[0] != "u3" || got[3] != "u6" {
		t.Fatalf("replay>capacity(rotated): got %v, want [u3 u4 u5 u6]", got)
	}
	b2.Unsubscribe(sub)

	// replay 0 and negative: nothing queued.
	for _, n := range []int{0, -5} {
		sub = b2.Subscribe(Filter{}, n)
		if got := drain(t, sub); len(got) != 0 {
			t.Fatalf("replay=%d queued %v, want nothing", n, got)
		}
		b2.Unsubscribe(sub)
	}
}

// TestBrokerDroppedAccounting pins the exact drop count: a subscriber
// with an undrained buffer loses precisely the overflow — no
// double-counting, no uncounted loss — and keeps receiving once it
// drains again.
func TestBrokerDroppedAccounting(t *testing.T) {
	b := NewBroker(512)
	sub := b.Subscribe(Filter{}, 0) // buffer is 0+64
	defer b.Unsubscribe(sub)
	const total = 100
	for i := 0; i < total; i++ {
		b.Publish(ev(fmt.Sprintf("u%d", i), OutcomeGrant, "P=1"))
	}
	if got := sub.Dropped(); got != total-64 {
		t.Fatalf("Dropped() = %d, want exactly %d (buffer 64 of %d events)", got, total-64, total)
	}
	// The buffered prefix is intact and in order: drops happen at the
	// tail (newest events), never by corrupting what was queued.
	got := drain(t, sub)
	if len(got) != 64 || got[0] != "u0" || got[63] != "u63" {
		t.Fatalf("buffered prefix = %d events [%s..%s], want 64 [u0..u63]",
			len(got), got[0], got[len(got)-1])
	}
	// Drained: delivery resumes, and the drop counter stays put.
	b.Publish(ev("fresh", OutcomeGrant, "P=1"))
	select {
	case e := <-sub.Events():
		if e.User != "fresh" {
			t.Fatalf("post-drain event = %q, want fresh", e.User)
		}
	case <-time.After(time.Second):
		t.Fatal("no delivery after draining a slow subscriber")
	}
	if got := sub.Dropped(); got != total-64 {
		t.Errorf("Dropped() moved to %d after recovery, want still %d", got, total-64)
	}
}

// TestBrokerRecentMatchesSubscribeReplay: Recent(f, n) and the replayed
// prefix of Subscribe(f, n) are two views of the same ring — they must
// agree event-for-event, including under a filter that skips ring slots.
func TestBrokerRecentMatchesSubscribeReplay(t *testing.T) {
	b := NewBroker(16)
	for i := 0; i < 12; i++ {
		user := "other"
		if i%3 == 0 {
			user = "alice"
		}
		b.Publish(ev(user, OutcomeGrant, "P=1"))
	}
	f, err := NewFilter("alice", "", "")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 4, 100} {
		recent := b.Recent(f, n)
		sub := b.Subscribe(f, n)
		replayed := drain(t, sub)
		b.Unsubscribe(sub)
		if len(recent) != len(replayed) {
			t.Fatalf("n=%d: Recent %d events, Subscribe replayed %d", n, len(recent), len(replayed))
		}
		for i := range recent {
			if recent[i].User != replayed[i] {
				t.Errorf("n=%d event %d: Recent %q vs replay %q", n, i, recent[i].User, replayed[i])
			}
		}
	}
}

// TestBrokerSubscribeFromResume: resuming after a known sequence queues
// exactly the retained span after it, gap-free and in order, then goes
// live.
func TestBrokerSubscribeFromResume(t *testing.T) {
	b := NewBroker(16)
	for i := 1; i <= 10; i++ {
		b.Publish(ev(fmt.Sprintf("u%d", i), OutcomeGrant, "P=1"))
	}
	sub, err := b.SubscribeFrom(Filter{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, sub)
	want := []string{"u6", "u7", "u8", "u9", "u10"}
	if len(got) != len(want) {
		t.Fatalf("resumed %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("resumed %v, want %v", got, want)
		}
	}
	// Live after the catch-up.
	b.Publish(ev("u11", OutcomeGrant, "P=1"))
	select {
	case e := <-sub.Events():
		if e.User != "u11" || e.Seq != 11 {
			t.Fatalf("live event after resume = %+v", e)
		}
	case <-time.After(time.Second):
		t.Fatal("no live delivery after resume")
	}
	b.Unsubscribe(sub)

	// Resuming exactly at the head queues nothing.
	sub, err = b.SubscribeFrom(Filter{}, b.Seq())
	if err != nil {
		t.Fatal(err)
	}
	if got := drain(t, sub); len(got) != 0 {
		t.Fatalf("resume at head queued %v", got)
	}
	b.Unsubscribe(sub)
}

// TestBrokerSubscribeFromGap: every way a resume point can be
// unservable must fail with ErrGap — never a silently shortened replay.
func TestBrokerSubscribeFromGap(t *testing.T) {
	b := NewBroker(4)
	for i := 1; i <= 10; i++ { // seq 1..10; only 7..10 retained
		b.Publish(ev(fmt.Sprintf("u%d", i), OutcomeGrant, "P=1"))
	}
	// Rotated past: seq 2 needs 3..10 but only 7..10 survive.
	if _, err := b.SubscribeFrom(Filter{}, 2); !errors.Is(err, ErrGap) {
		t.Errorf("rotated-out resume: err = %v, want ErrGap", err)
	}
	// Boundary: the oldest retained event is seq 7, so afterSeq 6 is the
	// oldest servable resume — and 5 is one too old.
	if _, err := b.SubscribeFrom(Filter{}, 6); err != nil {
		t.Errorf("oldest servable resume refused: %v", err)
	}
	if _, err := b.SubscribeFrom(Filter{}, 5); !errors.Is(err, ErrGap) {
		t.Errorf("one-past-oldest resume: err = %v, want ErrGap", err)
	}
	// Ahead of the broker: a seq from a previous incarnation.
	if _, err := b.SubscribeFrom(Filter{}, 99); !errors.Is(err, ErrGap) {
		t.Errorf("future resume: err = %v, want ErrGap", err)
	}
	// afterSeq 0 ("everything") gaps once the ring has rotated at all…
	if _, err := b.SubscribeFrom(Filter{}, 0); !errors.Is(err, ErrGap) {
		t.Errorf("from-zero resume on rotated ring: err = %v, want ErrGap", err)
	}
	// …but works on a broker that still retains its full history.
	b2 := NewBroker(8)
	b2.Publish(ev("a", OutcomeGrant, "P=1"))
	sub, err := b2.SubscribeFrom(Filter{}, 0)
	if err != nil {
		t.Fatalf("from-zero resume with full history: %v", err)
	}
	if got := drain(t, sub); len(got) != 1 || got[0] != "a" {
		t.Errorf("from-zero replay = %v, want [a]", got)
	}
}

// TestBrokerSubscribeFromFiltered: the filter prunes the catch-up span
// without disturbing its order, and a closed broker hands back a closed
// channel rather than an error.
func TestBrokerSubscribeFromFiltered(t *testing.T) {
	b := NewBroker(16)
	for i := 1; i <= 8; i++ {
		user := "other"
		if i%2 == 0 {
			user = "alice"
		}
		b.Publish(ev(user, OutcomeGrant, "P=1"))
	}
	f, err := NewFilter("alice", "", "")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := b.SubscribeFrom(f, 3)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, sub)
	if len(got) != 3 { // seqs 4, 6, 8
		t.Fatalf("filtered resume delivered %v, want 3 alice events", got)
	}
	b.Unsubscribe(sub)

	b.Close()
	sub, err = b.SubscribeFrom(Filter{}, 0)
	if err != nil {
		t.Fatalf("SubscribeFrom on closed broker: %v", err)
	}
	if _, ok := <-sub.Events(); ok {
		t.Error("closed broker delivered an event")
	}
}

func TestBrokerLastMatch(t *testing.T) {
	b := NewBroker(8)
	first := ev("alice", OutcomeGrant, "P=1")
	first.TraceID = "t-old"
	second := ev("alice", OutcomeDeny, "P=1")
	second.TraceID = "t-new"
	b.Publish(first)
	b.Publish(second)
	b.Publish(ev("bob", OutcomeGrant, "P=1"))
	got, ok := b.LastMatch(func(e DecisionEvent) bool { return e.User == "alice" })
	if !ok || got.TraceID != "t-new" {
		t.Fatalf("LastMatch = %+v ok=%v, want newest alice event t-new", got, ok)
	}
	if _, ok := b.LastMatch(func(e DecisionEvent) bool { return e.User == "nobody" }); ok {
		t.Error("LastMatch found an event for an unseen user")
	}
}
