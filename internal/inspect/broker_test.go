package inspect

import (
	"fmt"
	"testing"
	"time"
)

func ev(user, effect, ctx string) DecisionEvent {
	return DecisionEvent{
		User: user, Effect: effect, Context: ctx,
		Operation: "op", Target: "t", Time: time.Unix(1, 0),
	}
}

func TestBrokerPublishAssignsSequence(t *testing.T) {
	b := NewBroker(8)
	for i := 1; i <= 3; i++ {
		if got := b.Publish(ev("u", OutcomeGrant, "P=1")); got != uint64(i) {
			t.Fatalf("Publish #%d assigned seq %d", i, got)
		}
	}
	if b.Seq() != 3 {
		t.Errorf("Seq() = %d, want 3", b.Seq())
	}
}

func TestBrokerRingOverwritesOldest(t *testing.T) {
	b := NewBroker(4)
	for i := 0; i < 10; i++ {
		b.Publish(ev(fmt.Sprintf("u%d", i), OutcomeGrant, "P=1"))
	}
	recent := b.Recent(Filter{}, 100)
	if len(recent) != 4 {
		t.Fatalf("Recent returned %d events, want capacity 4", len(recent))
	}
	// Oldest-first, only the newest four survive.
	for i, e := range recent {
		if want := fmt.Sprintf("u%d", 6+i); e.User != want {
			t.Errorf("recent[%d].User = %q, want %q", i, e.User, want)
		}
	}
}

func TestBrokerSubscribeReceivesLive(t *testing.T) {
	b := NewBroker(8)
	sub := b.Subscribe(Filter{}, 0)
	defer b.Unsubscribe(sub)
	b.Publish(ev("alice", OutcomeDeny, "P=1"))
	select {
	case got := <-sub.Events():
		if got.User != "alice" || got.Effect != OutcomeDeny || got.Seq != 1 {
			t.Fatalf("received %+v", got)
		}
	case <-time.After(time.Second):
		t.Fatal("no event delivered")
	}
}

func TestBrokerReplayThenLive(t *testing.T) {
	b := NewBroker(16)
	b.Publish(ev("a", OutcomeGrant, "P=1"))
	b.Publish(ev("b", OutcomeGrant, "P=1"))
	b.Publish(ev("c", OutcomeGrant, "P=1"))
	sub := b.Subscribe(Filter{}, 2)
	defer b.Unsubscribe(sub)
	b.Publish(ev("d", OutcomeGrant, "P=1"))
	want := []string{"b", "c", "d"} // newest 2 replayed oldest-first, then live
	for i, u := range want {
		select {
		case got := <-sub.Events():
			if got.User != u {
				t.Fatalf("event %d: user %q, want %q", i, got.User, u)
			}
		case <-time.After(time.Second):
			t.Fatalf("event %d (%q) never arrived", i, u)
		}
	}
}

func TestBrokerFilters(t *testing.T) {
	mk := func(user, ctxPat, outcome string) Filter {
		t.Helper()
		f, err := NewFilter(user, ctxPat, outcome)
		if err != nil {
			t.Fatalf("NewFilter(%q,%q,%q): %v", user, ctxPat, outcome, err)
		}
		return f
	}
	grant := ev("alice", OutcomeGrant, "Branch=York, Period=2006")
	deny := ev("bob", OutcomeDeny, "Branch=Leeds, Period=2006")
	cases := []struct {
		name  string
		f     Filter
		event DecisionEvent
		want  bool
	}{
		{"empty matches all", mk("", "", ""), grant, true},
		{"user match", mk("alice", "", ""), grant, true},
		{"user mismatch", mk("alice", "", ""), deny, false},
		{"outcome match", mk("", "", "deny"), deny, true},
		{"outcome mismatch", mk("", "", "deny"), grant, false},
		{"context wildcard", mk("", "Branch=*", ""), grant, true},
		{"context exact mismatch", mk("", "Branch=Leeds", ""), grant, false},
	}
	for _, c := range cases {
		if got := c.f.Match(c.event); got != c.want {
			t.Errorf("%s: Match = %v, want %v", c.name, got, c.want)
		}
	}
	if _, err := NewFilter("", "", "maybe"); err == nil {
		t.Error("NewFilter accepted outcome \"maybe\"")
	}
	if _, err := NewFilter("", "Branch", ""); err == nil {
		t.Error("NewFilter accepted malformed context pattern")
	}
}

func TestBrokerSlowSubscriberDropsNotBlocks(t *testing.T) {
	b := NewBroker(8)
	sub := b.Subscribe(Filter{}, 0)
	defer b.Unsubscribe(sub)
	// Never drain; far more events than the subscriber buffer holds.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			b.Publish(ev("u", OutcomeGrant, "P=1"))
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Publish blocked on a slow subscriber")
	}
	if sub.Dropped() == 0 {
		t.Error("slow subscriber reported zero drops after 500 undrained events")
	}
}

func TestBrokerLastMatch(t *testing.T) {
	b := NewBroker(8)
	first := ev("alice", OutcomeGrant, "P=1")
	first.TraceID = "t-old"
	second := ev("alice", OutcomeDeny, "P=1")
	second.TraceID = "t-new"
	b.Publish(first)
	b.Publish(second)
	b.Publish(ev("bob", OutcomeGrant, "P=1"))
	got, ok := b.LastMatch(func(e DecisionEvent) bool { return e.User == "alice" })
	if !ok || got.TraceID != "t-new" {
		t.Fatalf("LastMatch = %+v ok=%v, want newest alice event t-new", got, ok)
	}
	if _, ok := b.LastMatch(func(e DecisionEvent) bool { return e.User == "nobody" }); ok {
		t.Error("LastMatch found an event for an unseen user")
	}
}
