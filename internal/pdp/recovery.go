package pdp

import (
	"fmt"
	"time"

	"msod/internal/adi"
	"msod/internal/audit"
	"msod/internal/core"
	"msod/internal/policy"
)

// RecoveryMode selects how a restarting PDP rebuilds its retained ADI.
type RecoveryMode int

const (
	// RecoverNone starts with an empty retained ADI.
	RecoverNone RecoveryMode = iota
	// RecoverFromTrail replays the audit trail (§5.2: "the PDP reads in
	// its policy, and then processes the last n audit trails starting
	// from time t").
	RecoverFromTrail
	// RecoverFromSnapshot loads the encrypted snapshot store (the §6
	// "secure relational database" successor design).
	RecoverFromSnapshot
)

// RecoveryConfig parameterises start-up recovery.
type RecoveryConfig struct {
	Mode RecoveryMode
	// TrailDir and TrailKey locate the audit trail for RecoverFromTrail.
	TrailDir string
	TrailKey []byte
	// Since and LastSegments are the administrative parameters t and n
	// of §5.2 (zero values mean everything).
	Since        time.Time
	LastSegments int
	// Snapshot is the sealed store for RecoverFromSnapshot.
	Snapshot *adi.SecureStore
}

// Recover rebuilds a retained ADI according to the recovery
// configuration and the current policy's MSoD set, returning the
// populated store and replay statistics (zero stats for snapshot/none).
func Recover(pol *policy.RBACPolicy, rc RecoveryConfig) (*adi.Store, audit.ReplayStats, error) {
	store := adi.NewStore()
	switch rc.Mode {
	case RecoverNone:
		return store, audit.ReplayStats{}, nil

	case RecoverFromTrail:
		reader, err := audit.NewReader(rc.TrailDir, rc.TrailKey)
		if err != nil {
			return nil, audit.ReplayStats{}, fmt.Errorf("pdp: recovery: %w", err)
		}
		events, err := reader.Since(rc.Since, rc.LastSegments)
		if err != nil {
			return nil, audit.ReplayStats{}, fmt.Errorf("pdp: recovery: %w", err)
		}
		var policies []core.Policy
		if pol.MSoD != nil {
			policies, err = core.Compile(pol.MSoD)
			if err != nil {
				return nil, audit.ReplayStats{}, fmt.Errorf("pdp: recovery: %w", err)
			}
		}
		stats, err := audit.Replay(events, policies, store)
		if err != nil {
			return nil, audit.ReplayStats{}, fmt.Errorf("pdp: recovery: %w", err)
		}
		return store, stats, nil

	case RecoverFromSnapshot:
		if rc.Snapshot == nil {
			return nil, audit.ReplayStats{}, fmt.Errorf("pdp: recovery: nil snapshot store")
		}
		n, err := rc.Snapshot.LoadInto(store)
		if err != nil {
			return nil, audit.ReplayStats{}, fmt.Errorf("pdp: recovery: %w", err)
		}
		return store, audit.ReplayStats{Records: n}, nil

	default:
		return nil, audit.ReplayStats{}, fmt.Errorf("pdp: recovery: unknown mode %d", rc.Mode)
	}
}
