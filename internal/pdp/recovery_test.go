package pdp

import (
	"path/filepath"
	"testing"
	"time"

	"msod/internal/adi"
	"msod/internal/audit"
	"msod/internal/policy"
)

// TestRestartCycle runs a PDP with an audit trail, stops it, recovers a
// fresh PDP from the trail, and checks the recovered PDP makes the same
// history-dependent decisions — the §5.2 start-up procedure end to end.
func TestRestartCycle(t *testing.T) {
	pol, err := policy.ParseRBACPolicy([]byte(bankPolicyXML))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	key := []byte("trail-key")

	// First life: trail-backed PDP takes some decisions.
	w1, err := audit.NewWriter(dir, key, 4)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := New(Config{Policy: pol, Trail: w1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []Request{
		bankReq("alice", "Teller", "HandleCash", "till", "York", "2006"),
		bankReq("alice", "Auditor", "Audit", "ledger", "York", "2006"), // MSoD deny
		bankReq("bob", "Auditor", "Audit", "ledger", "Leeds", "2006"),
		bankReq("carol", "Teller", "HandleCash", "till", "York", "2007"),
	} {
		if _, err := p1.Decide(r); err != nil {
			t.Fatal(err)
		}
	}
	if p1.TrailErrors() != 0 {
		t.Fatalf("trail errors: %d", p1.TrailErrors())
	}
	liveLen := p1.Store().Len()
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}

	// Second life: recover from the trail.
	store, stats, err := Recover(pol, RecoveryConfig{
		Mode:     RecoverFromTrail,
		TrailDir: dir,
		TrailKey: key,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != liveLen {
		t.Fatalf("recovered %d records, live had %d", stats.Records, liveLen)
	}
	p2, err := New(Config{Policy: pol, Store: store})
	if err != nil {
		t.Fatal(err)
	}

	// History-dependent behaviour must survive the restart: alice still
	// cannot audit 2006; bob still cannot tell in 2006; carol is blocked
	// from auditing 2007.
	cases := []struct {
		req  Request
		want bool
	}{
		{bankReq("alice", "Auditor", "Audit", "ledger", "Leeds", "2006"), false},
		{bankReq("bob", "Teller", "HandleCash", "till", "York", "2006"), false},
		{bankReq("carol", "Auditor", "Audit", "ledger", "York", "2007"), false},
		{bankReq("dave", "Auditor", "Audit", "ledger", "York", "2006"), true},
	}
	for _, c := range cases {
		dec, err := p2.Decide(c.req)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Allowed != c.want {
			t.Errorf("recovered PDP: %s %s -> %v, want %v (%s)",
				c.req.User, c.req.Operation, dec.Allowed, c.want, dec.Reason)
		}
	}
}

func TestRecoverFromSnapshot(t *testing.T) {
	pol, err := policy.ParseRBACPolicy([]byte(bankPolicyXML))
	if err != nil {
		t.Fatal(err)
	}
	// First life: no trail, but a snapshot at shutdown.
	p1, err := New(Config{Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p1.Decide(bankReq("alice", "Teller", "HandleCash", "till", "York", "2006")); err != nil {
		t.Fatal(err)
	}
	snap, err := adi.NewSecureStore(filepath.Join(t.TempDir(), "adi.sealed"), []byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.Save(p1.Store().(*adi.Store).All()); err != nil {
		t.Fatal(err)
	}

	store, stats, err := Recover(pol, RecoveryConfig{Mode: RecoverFromSnapshot, Snapshot: snap})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 1 || store.Len() != 1 {
		t.Fatalf("stats=%+v len=%d", stats, store.Len())
	}
	p2, err := New(Config{Policy: pol, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := p2.Decide(bankReq("alice", "Auditor", "Audit", "ledger", "York", "2006"))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Allowed {
		t.Error("snapshot recovery lost alice's Teller history")
	}
}

func TestRecoverModes(t *testing.T) {
	pol, err := policy.ParseRBACPolicy([]byte(bankPolicyXML))
	if err != nil {
		t.Fatal(err)
	}
	store, stats, err := Recover(pol, RecoveryConfig{Mode: RecoverNone})
	if err != nil || store.Len() != 0 || stats.Records != 0 {
		t.Errorf("RecoverNone = %v %v %v", store.Len(), stats, err)
	}
	if _, _, err := Recover(pol, RecoveryConfig{Mode: RecoverFromSnapshot}); err == nil {
		t.Error("snapshot mode without snapshot accepted")
	}
	if _, _, err := Recover(pol, RecoveryConfig{Mode: RecoveryMode(99)}); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, _, err := Recover(pol, RecoveryConfig{Mode: RecoverFromTrail}); err == nil {
		t.Error("trail mode without key accepted")
	}
}

// TestRecoverWindow exercises the §5.2 "last n trails starting from time
// t" parameters: only events inside the window are replayed.
func TestRecoverWindow(t *testing.T) {
	pol, err := policy.ParseRBACPolicy([]byte(bankPolicyXML))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	key := []byte("k")
	w, err := audit.NewWriter(dir, key, 1) // one event per segment
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2006, 7, 1, 0, 0, 0, 0, time.UTC)
	clockAt := base
	p, err := New(Config{Policy: pol, Trail: w, Clock: func() time.Time { return clockAt }})
	if err != nil {
		t.Fatal(err)
	}
	users := []string{"a", "b", "c", "d"}
	for i, u := range users {
		clockAt = base.Add(time.Duration(i) * time.Hour)
		if _, err := p.Decide(bankReq(u, "Teller", "HandleCash", "till", "York", "2006")); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	// Only the last 2 segments: users c and d.
	store, stats, err := Recover(pol, RecoveryConfig{
		Mode: RecoverFromTrail, TrailDir: dir, TrailKey: key, LastSegments: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 2 || store.Len() != 2 {
		t.Fatalf("windowed recovery: stats=%+v len=%d", stats, store.Len())
	}
}
