package pdp

import (
	"errors"
	"strings"
	"testing"
	"time"

	"msod/internal/bctx"
	"msod/internal/credential"
	"msod/internal/policy"
	"msod/internal/rbac"
)

const bankPolicyXML = `
<RBACPolicy id="bank-1">
  <RoleList>
    <Role value="Teller"/>
    <Role value="Auditor"/>
    <Role value="RetainedADIController"/>
  </RoleList>
  <RoleAssignmentPolicy>
    <Assignment soa="hr.bank.example" role="Teller"/>
    <Assignment soa="hr.bank.example" role="Auditor"/>
    <Assignment soa="hr.bank.example" role="RetainedADIController"/>
  </RoleAssignmentPolicy>
  <TargetAccessPolicy>
    <Grant role="Teller" operation="HandleCash" target="till"/>
    <Grant role="Auditor" operation="Audit" target="ledger"/>
    <Grant role="Auditor" operation="CommitAudit" target="audit"/>
    <Grant role="RetainedADIController" operation="purgeContext" target="msod:retainedADI"/>
    <Grant role="RetainedADIController" operation="purgeUser" target="msod:retainedADI"/>
    <Grant role="RetainedADIController" operation="purgeBefore" target="msod:retainedADI"/>
    <Grant role="RetainedADIController" operation="stats" target="msod:retainedADI"/>
  </TargetAccessPolicy>
  <MSoDPolicySet>
    <MSoDPolicy BusinessContext="Branch=*, Period=!">
      <LastStep operation="CommitAudit" targetURI="audit"/>
      <MMER ForbiddenCardinality="2">
        <Role type="employee" value="Teller"/>
        <Role type="employee" value="Auditor"/>
      </MMER>
    </MSoDPolicy>
  </MSoDPolicySet>
</RBACPolicy>`

func bankPDP(t *testing.T) *PDP {
	t.Helper()
	pol, err := policy.ParseRBACPolicy([]byte(bankPolicyXML))
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func bankReq(user, role, op, target, branch, period string) Request {
	return Request{
		User:      rbac.UserID(user),
		Roles:     []rbac.RoleName{rbac.RoleName(role)},
		Operation: rbac.Operation(op),
		Target:    rbac.Object(target),
		Context:   bctx.MustParse("Branch=" + branch + ", Period=" + period),
	}
}

func TestDecidePipeline(t *testing.T) {
	p := bankPDP(t)

	// Granted: role permits and MSoD has no conflict.
	dec, err := p.Decide(bankReq("alice", "Teller", "HandleCash", "till", "York", "2006"))
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Allowed || dec.Phase != PhaseGranted {
		t.Fatalf("decision = %+v", dec)
	}
	if dec.MSoD == nil || dec.MSoD.Recorded != 1 {
		t.Errorf("MSoD detail = %+v", dec.MSoD)
	}

	// RBAC deny: Teller cannot Audit.
	dec, err = p.Decide(bankReq("alice", "Teller", "Audit", "ledger", "York", "2006"))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Allowed || dec.Phase != PhaseRBAC {
		t.Fatalf("decision = %+v", dec)
	}
	// RBAC denial must not touch the retained ADI.
	if p.Store().Len() != 1 {
		t.Errorf("store len = %d after RBAC deny", p.Store().Len())
	}

	// MSoD deny: alice switches to Auditor within the period.
	dec, err = p.Decide(bankReq("alice", "Auditor", "Audit", "ledger", "Leeds", "2006"))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Allowed || dec.Phase != PhaseMSoD {
		t.Fatalf("decision = %+v", dec)
	}
	if !strings.Contains(dec.Reason, "MMER") {
		t.Errorf("reason = %q", dec.Reason)
	}
}

func TestDecideWithCredentials(t *testing.T) {
	pol, err := policy.ParseRBACPolicy([]byte(bankPolicyXML))
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	hr, err := credential.NewAuthority("hr.bank.example")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.TrustAuthority(hr); err != nil {
		t.Fatal(err)
	}

	now := time.Now()
	cred, err := hr.IssueRole("alice", "Teller", now.Add(-time.Hour), now.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	req := Request{
		Credentials: []credential.Credential{cred},
		Operation:   "HandleCash", Target: "till",
		Context: bctx.MustParse("Branch=York, Period=2006"),
	}
	dec, err := p.Decide(req)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Allowed || dec.User != "alice" {
		t.Fatalf("decision = %+v", dec)
	}

	// A forged credential yields no subject.
	forged := cred
	forged.Holder = "mallory"
	_, err = p.Decide(Request{
		Credentials: []credential.Credential{forged},
		Operation:   "HandleCash", Target: "till",
		Context: bctx.MustParse("Branch=York, Period=2006"),
	})
	if !errors.Is(err, ErrNoSubject) {
		t.Errorf("forged credential: %v", err)
	}
}

func TestDecideNoSubject(t *testing.T) {
	p := bankPDP(t)
	_, err := p.Decide(Request{Operation: "HandleCash", Target: "till",
		Context: bctx.MustParse("Branch=York, Period=2006")})
	if !errors.Is(err, ErrNoSubject) {
		t.Errorf("no subject: %v", err)
	}
}

func TestManagementPort(t *testing.T) {
	p := bankPDP(t)
	// Seed history.
	for _, u := range []string{"a", "b", "c"} {
		dec, err := p.Decide(bankReq(u, "Teller", "HandleCash", "till", "York", "2006"))
		if err != nil || !dec.Allowed {
			t.Fatalf("seed %s: %+v %v", u, dec, err)
		}
	}
	if p.Store().Len() != 3 {
		t.Fatalf("seeded %d", p.Store().Len())
	}

	admin := []rbac.RoleName{"RetainedADIController"}

	// Unauthorized role is refused.
	_, err := p.Manage(ManagementRequest{User: "eve", Roles: []rbac.RoleName{"Teller"},
		Operation: OpStats})
	if !errors.Is(err, ErrManagement) {
		t.Errorf("unauthorized manage: %v", err)
	}

	// Stats.
	res, err := p.Manage(ManagementRequest{User: "root", Roles: admin, Operation: OpStats})
	if err != nil || res.Records != 3 {
		t.Fatalf("stats = %+v, %v", res, err)
	}

	// purgeUser.
	res, err = p.Manage(ManagementRequest{User: "root", Roles: admin,
		Operation: OpPurgeUser, TargetUser: "a"})
	if err != nil || res.Removed != 1 || res.Records != 2 {
		t.Fatalf("purgeUser = %+v, %v", res, err)
	}

	// purgeBefore in the future removes the rest.
	res, err = p.Manage(ManagementRequest{User: "root", Roles: admin,
		Operation: OpPurgeBefore, Before: time.Now().Add(time.Hour)})
	if err != nil || res.Removed != 2 || res.Records != 0 {
		t.Fatalf("purgeBefore = %+v, %v", res, err)
	}

	// purgeContext with a pattern.
	dec, err := p.Decide(bankReq("d", "Teller", "HandleCash", "till", "York", "2007"))
	if err != nil || !dec.Allowed {
		t.Fatal(dec, err)
	}
	res, err = p.Manage(ManagementRequest{User: "root", Roles: admin,
		Operation: OpPurgeContext, ContextPattern: "Branch=*, Period=2007"})
	if err != nil || res.Removed != 1 {
		t.Fatalf("purgeContext = %+v, %v", res, err)
	}

	// Validation failures.
	if _, err := p.Manage(ManagementRequest{User: "root", Roles: admin, Operation: OpPurgeUser}); !errors.Is(err, ErrManagement) {
		t.Errorf("purgeUser without target: %v", err)
	}
	if _, err := p.Manage(ManagementRequest{User: "root", Roles: admin, Operation: OpPurgeBefore}); !errors.Is(err, ErrManagement) {
		t.Errorf("purgeBefore without cutoff: %v", err)
	}
	if _, err := p.Manage(ManagementRequest{User: "root", Roles: admin, Operation: "reformat"}); err == nil {
		t.Error("stats permitted unknown operation")
	}
	if _, err := p.Manage(ManagementRequest{User: "root", Roles: admin,
		Operation: OpPurgeContext, ContextPattern: "=bad="}); !errors.Is(err, ErrManagement) {
		t.Errorf("bad pattern: %v", err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); !errors.Is(err, ErrConfig) {
		t.Errorf("nil policy: %v", err)
	}
}

func TestPolicyID(t *testing.T) {
	p := bankPDP(t)
	if p.PolicyID() != "bank-1" {
		t.Errorf("PolicyID = %q", p.PolicyID())
	}
}
