package pdp

import (
	"testing"

	"msod/internal/policy"
)

const hierPolicyXML = `
<RBACPolicy id="hier-bank">
  <RoleList>
    <Role value="Teller"/>
    <Role value="Auditor"/>
    <Role value="HeadCashier"/>
  </RoleList>
  <RoleHierarchy>
    <Inherits senior="HeadCashier" junior="Teller"/>
  </RoleHierarchy>
  <TargetAccessPolicy>
    <Grant role="Teller" operation="HandleCash" target="till"/>
    <Grant role="Auditor" operation="Audit" target="ledger"/>
  </TargetAccessPolicy>
  <MSoDPolicySet>
    <MSoDPolicy BusinessContext="Branch=*, Period=!">
      <MMER ForbiddenCardinality="2">
        <Role type="employee" value="Teller"/>
        <Role type="employee" value="Auditor"/>
      </MMER>
    </MSoDPolicy>
  </MSoDPolicySet>
</RBACPolicy>`

// TestHierarchyAwareConfig: with HierarchyAwareMSoD, a HeadCashier's
// cash handling (granted via the inherited Teller permission) bars the
// same user from auditing the period; without it, the literal engine
// misses the inherited conflict.
func TestHierarchyAwareConfig(t *testing.T) {
	pol, err := policy.ParseRBACPolicy([]byte(hierPolicyXML))
	if err != nil {
		t.Fatal(err)
	}
	for _, aware := range []bool{false, true} {
		p, err := New(Config{Policy: pol, HierarchyAwareMSoD: aware})
		if err != nil {
			t.Fatal(err)
		}
		// HeadCashier handles cash: the RBAC layer permits it through the
		// inherited Teller grant in both configurations.
		dec, err := p.Decide(bankReq("u", "HeadCashier", "HandleCash", "till", "York", "2006"))
		if err != nil || !dec.Allowed {
			t.Fatalf("aware=%v: HeadCashier cash = %+v, %v", aware, dec, err)
		}
		dec, err = p.Decide(bankReq("u", "Auditor", "Audit", "ledger", "York", "2006"))
		if err != nil {
			t.Fatal(err)
		}
		if aware && dec.Allowed {
			t.Error("hierarchy-aware PDP missed the inherited conflict")
		}
		if !aware && !dec.Allowed {
			t.Error("literal PDP unexpectedly hierarchy-aware")
		}
	}
}
