// Package pdp implements the full PERMIS-style policy decision point of
// §4 and §5: it validates credentials through the CVS, performs the
// ordinary RBAC target-access check, then runs the MSoD enforcement
// algorithm against the retained ADI, and logs every decision to the
// secure audit trail. It also exposes the §4.3 management port, itself
// protected by the RBAC policy via the RetainedADIController role.
//
// The decision request mirrors the ISO 10181-3 framework of Figure 3:
// initiator ADI (credentials or pre-validated user/roles), access
// request ADI (operation, target), contextual information (environment),
// and the business context instance that MSoD adds as a distinguished
// parameter.
package pdp

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"msod/internal/adi"
	"msod/internal/audit"
	"msod/internal/bctx"
	"msod/internal/core"
	"msod/internal/credential"
	"msod/internal/inspect"
	"msod/internal/obsv"
	"msod/internal/policy"
	"msod/internal/rbac"
)

// Errors returned by configuration and requests.
var (
	// ErrConfig tags PDP construction failures.
	ErrConfig = errors.New("pdp: config")
	// ErrNoSubject is returned when a request carries neither credentials
	// nor a pre-validated user.
	ErrNoSubject = errors.New("pdp: request has no subject")
)

// Config assembles a PDP.
type Config struct {
	// Policy is the parsed policy envelope (roles, hierarchy, grants,
	// SSD/DSD, assignment trust, MSoD set). Required.
	Policy *policy.RBACPolicy
	// Store is the retained ADI; defaults to a fresh indexed store.
	Store adi.Recorder
	// Trail, when non-nil, receives an event per decision (§5.2).
	Trail *audit.Writer
	// Linker resolves multi-authority identities; optional.
	Linker *credential.Linker
	// Clock overrides the time source; defaults to time.Now.
	Clock func() time.Time
	// Observer, when non-nil, is called synchronously with an event for
	// every Decide outcome — grants and denials, with or without a
	// trail — feeding the live /v1/events stream. It must not block
	// (the inspect.Broker's Publish does not).
	Observer func(inspect.DecisionEvent)
	// HierarchyAwareMSoD expands activated roles through the policy's
	// role hierarchy before MMER matching, so a senior role conflicts
	// like the juniors it inherits (extension; see
	// core.WithRoleExpander).
	HierarchyAwareMSoD bool
}

// PDP is a ready decision point.
type PDP struct {
	policyID string
	model    *rbac.Model
	cvs      *credential.CVS
	engine   *core.Engine
	store    adi.Recorder
	trail    *audit.Writer
	observer func(inspect.DecisionEvent)
	clock    func() time.Time
	// commitMu makes a decision's store commit and its event
	// publication atomic with respect to other decisions, so broker
	// sequence order equals store commit order — the invariant that
	// lets a replica replay the stream in seq order and reconstruct the
	// exact store state. Taken only when an Observer is attached.
	commitMu  sync.Mutex
	trailErrs atomic.Int64
}

// PolicyID returns the identifier of the loaded policy.
func (p *PDP) PolicyID() string { return p.policyID }

// TrailErrors reports how many audit-trail writes have failed since the
// PDP started.
func (p *PDP) TrailErrors() int64 { return p.trailErrs.Load() }

// New builds a PDP from the configuration: the RBAC model is compiled
// from the policy, the CVS trust map is taken from the role assignment
// policy, and the MSoD set (if present) is compiled into the engine.
func New(cfg Config) (*PDP, error) {
	if cfg.Policy == nil {
		return nil, fmt.Errorf("%w: nil policy", ErrConfig)
	}
	model, err := cfg.Policy.BuildModel()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	store := cfg.Store
	if store == nil {
		store = adi.NewStore()
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	var compiled []core.Policy
	if cfg.Policy.MSoD != nil {
		compiled, err = core.Compile(cfg.Policy.MSoD)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrConfig, err)
		}
	}
	engineOpts := []core.Option{core.WithClock(clock)}
	if cfg.HierarchyAwareMSoD {
		engineOpts = append(engineOpts, core.WithRoleExpander(model.Closure))
	}
	engine, err := core.NewEngine(store, compiled, engineOpts...)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	return &PDP{
		policyID: cfg.Policy.ID,
		model:    model,
		cvs:      credential.NewCVS(cfg.Policy.TrustedRoles(), cfg.Linker),
		engine:   engine,
		store:    store,
		trail:    cfg.Trail,
		observer: cfg.Observer,
		clock:    clock,
	}, nil
}

// TrustAuthority registers a credential issuer's verification key with
// the PDP's CVS.
func (p *PDP) TrustAuthority(a *credential.Authority) error {
	return p.cvs.RegisterAuthority(a)
}

// Model exposes the underlying RBAC model (for session-based baseline
// experiments and examples).
func (p *PDP) Model() *rbac.Model { return p.model }

// Store exposes the retained ADI.
func (p *PDP) Store() adi.Recorder { return p.store }

// Engine exposes the MSoD engine.
func (p *PDP) Engine() *core.Engine { return p.engine }

// Request is a decision request.
type Request struct {
	// Credentials carry the initiator's roles when the request comes
	// from a distributed PEP; they are validated by the CVS. When empty,
	// User and Roles must be pre-validated by the caller.
	Credentials []credential.Credential
	// User is the initiator's stable ID (ignored when Credentials are
	// present — the CVS derives it).
	User rbac.UserID
	// Roles are the activated roles (ignored when Credentials are
	// present).
	Roles []rbac.RoleName
	// Operation and Target are the access request ADI.
	Operation rbac.Operation
	Target    rbac.Object
	// Context is the business context instance of the request.
	Context bctx.Name
	// Environment is opaque contextual information, logged but not
	// evaluated (time-of-day style conditions are outside the paper's
	// scope).
	Environment map[string]string
}

// Phase says which stage produced the decision.
type Phase string

const (
	// PhaseCVS: credential validation failed to yield a usable subject.
	PhaseCVS Phase = "cvs"
	// PhaseRBAC: the ordinary role/permission check denied.
	PhaseRBAC Phase = "rbac"
	// PhaseMSoD: the MSoD algorithm denied.
	PhaseMSoD Phase = "msod"
	// PhaseGranted: all stages passed.
	PhaseGranted Phase = "granted"
)

// Decision is the PDP's answer.
type Decision struct {
	// Allowed is the final effect.
	Allowed bool
	// Phase identifies the granting/denying stage.
	Phase Phase
	// Reason is a human-readable explanation for denials.
	Reason string
	// User and Roles are the validated subject used for the decision.
	User  rbac.UserID
	Roles []rbac.RoleName
	// MSoD carries the engine's decision details when MSoD ran.
	MSoD *core.Decision
}

// Decide evaluates one access request: CVS → RBAC → MSoD → audit.
func (p *PDP) Decide(req Request) (Decision, error) {
	return p.DecideCtx(context.Background(), req)
}

// DecideCtx is Decide carrying a context. When the context holds an
// obsv.Trace, each pipeline stage records a span (obsv.StageCVS,
// StageRBAC, StageMSoD, StageAudit; the engine adds StageStore inside
// the msod span), and the trace ID is stamped into the audit-trail
// event so the durable record correlates with the gateway's log line.
func (p *PDP) DecideCtx(ctx context.Context, req Request) (Decision, error) {
	endCVS := obsv.StartSpan(ctx, obsv.StageCVS)
	user, roles, err := p.subject(req)
	endCVS()
	if err != nil {
		return Decision{}, err
	}
	dec := Decision{User: user, Roles: roles}

	perm := rbac.Permission{Operation: req.Operation, Object: req.Target}
	endRBAC := obsv.StartSpan(ctx, obsv.StageRBAC)
	permitted := p.model.RolesPermit(roles, perm)
	endRBAC()
	if !permitted {
		dec.Allowed = false
		dec.Phase = PhaseRBAC
		dec.Reason = fmt.Sprintf("no activated role grants %s", perm)
		// RBAC denials never touch the store, so they need no commit
		// ordering: publish and append directly.
		if p.trail != nil || p.observer != nil {
			ev := p.event(ctx, req, user, roles, dec, nil)
			if p.observer != nil {
				p.publish(ev, dec)
			}
			p.appendTrail(ctx, ev)
		}
		return dec, nil
	}

	msodReq := core.Request{
		User:      user,
		Roles:     roles,
		Operation: req.Operation,
		Target:    req.Target,
		Context:   req.Context,
	}
	endMSoD := obsv.StartSpan(ctx, obsv.StageMSoD)
	// The commit lock spans evaluation (which may commit a record) and
	// event publication — see the commitMu field comment. The audit
	// append stays outside: durable I/O under the lock would gate every
	// decision's latency on disk, and the trail has its own ordering.
	locked := p.observer != nil
	if locked {
		p.commitMu.Lock()
	}
	mdec, err := p.engine.EvaluateCtx(ctx, msodReq)
	if err != nil {
		if locked {
			p.commitMu.Unlock()
		}
		endMSoD()
		return Decision{}, err
	}
	dec.MSoD = &mdec
	if mdec.Effect == core.Deny {
		dec.Allowed = false
		dec.Phase = PhaseMSoD
		dec.Reason = mdec.Denial.Error()
	} else {
		dec.Allowed = true
		dec.Phase = PhaseGranted
	}
	var ev audit.Event
	if locked || p.trail != nil {
		ev = p.event(ctx, req, user, roles, dec, &mdec)
	}
	if locked {
		p.publish(ev, dec)
		p.commitMu.Unlock()
	}
	endMSoD()
	if p.trail != nil {
		p.appendTrail(ctx, ev)
	}
	return dec, nil
}

// WithCommitLock runs fn while holding the decision commit lock: no
// decision can sit between its store commit and its event publication
// while fn runs. The replica snapshot endpoint uses this to capture a
// store dump and a broker sequence number that are consistent with
// each other. Keep fn short — decisions block for its duration. The
// guarantee is meaningful only when the PDP has an Observer (without
// one, decisions skip the lock — and there is no event stream to be
// consistent with).
func (p *PDP) WithCommitLock(fn func()) {
	p.commitMu.Lock()
	defer p.commitMu.Unlock()
	fn()
}

// Advise answers "would Decide grant this?" without any side effects:
// the retained ADI is not modified and nothing is written to the audit
// trail. It exists for UX and planning queries; the answer is advisory
// (see core.Engine.Peek for the TOCTOU caveat).
func (p *PDP) Advise(req Request) (Decision, error) {
	return p.AdviseCtx(context.Background(), req)
}

// AdviseCtx is Advise carrying a context (see DecideCtx); advisory
// traces record cvs/rbac/msod spans but never audit or store — the
// path has no side effects.
func (p *PDP) AdviseCtx(ctx context.Context, req Request) (Decision, error) {
	endCVS := obsv.StartSpan(ctx, obsv.StageCVS)
	user, roles, err := p.subject(req)
	endCVS()
	if err != nil {
		return Decision{}, err
	}
	dec := Decision{User: user, Roles: roles}
	perm := rbac.Permission{Operation: req.Operation, Object: req.Target}
	endRBAC := obsv.StartSpan(ctx, obsv.StageRBAC)
	permitted := p.model.RolesPermit(roles, perm)
	endRBAC()
	if !permitted {
		dec.Phase = PhaseRBAC
		dec.Reason = fmt.Sprintf("no activated role grants %s", perm)
		return dec, nil
	}
	endMSoD := obsv.StartSpan(ctx, obsv.StageMSoD)
	mdec, err := p.engine.PeekCtx(ctx, core.Request{
		User: user, Roles: roles,
		Operation: req.Operation, Target: req.Target, Context: req.Context,
	})
	endMSoD()
	if err != nil {
		return Decision{}, err
	}
	dec.MSoD = &mdec
	if mdec.Effect == core.Deny {
		dec.Phase = PhaseMSoD
		dec.Reason = mdec.Denial.Error()
	} else {
		dec.Allowed = true
		dec.Phase = PhaseGranted
	}
	return dec, nil
}

// subject resolves the request's initiator: CVS-validated credentials
// take precedence; otherwise the pre-validated user/roles are used.
func (p *PDP) subject(req Request) (rbac.UserID, []rbac.RoleName, error) {
	if len(req.Credentials) > 0 {
		v, err := p.cvs.Validate(req.Credentials, p.clock())
		if err != nil {
			return "", nil, fmt.Errorf("pdp: credential validation: %w", err)
		}
		if v.User == "" {
			return "", nil, fmt.Errorf("%w: no valid credentials", ErrNoSubject)
		}
		return v.User, v.Roles, nil
	}
	if req.User == "" {
		return "", nil, ErrNoSubject
	}
	return req.User, append([]rbac.RoleName(nil), req.Roles...), nil
}

// event builds the audit record for a decision, stamping the context's
// trace ID so the durable record and the live event stream correlate.
func (p *PDP) event(ctx context.Context, req Request, user rbac.UserID, roles []rbac.RoleName, dec Decision, mdec *core.Decision) audit.Event {
	coreReq := core.Request{
		User: user, Roles: roles,
		Operation: req.Operation, Target: req.Target, Context: req.Context,
	}
	var cd core.Decision
	if mdec != nil {
		cd = *mdec
	}
	if !dec.Allowed {
		cd.Effect = core.Deny
	}
	ev := audit.NewEvent(coreReq, cd, p.clock())
	ev.TraceID = string(obsv.TraceIDFrom(ctx))
	return ev
}

// publish converts the audit record to a stream event — with the
// decision's retained-ADI effects echoed for mirror divergence checks —
// and hands it to the observer. For decisions that can commit, the
// caller holds commitMu so sequence numbers are assigned in commit
// order.
func (p *PDP) publish(ev audit.Event, dec Decision) {
	out := inspect.DecisionEvent{
		Time:            ev.Time,
		TraceID:         ev.TraceID,
		User:            ev.User,
		Roles:           ev.Roles,
		Operation:       ev.Operation,
		Target:          ev.Target,
		Context:         ev.Context,
		Effect:          ev.Effect,
		MatchedPolicies: ev.MatchedPolicies,
	}
	if dec.MSoD != nil {
		out.Recorded = dec.MSoD.Recorded
		out.Purged = dec.MSoD.Purged
	}
	if !dec.Allowed {
		out.Stage = string(dec.Phase)
		out.Reason = dec.Reason
		if dec.MSoD != nil && dec.MSoD.Denial != nil {
			// Surface the refusing constraint's identity and k-of-m state
			// inline, mirroring the explain record's governing rule.
			d := dec.MSoD.Denial
			out.Rule = d.Rule
			out.K = d.Held
			out.M = d.Cardinality
		}
	}
	p.observer(out)
}

// appendTrail writes the decision to the audit trail if one is
// configured. Trail write failures must not flip an access decision;
// the PDP surfaces them via the event error counter instead (a
// production system would fail-stop; the paper does not specify).
func (p *PDP) appendTrail(ctx context.Context, ev audit.Event) {
	if p.trail == nil {
		return
	}
	endAudit := obsv.StartSpan(ctx, obsv.StageAudit)
	if _, err := p.trail.AppendCtx(ctx, ev); err != nil {
		p.trailErrs.Add(1)
	}
	endAudit()
}
