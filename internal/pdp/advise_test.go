package pdp

import (
	"path/filepath"
	"testing"

	"msod/internal/audit"
	"msod/internal/policy"
)

// TestAdviseHasNoSideEffects: Advise answers like Decide but writes
// neither the retained ADI nor the audit trail.
func TestAdviseHasNoSideEffects(t *testing.T) {
	pol, err := policy.ParseRBACPolicy([]byte(bankPolicyXML))
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "trail")
	w, err := audit.NewWriter(dir, []byte("k"), 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{Policy: pol, Trail: w})
	if err != nil {
		t.Fatal(err)
	}

	req := bankReq("alice", "Teller", "HandleCash", "till", "York", "2006")
	adv, err := p.Advise(req)
	if err != nil || !adv.Allowed || adv.Phase != PhaseGranted {
		t.Fatalf("advise = %+v, %v", adv, err)
	}
	if p.Store().Len() != 0 {
		t.Fatal("advise wrote the retained ADI")
	}
	if w.Seq() != 0 {
		t.Fatal("advise wrote the audit trail")
	}

	// Decide follows the advice.
	dec, err := p.Decide(req)
	if err != nil || dec.Allowed != adv.Allowed {
		t.Fatalf("decide = %+v, %v", dec, err)
	}
	if w.Seq() != 1 {
		t.Fatalf("trail seq = %d after one Decide", w.Seq())
	}

	// Now advise on the conflicting action: denied, still no effects.
	adv, err = p.Advise(bankReq("alice", "Auditor", "Audit", "ledger", "York", "2006"))
	if err != nil || adv.Allowed || adv.Phase != PhaseMSoD {
		t.Fatalf("conflicting advise = %+v, %v", adv, err)
	}
	if p.Store().Len() != 1 || w.Seq() != 1 {
		t.Fatal("denying advise had side effects")
	}

	// RBAC-phase advise.
	adv, err = p.Advise(bankReq("alice", "Teller", "Audit", "ledger", "York", "2006"))
	if err != nil || adv.Allowed || adv.Phase != PhaseRBAC {
		t.Fatalf("rbac advise = %+v, %v", adv, err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}
