package pdp

import (
	"errors"
	"fmt"
	"time"

	"msod/internal/adi"
	"msod/internal/bctx"
	"msod/internal/credential"
	"msod/internal/inspect"
	"msod/internal/rbac"
)

// The §4.3 management port treats the retained ADI as a target resource
// protected by the PDP's own RBAC policy: a policy grants the
// RetainedADIController role the management operations on the
// RetainedADITarget object, and every management request goes through
// the ordinary Decide path before it touches the store.
const (
	// RetainedADITarget is the object name of the retained ADI resource.
	RetainedADITarget = rbac.Object("msod:retainedADI")
	// RetainedADIController is the conventional role name for ADI
	// administrators (the policy decides what it can actually do).
	RetainedADIController = rbac.RoleName("RetainedADIController")

	// OpPurgeContext removes the records of a context subtree.
	OpPurgeContext = rbac.Operation("purgeContext")
	// OpPurgeUser removes one user's records.
	OpPurgeUser = rbac.Operation("purgeUser")
	// OpPurgeBefore removes records older than a cutoff.
	OpPurgeBefore = rbac.Operation("purgeBefore")
	// OpStats reads store statistics.
	OpStats = rbac.Operation("stats")
)

// ErrManagement tags management-port failures.
var ErrManagement = errors.New("pdp: management")

// ManagementRequest is a §4.3 administrative operation on the retained
// ADI. Subject fields work as in Request (credentials or pre-validated).
type ManagementRequest struct {
	// Credentials / User / Roles identify the administrator.
	Credentials []credential.Credential
	User        rbac.UserID
	Roles       []rbac.RoleName
	// Operation is one of the Op* constants.
	Operation rbac.Operation
	// ContextPattern is the purge scope for OpPurgeContext (may contain
	// wildcards).
	ContextPattern string
	// TargetUser is the subject of OpPurgeUser.
	TargetUser rbac.UserID
	// Before is the cutoff for OpPurgeBefore.
	Before time.Time
}

// ManagementResult reports the outcome of a management operation.
type ManagementResult struct {
	// Removed is the number of records deleted by a purge.
	Removed int
	// Records is the store size after the operation.
	Records int
}

// Manage authorises and executes a management operation. The
// authorisation is an ordinary RBAC decision for (Operation,
// RetainedADITarget) — MSoD constraints do not apply to the management
// plane (the paper scopes them to business contexts).
func (p *PDP) Manage(req ManagementRequest) (ManagementResult, error) {
	user, roles, err := p.subject(Request{Credentials: req.Credentials, User: req.User, Roles: req.Roles})
	if err != nil {
		return ManagementResult{}, err
	}
	perm := rbac.Permission{Operation: req.Operation, Object: RetainedADITarget}
	if !p.model.RolesPermit(roles, perm) {
		return ManagementResult{}, fmt.Errorf("%w: user %q roles %v not permitted %s", ErrManagement, user, roles, perm)
	}

	// Purges mutate the retained ADI outside the decision path, so each
	// one publishes an OutcomePurge event under the commit lock — the
	// mutation and its event are atomic with respect to decisions, and
	// a mirror replaying the stream applies the same purge at the same
	// point (without these events it would silently diverge).
	switch req.Operation {
	case OpPurgeContext:
		pattern, err := bctx.Parse(req.ContextPattern)
		if err != nil {
			return ManagementResult{}, fmt.Errorf("%w: %v", ErrManagement, err)
		}
		var n int
		p.commitMu.Lock()
		n, err = p.store.PurgeContext(pattern)
		if err == nil {
			p.publishPurge(inspect.DecisionEvent{
				Operation: string(OpPurgeContext),
				Target:    string(RetainedADITarget),
				Context:   pattern.String(),
				Purged:    n,
				Reason:    fmt.Sprintf("management purge by %q", user),
			})
		}
		p.commitMu.Unlock()
		if err != nil {
			return ManagementResult{}, fmt.Errorf("%w: %v", ErrManagement, err)
		}
		return ManagementResult{Removed: n, Records: p.store.Len()}, nil

	case OpPurgeUser:
		if req.TargetUser == "" {
			return ManagementResult{}, fmt.Errorf("%w: purgeUser needs a target user", ErrManagement)
		}
		p.commitMu.Lock()
		n, ok, purgeErr := adi.PurgeUserFrom(p.store, req.TargetUser)
		if ok && purgeErr == nil {
			p.publishPurge(inspect.DecisionEvent{
				Operation: string(OpPurgeUser),
				Target:    string(RetainedADITarget),
				User:      string(req.TargetUser),
				Purged:    n,
				Reason:    fmt.Sprintf("management purge by %q", user),
			})
		}
		p.commitMu.Unlock()
		if !ok {
			return ManagementResult{}, fmt.Errorf("%w: store does not support purgeUser", ErrManagement)
		}
		if purgeErr != nil {
			// A durable purge that failed mid-write surfaces the store's
			// error chain (adi.ErrWriteFailed latches the server's
			// degraded read-only mode).
			return ManagementResult{}, fmt.Errorf("%w: %w", ErrManagement, purgeErr)
		}
		return ManagementResult{Removed: n, Records: p.store.Len()}, nil

	case OpPurgeBefore:
		if req.Before.IsZero() {
			return ManagementResult{}, fmt.Errorf("%w: purgeBefore needs a cutoff time", ErrManagement)
		}
		s, ok := p.store.(*adi.Store)
		if !ok {
			return ManagementResult{}, fmt.Errorf("%w: store does not support purgeBefore", ErrManagement)
		}
		before := req.Before
		p.commitMu.Lock()
		n := s.PurgeBefore(before)
		p.publishPurge(inspect.DecisionEvent{
			Operation: string(OpPurgeBefore),
			Target:    string(RetainedADITarget),
			Before:    &before,
			Purged:    n,
			Reason:    fmt.Sprintf("management purge by %q", user),
		})
		p.commitMu.Unlock()
		return ManagementResult{Removed: n, Records: p.store.Len()}, nil

	case OpStats:
		return ManagementResult{Records: p.store.Len()}, nil

	default:
		return ManagementResult{}, fmt.Errorf("%w: unknown operation %q", ErrManagement, req.Operation)
	}
}

// publishPurge emits a management purge to the event stream; no-op
// without an observer. The caller holds commitMu.
func (p *PDP) publishPurge(ev inspect.DecisionEvent) {
	if p.observer == nil {
		return
	}
	ev.Effect = inspect.OutcomePurge
	ev.Time = p.clock()
	p.observer(ev)
}
