// Package fsx is the narrow filesystem seam the durability layer is
// built over: the retained-ADI stores and the audit-trail writer
// perform every mutation through an FS, so tests (internal/fault) can
// interpose deterministic EIO/ENOSPC/torn-write/crash faults without
// touching the production code path. The default implementation, OS,
// is a zero-cost passthrough to package os.
package fsx

import (
	"io"
	"io/fs"
	"os"
)

// File is the writable-file surface the stores need: sequential and
// positioned I/O, truncation, and durability (Sync).
type File interface {
	io.Reader
	io.Writer
	io.Closer
	io.Seeker
	// Sync flushes the file's data to stable storage (fsync).
	Sync() error
	// Truncate changes the file's size.
	Truncate(size int64) error
	// Name returns the path the file was opened with.
	Name() string
}

// FS is the mutation-capable filesystem interface. Read helpers are
// included so a faulty store and its recovery path can share one
// injected filesystem.
type FS interface {
	// OpenFile is os.OpenFile.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// Open opens a file (or directory, for directory fsync) read-only.
	Open(name string) (File, error)
	// ReadFile is os.ReadFile.
	ReadFile(name string) ([]byte, error)
	// WriteFile is os.WriteFile.
	WriteFile(name string, data []byte, perm fs.FileMode) error
	// Rename is os.Rename.
	Rename(oldpath, newpath string) error
	// Truncate is os.Truncate.
	Truncate(name string, size int64) error
	// MkdirAll is os.MkdirAll.
	MkdirAll(path string, perm fs.FileMode) error
	// Stat is os.Stat.
	Stat(name string) (fs.FileInfo, error)
	// Remove is os.Remove.
	Remove(name string) error
}

// OS is the real filesystem.
var OS FS = osFS{}

// osFS passes every call through to package os.
type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Open(name string) (File, error)       { return os.Open(name) }
func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }
func (osFS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	return os.WriteFile(name, data, perm)
}
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }
func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Stat(name string) (fs.FileInfo, error)        { return os.Stat(name) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
