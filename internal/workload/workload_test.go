package workload

import (
	"testing"

	"msod/internal/adi"
	"msod/internal/core"
)

func TestBankDeterminism(t *testing.T) {
	cfg := BankConfig{Seed: 7, Users: 50, Branches: 3, Periods: 2, AuditorFraction: 0.3}
	a := NewBank(cfg).Stream(200)
	b := NewBank(cfg).Stream(200)
	for i := range a {
		if a[i].User != b[i].User || a[i].Operation != b[i].Operation || !a[i].Context.Equal(b[i].Context) {
			t.Fatalf("streams diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestBankShape(t *testing.T) {
	b := NewBank(BankConfig{Seed: 1, Users: 10, Branches: 2, Periods: 2,
		AuditorFraction: 0.5, CommitFraction: 0.05})
	sawTeller, sawAuditor, sawCommit := false, false, false
	for i := 0; i < 500; i++ {
		req := b.Next()
		if err := req.Validate(); err != nil {
			t.Fatalf("invalid request: %v", err)
		}
		if req.Context.Len() != 2 {
			t.Fatalf("context = %q", req.Context)
		}
		switch req.Operation {
		case "HandleCash":
			sawTeller = true
		case "Audit":
			sawAuditor = true
		case "CommitAudit":
			sawCommit = true
		}
	}
	if !sawTeller || !sawAuditor || !sawCommit {
		t.Errorf("stream missing op kinds: teller=%v auditor=%v commit=%v", sawTeller, sawAuditor, sawCommit)
	}
}

func TestBankZipfSkew(t *testing.T) {
	uniform := NewBank(BankConfig{Seed: 3, Users: 100, Branches: 1, Periods: 1})
	zipf := NewBank(BankConfig{Seed: 3, Users: 100, Branches: 1, Periods: 1, Zipf: true})
	count := func(b *Bank) map[string]int {
		m := map[string]int{}
		for i := 0; i < 2000; i++ {
			m[string(b.Next().User)]++
		}
		return m
	}
	cu, cz := count(uniform), count(zipf)
	maxOf := func(m map[string]int) int {
		max := 0
		for _, v := range m {
			if v > max {
				max = v
			}
		}
		return max
	}
	if maxOf(cz) <= maxOf(cu) {
		t.Errorf("zipf head (%d) not hotter than uniform head (%d)", maxOf(cz), maxOf(cu))
	}
}

func TestRecordsValidAndDeterministic(t *testing.T) {
	a := Records(11, 300, 20, 5)
	b := Records(11, 300, 20, 5)
	if len(a) != 300 {
		t.Fatalf("len = %d", len(a))
	}
	store := adi.NewStore()
	if err := store.Append(a...); err != nil {
		t.Fatalf("generated records rejected: %v", err)
	}
	for i := range a {
		if a[i].User != b[i].User || !a[i].Context.Equal(b[i].Context) {
			t.Fatalf("records diverge at %d", i)
		}
		if i > 0 && !a[i].Time.After(a[i-1].Time) {
			t.Fatalf("timestamps not increasing at %d", i)
		}
	}
}

// TestTaxProcessesAreValid: every generated process instance must be
// granted end to end by an engine running the Example 2 policy.
func TestTaxProcessesAreValid(t *testing.T) {
	gen := NewTax(TaxConfig{Seed: 5, Clerks: 4, Managers: 5, Offices: 2})
	eng, err := core.NewEngine(adi.NewStore(), []core.Policy{TaxPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 50; p++ {
		steps := gen.NextProcess()
		if len(steps) != 5 {
			t.Fatalf("process has %d steps", len(steps))
		}
		for _, s := range steps {
			dec, err := eng.Evaluate(s.Request)
			if err != nil {
				t.Fatal(err)
			}
			if dec.Effect != core.Grant {
				t.Fatalf("process %d task %s denied: %v", p, s.Task, dec.Denial)
			}
		}
	}
	// Every instance ends with its last step, so the store must be empty.
	if n := eng.Store().Len(); n != 0 {
		t.Errorf("retained ADI has %d records after complete processes", n)
	}
}

func TestTaxDistinctExecutors(t *testing.T) {
	gen := NewTax(TaxConfig{Seed: 9, Clerks: 2, Managers: 3, Offices: 1})
	for p := 0; p < 100; p++ {
		steps := gen.NextProcess()
		if steps[0].Request.User == steps[4].Request.User {
			t.Fatal("T1 and T4 share a clerk")
		}
		m := map[string]bool{
			string(steps[1].Request.User): true,
			string(steps[2].Request.User): true,
			string(steps[3].Request.User): true,
		}
		if len(m) != 3 {
			t.Fatalf("managers not distinct: %v", m)
		}
	}
}

func TestConfigNormalisation(t *testing.T) {
	b := NewBank(BankConfig{Seed: 1})
	req := b.Next()
	if err := req.Validate(); err != nil {
		t.Fatalf("minimal config: %v", err)
	}
	gen := NewTax(TaxConfig{Seed: 1})
	if len(gen.NextProcess()) != 5 {
		t.Error("minimal tax config broken")
	}
	if got := Records(1, 10, 0, 0); len(got) != 10 {
		t.Errorf("records with zero users/contexts: %d", len(got))
	}
}
