// Package workload generates deterministic synthetic request streams
// for the experiments: bank-style MMER workloads over a Branch × Period
// context grid, tax-refund-style MMEP process streams, and raw
// retained-ADI record populations for store-scaling measurements.
//
// All generators are seeded; the same configuration always produces the
// same stream, so experiment tables are reproducible run to run.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"msod/internal/adi"
	"msod/internal/bctx"
	"msod/internal/core"
	"msod/internal/rbac"
)

// BankConfig parameterises the bank workload.
type BankConfig struct {
	// Seed fixes the stream.
	Seed int64
	// Users is the population size.
	Users int
	// Branches and Periods define the context grid.
	Branches int
	Periods  int
	// AuditorFraction is the probability a request presents the Auditor
	// role instead of Teller (conflict pressure).
	AuditorFraction float64
	// Zipf skews user selection towards a hot head when true (a few very
	// active employees), matching realistic access patterns; uniform
	// otherwise.
	Zipf bool
	// CommitFraction is the probability a request is the CommitAudit
	// last step (closing the period context and purging history).
	CommitFraction float64
}

// Bank is a deterministic bank-workload stream.
type Bank struct {
	cfg  BankConfig
	rng  *rand.Rand
	zipf *rand.Zipf
}

// NewBank builds a bank workload generator; invalid configurations are
// normalised to minimal sane values.
func NewBank(cfg BankConfig) *Bank {
	if cfg.Users < 1 {
		cfg.Users = 1
	}
	if cfg.Branches < 1 {
		cfg.Branches = 1
	}
	if cfg.Periods < 1 {
		cfg.Periods = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := &Bank{cfg: cfg, rng: rng}
	if cfg.Zipf && cfg.Users > 1 {
		b.zipf = rand.NewZipf(rng, 1.2, 1, uint64(cfg.Users-1))
	}
	return b
}

// BankPolicy returns the Example 1 policy the bank workload is designed
// to exercise.
func BankPolicy() core.Policy {
	return core.Policy{
		Context:  bctx.MustParse("Branch=*, Period=!"),
		LastStep: &core.Step{Operation: "CommitAudit", Target: "audit"},
		MMER: []core.MMERRule{{
			Roles:       []rbac.RoleName{"Teller", "Auditor"},
			Cardinality: 2,
		}},
	}
}

// Next produces the next request in the stream.
func (b *Bank) Next() core.Request {
	var u int
	if b.zipf != nil {
		u = int(b.zipf.Uint64())
	} else {
		u = b.rng.Intn(b.cfg.Users)
	}
	branch := b.rng.Intn(b.cfg.Branches)
	period := b.rng.Intn(b.cfg.Periods)
	ctx := bctx.MustName(
		bctx.Component{Type: "Branch", Value: fmt.Sprintf("b%d", branch)},
		bctx.Component{Type: "Period", Value: fmt.Sprintf("p%d", period)},
	)

	role := rbac.RoleName("Teller")
	op := rbac.Operation("HandleCash")
	target := rbac.Object("till")
	if b.rng.Float64() < b.cfg.AuditorFraction {
		role = "Auditor"
		op = "Audit"
		target = "ledger"
	}
	if b.cfg.CommitFraction > 0 && b.rng.Float64() < b.cfg.CommitFraction {
		role = "Auditor"
		op = "CommitAudit"
		target = "audit"
	}
	return core.Request{
		User:      rbac.UserID(fmt.Sprintf("user%04d", u)),
		Roles:     []rbac.RoleName{role},
		Operation: op,
		Target:    target,
		Context:   ctx,
	}
}

// Stream returns the next n requests.
func (b *Bank) Stream(n int) []core.Request {
	out := make([]core.Request, n)
	for i := range out {
		out[i] = b.Next()
	}
	return out
}

// Records generates n synthetic retained-ADI records spread over the
// given numbers of users and context instances, for direct store-scaling
// measurements (experiment E4). Timestamps advance one second per
// record from a fixed epoch.
func Records(seed int64, n, users, contexts int) []adi.Record {
	if users < 1 {
		users = 1
	}
	if contexts < 1 {
		contexts = 1
	}
	rng := rand.New(rand.NewSource(seed))
	epoch := time.Date(2006, 1, 1, 0, 0, 0, 0, time.UTC)
	out := make([]adi.Record, n)
	for i := range out {
		role := rbac.RoleName("Teller")
		if rng.Intn(2) == 0 {
			role = "Auditor"
		}
		out[i] = adi.Record{
			User:      rbac.UserID(fmt.Sprintf("user%04d", rng.Intn(users))),
			Roles:     []rbac.RoleName{role},
			Operation: rbac.Operation(fmt.Sprintf("op%d", rng.Intn(8))),
			Target:    "t",
			Context: bctx.MustName(
				bctx.Component{Type: "Branch", Value: fmt.Sprintf("b%d", rng.Intn(contexts))},
				bctx.Component{Type: "Period", Value: "p0"},
			),
			Time: epoch.Add(time.Duration(i) * time.Second),
		}
	}
	return out
}

// TaxConfig parameterises the tax-refund workload.
type TaxConfig struct {
	Seed int64
	// Clerks and Managers are the per-role populations.
	Clerks   int
	Managers int
	// Offices is the number of tax offices (context fan-out).
	Offices int
}

// TaxStep is one step of a process instance: the request plus the task
// name, for harnesses that track workflow progress.
type TaxStep struct {
	Task    string
	Request core.Request
}

// Tax generates complete tax-refund process instances: each call to
// NextProcess yields the five steps (T1, T2×2, T3, T4) of a fresh
// instance with randomly chosen distinct executors — a stream of valid
// processes that an MSoD engine should grant end to end.
type Tax struct {
	cfg  TaxConfig
	rng  *rand.Rand
	next int // process instance counter
}

// NewTax builds a tax workload generator.
func NewTax(cfg TaxConfig) *Tax {
	if cfg.Clerks < 2 {
		cfg.Clerks = 2
	}
	if cfg.Managers < 3 {
		cfg.Managers = 3
	}
	if cfg.Offices < 1 {
		cfg.Offices = 1
	}
	return &Tax{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// TaxPolicy returns the Example 2 policy the tax workload exercises.
func TaxPolicy() core.Policy {
	check := rbac.Object("http://www.myTaxOffice.com/Check")
	auditT := rbac.Object("http://secret.location.com/audit")
	results := rbac.Object("http://secret.location.com/results")
	return core.Policy{
		Context:   bctx.MustParse("TaxOffice=!, taxRefundProcess=!"),
		FirstStep: &core.Step{Operation: "prepareCheck", Target: check},
		LastStep:  &core.Step{Operation: "confirmCheck", Target: auditT},
		MMEP: []core.MMEPRule{
			{
				Privileges: []rbac.Permission{
					{Operation: "prepareCheck", Object: check},
					{Operation: "confirmCheck", Object: auditT},
				},
				Cardinality: 2,
			},
			{
				Privileges: []rbac.Permission{
					{Operation: "approve/disapproveCheck", Object: check},
					{Operation: "approve/disapproveCheck", Object: check},
					{Operation: "combineResults", Object: results},
				},
				Cardinality: 2,
			},
		},
	}
}

// NextProcess yields the five steps of a fresh, constraint-respecting
// process instance.
func (t *Tax) NextProcess() []TaxStep {
	t.next++
	office := t.rng.Intn(t.cfg.Offices)
	ctx := bctx.MustName(
		bctx.Component{Type: "TaxOffice", Value: fmt.Sprintf("o%d", office)},
		bctx.Component{Type: "taxRefundProcess", Value: fmt.Sprintf("p%06d", t.next)},
	)
	// Two distinct clerks, three distinct managers.
	c1, c2 := t.distinctPair(t.cfg.Clerks)
	m1, m2, m3 := t.distinctTriple(t.cfg.Managers)
	clerk := func(i int) rbac.UserID { return rbac.UserID(fmt.Sprintf("clerk%03d", i)) }
	mgr := func(i int) rbac.UserID { return rbac.UserID(fmt.Sprintf("mgr%03d", i)) }

	check := rbac.Object("http://www.myTaxOffice.com/Check")
	auditT := rbac.Object("http://secret.location.com/audit")
	results := rbac.Object("http://secret.location.com/results")

	mk := func(task string, user rbac.UserID, role rbac.RoleName, op rbac.Operation, target rbac.Object) TaxStep {
		return TaxStep{Task: task, Request: core.Request{
			User: user, Roles: []rbac.RoleName{role},
			Operation: op, Target: target, Context: ctx,
		}}
	}
	return []TaxStep{
		mk("T1", clerk(c1), "Clerk", "prepareCheck", check),
		mk("T2", mgr(m1), "Manager", "approve/disapproveCheck", check),
		mk("T2", mgr(m2), "Manager", "approve/disapproveCheck", check),
		mk("T3", mgr(m3), "Manager", "combineResults", results),
		mk("T4", clerk(c2), "Clerk", "confirmCheck", auditT),
	}
}

func (t *Tax) distinctPair(n int) (int, int) {
	a := t.rng.Intn(n)
	b := t.rng.Intn(n - 1)
	if b >= a {
		b++
	}
	return a, b
}

func (t *Tax) distinctTriple(n int) (int, int, int) {
	a, b := t.distinctPair(n)
	c := t.rng.Intn(n)
	for c == a || c == b {
		c = t.rng.Intn(n)
	}
	return a, b, c
}
