package bctx

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatchInstance(t *testing.T) {
	cases := []struct {
		pattern string
		inst    string
		want    bool
	}{
		// Paper Figure 2 examples: bank policy contexts.
		{"Branch=*, Period=!", "Branch=York, Period=2006", true},
		{"Branch=*, Period=!", "Branch=Leeds, Period=2006", true},
		{"Branch=!, Period=!", "Branch=York, Period=2006", true},
		{"Branch=York, Period=!", "Branch=York, Period=2006", true},
		{"Branch=York, Period=!", "Branch=Leeds, Period=2006", false},
		// Subordinate instances match (equal or subordinate).
		{"Branch=*, Period=!", "Branch=York, Period=2006, Till=4", true},
		// Universal policy context matches everything.
		{"", "Branch=York", true},
		{"", "", true},
		// Instance shallower than pattern: no match.
		{"Branch=*, Period=!", "Branch=York", false},
		// Type mismatch.
		{"Branch=*", "Office=York", false},
		// Tax refund example.
		{"TaxOffice=!, taxRefundProcess=!", "TaxOffice=Leeds, taxRefundProcess=77", true},
		{"TaxOffice=!, taxRefundProcess=!", "TaxOffice=Leeds", false},
	}
	for _, c := range cases {
		got, err := MatchInstance(MustParse(c.pattern), MustParse(c.inst))
		if err != nil {
			t.Fatalf("MatchInstance(%q, %q): %v", c.pattern, c.inst, err)
		}
		if got != c.want {
			t.Errorf("MatchInstance(%q, %q) = %v, want %v", c.pattern, c.inst, got, c.want)
		}
	}
}

func TestMatchInstanceRejectsWildcardInstance(t *testing.T) {
	if _, err := MatchInstance(MustParse("A=*"), MustParse("A=!")); err == nil {
		t.Error("expected error for wildcard instance")
	}
}

func TestBind(t *testing.T) {
	cases := []struct {
		pattern string
		inst    string
		want    string
	}{
		// "!" binds to the request instance value; "*" stays "*".
		{"Branch=*, Period=!", "Branch=York, Period=2006", "Branch=*, Period=2006"},
		{"Branch=!, Period=!", "Branch=York, Period=2006", "Branch=York, Period=2006"},
		{"Branch=York, Period=!", "Branch=York, Period=2006", "Branch=York, Period=2006"},
		// Binding from a deeper instance uses the positional values.
		{"Branch=*, Period=!", "Branch=York, Period=2006, Till=4", "Branch=*, Period=2006"},
		// No wildcards: identity.
		{"Branch=York", "Branch=York", "Branch=York"},
		{"", "Branch=York", ""},
	}
	for _, c := range cases {
		got, err := Bind(MustParse(c.pattern), MustParse(c.inst))
		if err != nil {
			t.Fatalf("Bind(%q, %q): %v", c.pattern, c.inst, err)
		}
		if got.String() != c.want {
			t.Errorf("Bind(%q, %q) = %q, want %q", c.pattern, c.inst, got, c.want)
		}
	}
}

func TestBindRequiresMatch(t *testing.T) {
	if _, err := Bind(MustParse("Branch=York, Period=!"), MustParse("Branch=Leeds, Period=2006")); err == nil {
		t.Error("Bind should fail when the instance does not match")
	}
}

func TestSubsumes(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"", "Branch=*", true},
		{"Branch=*", "Branch=York", true},
		{"Branch=!", "Branch=York", true},
		{"Branch=York", "Branch=*", false},
		{"Branch=*", "Branch=*, Period=!", true},
		{"Branch=*, Period=!", "Branch=*", false},
		{"Branch=York", "Branch=York", true},
		{"Branch=York", "Branch=Leeds", false},
		{"Office=*", "Branch=*", false},
	}
	for _, c := range cases {
		if got := Subsumes(MustParse(c.a), MustParse(c.b)); got != c.want {
			t.Errorf("Subsumes(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// Property: binding produces a pattern that (a) still matches the
// instance it was bound from, and (b) has no remaining "!" components.
func TestQuickBindStabilises(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	f := func() bool {
		pattern := genName(r, 4, true)
		inst := genName(r, 6, false)
		ok, err := MatchInstance(pattern, inst)
		if err != nil || !ok {
			return true // vacuous
		}
		bound, err := Bind(pattern, inst)
		if err != nil {
			return false
		}
		if bound.HasPerInstance() {
			return false
		}
		ok2, err := MatchInstance(bound, inst)
		if err != nil || !ok2 {
			return false
		}
		// Binding twice is idempotent.
		bound2, err := Bind(bound, inst)
		if err != nil || !bound2.Equal(bound) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Subsumes is consistent with MatchInstance — if a subsumes b
// and an instance matches b, it matches a.
func TestQuickSubsumesConsistent(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	f := func() bool {
		a := genName(r, 3, true)
		b := genName(r, 3, true)
		inst := genName(r, 5, false)
		if !Subsumes(a, b) {
			return true // vacuous
		}
		mb, err := MatchInstance(b, inst)
		if err != nil {
			return false
		}
		if !mb {
			return true // vacuous
		}
		ma, err := MatchInstance(a, inst)
		return err == nil && ma
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Error(err)
	}
}
