package bctx

import "fmt"

// MatchInstance reports whether the concrete context instance inst falls
// within the scope of the (possibly wildcarded) policy context pattern:
// inst is equal to or subordinate to pattern, where a pattern component
// with value "*" or "!" matches any instance value of the same type.
//
// This is the matching rule of step 1 (against the request's context
// instance) and step 3 (against retained-ADI context instances) of the
// §4.2 enforcement algorithm. An error is returned if inst is not a pure
// instance name.
func MatchInstance(pattern, inst Name) (bool, error) {
	if !inst.IsInstance() {
		return false, fmt.Errorf("bctx: %q is not a context instance (contains wildcards)", inst)
	}
	return matchPrefix(pattern, inst), nil
}

// matchPrefix reports whether pattern's components are a prefix of
// name's, treating "*" and "!" in pattern as matching any value.
func matchPrefix(pattern, name Name) bool {
	if len(pattern.components) > len(name.components) {
		return false
	}
	for i, pc := range pattern.components {
		nc := name.components[i]
		if pc.Type != nc.Type {
			return false
		}
		if pc.IsWildcard() {
			continue
		}
		if pc.Value != nc.Value {
			return false
		}
	}
	return true
}

// Bind specialises a per-instance policy context to a matched request
// instance, implementing the step-1 clause "if a matched policy pertains
// to a single business context instance (!), replace policy business
// context with the instance of the input business context".
//
// Every "!" component takes the concrete value from inst at the same
// position; "*" components and concrete components are left unchanged.
// Bind must only be called after MatchInstance(pattern, inst) reported
// true; it returns an error otherwise.
func Bind(pattern, inst Name) (Name, error) {
	ok, err := MatchInstance(pattern, inst)
	if err != nil {
		return Name{}, err
	}
	if !ok {
		return Name{}, fmt.Errorf("bctx: instance %q does not match policy context %q", inst, pattern)
	}
	bound := make([]Component, len(pattern.components))
	for i, pc := range pattern.components {
		if pc.Value == PerInstance {
			pc.Value = inst.components[i].Value
		}
		bound[i] = pc
	}
	return Name{components: bound}, nil
}

// Subsumes reports whether pattern a's scope includes pattern b's scope
// for every possible instance: any instance matching b also matches a.
// Both names may contain wildcards. It is used to relate MSoD policies to
// one another ("all contexts which are equal or subordinate to the
// context in the MMER rule should be applied with the MMER rule").
func Subsumes(a, b Name) bool {
	if len(a.components) > len(b.components) {
		return false
	}
	for i, ac := range a.components {
		bc := b.components[i]
		if ac.Type != bc.Type {
			return false
		}
		if ac.IsWildcard() {
			// "*" and "!" both accept any value at this position.
			continue
		}
		if bc.IsWildcard() {
			// b accepts values a does not.
			return false
		}
		if ac.Value != bc.Value {
			return false
		}
	}
	return true
}
