package bctx

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []struct {
		in      string
		want    string
		wantLen int
	}{
		{"", "", 0},
		{"   ", "", 0},
		{"Branch=*, Period=!", "Branch=*, Period=!", 2},
		{"Branch=York,Period=2006", "Branch=York, Period=2006", 2},
		{"  TaxOffice = ! ,  taxRefundProcess = ! ", "TaxOffice=!, taxRefundProcess=!", 2},
		{"A=1", "A=1", 1},
	}
	for _, c := range cases {
		n, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if got := n.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, got, c.want)
		}
		if n.Len() != c.wantLen {
			t.Errorf("Parse(%q).Len() = %d, want %d", c.in, n.Len(), c.wantLen)
		}
		// Reparse the canonical form and check equality.
		n2, err := Parse(n.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", n.String(), err)
		}
		if !n.Equal(n2) {
			t.Errorf("reparse of %q not equal", n.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"Branch",         // missing '='
		"Branch=",        // empty value
		"=York",          // empty type
		"Branch=York,,",  // empty component
		"Branch=York, ,", // blank component
		"A=1,B",          // second missing '='
		",",              // only separator
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): expected error, got nil", in)
		}
	}
}

func TestNewNameRejectsReservedCharacters(t *testing.T) {
	if _, err := NewName(Component{Type: "A=B", Value: "x"}); err == nil {
		t.Error("type with '=' accepted")
	}
	if _, err := NewName(Component{Type: "A", Value: "x,y"}); err == nil {
		t.Error("value with ',' accepted")
	}
	if _, err := NewName(Component{Type: "", Value: "x"}); err == nil {
		t.Error("empty type accepted")
	}
}

func TestUniversalProperties(t *testing.T) {
	if !Universal.IsUniversal() {
		t.Error("Universal.IsUniversal() = false")
	}
	if !Universal.IsInstance() {
		t.Error("Universal.IsInstance() = false")
	}
	if Universal.String() != "" {
		t.Errorf("Universal.String() = %q", Universal.String())
	}
	if !Universal.Parent().IsUniversal() {
		t.Error("parent of universal is not universal")
	}
	child := Universal.MustChild("Branch", "York")
	if !Universal.IsAncestorOf(child) {
		t.Error("universal not ancestor of child")
	}
	if child.IsAncestorOf(Universal) {
		t.Error("child is ancestor of universal")
	}
}

func TestAncestry(t *testing.T) {
	bank := MustParse("Branch=York")
	period := bank.MustChild("Period", "2006")
	other := MustParse("Branch=Leeds")

	if !bank.IsAncestorOf(period) {
		t.Error("Branch=York should be ancestor of Branch=York, Period=2006")
	}
	if bank.IsAncestorOf(bank) {
		t.Error("IsAncestorOf must be strict")
	}
	if !period.IsEqualOrSubordinateTo(bank) {
		t.Error("period should be subordinate to bank")
	}
	if !period.IsEqualOrSubordinateTo(period) {
		t.Error("name should be equal-or-subordinate to itself")
	}
	if other.IsEqualOrSubordinateTo(bank) {
		t.Error("Branch=Leeds is not subordinate to Branch=York")
	}
	if period.Parent().String() != "Branch=York" {
		t.Errorf("Parent = %q", period.Parent().String())
	}
}

func TestIsInstanceAndHasPerInstance(t *testing.T) {
	cases := []struct {
		in          string
		instance    bool
		perInstance bool
	}{
		{"Branch=*, Period=!", false, true},
		{"Branch=York, Period=2006", true, false},
		{"Branch=*, Period=2006", false, false},
		{"", true, false},
	}
	for _, c := range cases {
		n := MustParse(c.in)
		if n.IsInstance() != c.instance {
			t.Errorf("%q IsInstance = %v, want %v", c.in, n.IsInstance(), c.instance)
		}
		if n.HasPerInstance() != c.perInstance {
			t.Errorf("%q HasPerInstance = %v, want %v", c.in, n.HasPerInstance(), c.perInstance)
		}
	}
}

func TestComponentsReturnsCopy(t *testing.T) {
	n := MustParse("A=1, B=2")
	cs := n.Components()
	cs[0].Value = "mutated"
	if n.String() != "A=1, B=2" {
		t.Errorf("Components leaked internal state: %q", n)
	}
}

// genName produces a random valid name for property tests. Wildcards are
// included when allowWild is true.
func genName(r *rand.Rand, maxDepth int, allowWild bool) Name {
	depth := r.Intn(maxDepth + 1)
	comps := make([]Component, depth)
	for i := range comps {
		comps[i].Type = string(rune('A' + i)) // deterministic type chain
		switch v := r.Intn(6); {
		case allowWild && v == 0:
			comps[i].Value = AnyInstance
		case allowWild && v == 1:
			comps[i].Value = PerInstance
		default:
			comps[i].Value = string(rune('a' + r.Intn(3)))
		}
	}
	return MustName(comps...)
}

func TestQuickParseStringInverse(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		n := genName(r, 5, true)
		parsed, err := Parse(n.String())
		if err != nil {
			return false
		}
		return parsed.Equal(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickAncestryIsPrefix(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	f := func() bool {
		n := genName(r, 5, false)
		if n.IsUniversal() {
			return true
		}
		p := n.Parent()
		// Parent is always a proper ancestor, and string prefix holds.
		if !p.IsAncestorOf(n) {
			return false
		}
		if !strings.HasPrefix(n.String(), p.String()) {
			return false
		}
		return n.IsEqualOrSubordinateTo(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickEqualIsReflexiveSymmetric(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	f := func() bool {
		a := genName(r, 4, true)
		b := genName(r, 4, true)
		if !a.Equal(a) {
			return false
		}
		if a.Equal(b) != b.Equal(a) {
			return false
		}
		if a.Equal(b) && !reflect.DeepEqual(a.Components(), b.Components()) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTextMarshalling(t *testing.T) {
	n := MustParse("Branch=*, Period=!")
	b, err := n.MarshalText()
	if err != nil || string(b) != "Branch=*, Period=!" {
		t.Fatalf("MarshalText = %q, %v", b, err)
	}
	var out Name
	if err := out.UnmarshalText(b); err != nil {
		t.Fatal(err)
	}
	if !out.Equal(n) {
		t.Errorf("round trip = %q", out)
	}
	if err := out.UnmarshalText([]byte("===")); err == nil {
		t.Error("bad text accepted")
	}
	// JSON embedding uses the text form.
	type payload struct {
		Ctx Name `json:"ctx"`
	}
	raw, err := json.Marshal(payload{Ctx: n})
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != `{"ctx":"Branch=*, Period=!"}` {
		t.Errorf("json = %s", raw)
	}
	var p2 payload
	if err := json.Unmarshal(raw, &p2); err != nil {
		t.Fatal(err)
	}
	if !p2.Ctx.Equal(n) {
		t.Errorf("json round trip = %q", p2.Ctx)
	}
}
