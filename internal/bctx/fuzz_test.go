package bctx

import (
	"strings"
	"testing"
)

// FuzzParse checks the parser never panics and that accepted names
// round-trip through their canonical string form.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"",
		"Branch=*, Period=!",
		"Branch=York,Period=2006",
		"A=1, B=2, C=3",
		"  X = y  ",
		"A==",
		",,,",
		"A=1,",
		"=",
		"A=\x00",
		strings.Repeat("A=1, ", 50),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		n, err := Parse(in)
		if err != nil {
			return
		}
		// Canonical round trip.
		n2, err := Parse(n.String())
		if err != nil {
			t.Fatalf("canonical form %q of %q does not reparse: %v", n.String(), in, err)
		}
		if !n.Equal(n2) {
			t.Fatalf("round trip changed %q -> %q", n.String(), n2.String())
		}
		// Matching against itself holds for instances.
		if n.IsInstance() {
			ok, err := MatchInstance(n, n)
			if err != nil || !ok {
				t.Fatalf("instance %q does not match itself: %v %v", n, ok, err)
			}
		}
		// Every name is subordinate to the universal context.
		if !n.IsEqualOrSubordinateTo(Universal) {
			t.Fatalf("%q not subordinate to universal", n)
		}
	})
}

// FuzzMatchBind checks the match/bind pair on arbitrary pattern and
// instance strings: Bind succeeds exactly when MatchInstance holds, and
// the bound pattern still matches.
func FuzzMatchBind(f *testing.F) {
	f.Add("Branch=*, Period=!", "Branch=York, Period=2006")
	f.Add("A=!", "A=1, B=2")
	f.Add("", "A=1")
	f.Add("A=x", "A=y")
	f.Fuzz(func(t *testing.T, pat, inst string) {
		p, err := Parse(pat)
		if err != nil {
			return
		}
		i, err := Parse(inst)
		if err != nil || !i.IsInstance() {
			return
		}
		ok, err := MatchInstance(p, i)
		if err != nil {
			t.Fatalf("MatchInstance(%q, %q): %v", p, i, err)
		}
		bound, berr := Bind(p, i)
		if ok != (berr == nil) {
			t.Fatalf("Bind success (%v) disagrees with match (%v)", berr, ok)
		}
		if ok {
			ok2, err := MatchInstance(bound, i)
			if err != nil || !ok2 {
				t.Fatalf("bound %q no longer matches %q", bound, i)
			}
		}
	})
}
