// Package bctx implements the hierarchically named business contexts of
// the MSoD model (Chadwick et al., ICDE 2007, §2.2).
//
// A business context identifies the scope over which a multi-session
// separation-of-duty policy persists. Contexts are named by an ordered
// list of type=value components, for example
//
//	Branch=York, Period=2006
//
// The empty name is the universal context (the root of the hierarchy).
// A name A is subordinate to a name B when B's components are a prefix of
// A's components; the universal context is therefore an ancestor of every
// context.
//
// Policy contexts may use two special values:
//
//   - "*" matches every instance value of that component and keeps
//     matching across all of them ("SSD across all instances"), and
//   - "!" matches every instance value of that component but binds the
//     matched value, specialising the policy to that one instance
//     ("DSD per instance").
//
// Instance names (those carried on access requests and stored in the
// retained ADI) must use only concrete values.
package bctx

import (
	"fmt"
	"strings"
)

// Wildcard values usable in policy context components.
const (
	// AnyInstance ("*") matches all instance values of a component and
	// aggregates history across them.
	AnyInstance = "*"
	// PerInstance ("!") matches any one instance value of a component and
	// binds it, so history is segregated per instance.
	PerInstance = "!"
)

// Component is one type=value element of a business context name.
type Component struct {
	// Type is the context type, e.g. "Branch" or "taxRefundProcess".
	Type string
	// Value is the context value: a concrete instance value, or for
	// policy contexts possibly AnyInstance or PerInstance.
	Value string
}

// IsWildcard reports whether the component value is "*" or "!".
func (c Component) IsWildcard() bool {
	return c.Value == AnyInstance || c.Value == PerInstance
}

// String renders the component as "Type=Value".
func (c Component) String() string { return c.Type + "=" + c.Value }

// Name is a business context name: an ordered list of components from the
// most generic context type to the most refined. The zero value is the
// universal context.
type Name struct {
	components []Component
}

// Universal is the root of the context hierarchy; its name is empty.
var Universal = Name{}

// NewName builds a Name from components. It returns an error if any
// component has an empty type or value, or contains the reserved
// characters '=' or ','.
func NewName(components ...Component) (Name, error) {
	for i, c := range components {
		if err := checkToken(c.Type); err != nil {
			return Name{}, fmt.Errorf("bctx: component %d type: %w", i, err)
		}
		if err := checkToken(c.Value); err != nil {
			return Name{}, fmt.Errorf("bctx: component %d value: %w", i, err)
		}
	}
	return Name{components: append([]Component(nil), components...)}, nil
}

// MustName is like NewName but panics on error. It is intended for
// tests and for literals known to be valid.
func MustName(components ...Component) Name {
	n, err := NewName(components...)
	if err != nil {
		panic(err)
	}
	return n
}

func checkToken(s string) error {
	if s == "" {
		return fmt.Errorf("empty token")
	}
	if strings.ContainsAny(s, "=,") {
		return fmt.Errorf("token %q contains reserved character", s)
	}
	return nil
}

// Parse parses a textual context name of the form
// "Type1=Value1, Type2=Value2". Whitespace around components, types and
// values is ignored. The empty string parses to the universal context.
func Parse(s string) (Name, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Universal, nil
	}
	parts := strings.Split(s, ",")
	components := make([]Component, 0, len(parts))
	for _, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			return Name{}, fmt.Errorf("bctx: empty component in %q", s)
		}
		eq := strings.IndexByte(part, '=')
		if eq < 0 {
			return Name{}, fmt.Errorf("bctx: component %q missing '='", part)
		}
		typ := strings.TrimSpace(part[:eq])
		val := strings.TrimSpace(part[eq+1:])
		if typ == "" || val == "" {
			return Name{}, fmt.Errorf("bctx: component %q has empty type or value", part)
		}
		components = append(components, Component{Type: typ, Value: val})
	}
	return NewName(components...)
}

// MustParse is like Parse but panics on error.
func MustParse(s string) Name {
	n, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return n
}

// String renders the name as "Type1=Value1, Type2=Value2". The universal
// context renders as the empty string.
func (n Name) String() string {
	if len(n.components) == 0 {
		return ""
	}
	var b strings.Builder
	for i, c := range n.components {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.String())
	}
	return b.String()
}

// Components returns a copy of the name's components.
func (n Name) Components() []Component {
	return append([]Component(nil), n.components...)
}

// Len returns the number of components (the depth below the universal
// context).
func (n Name) Len() int { return len(n.components) }

// IsUniversal reports whether the name is the universal (root) context.
func (n Name) IsUniversal() bool { return len(n.components) == 0 }

// IsInstance reports whether every component carries a concrete value,
// i.e. the name identifies a single business context instance and is
// usable on an access request or in the retained ADI.
func (n Name) IsInstance() bool {
	for _, c := range n.components {
		if c.IsWildcard() {
			return false
		}
	}
	return true
}

// HasPerInstance reports whether any component uses the "!" value.
func (n Name) HasPerInstance() bool {
	for _, c := range n.components {
		if c.Value == PerInstance {
			return true
		}
	}
	return false
}

// Equal reports whether two names have identical components.
func (n Name) Equal(o Name) bool {
	if len(n.components) != len(o.components) {
		return false
	}
	for i, c := range n.components {
		if o.components[i] != c {
			return false
		}
	}
	return true
}

// Key returns a canonical string usable as a map key. It is identical to
// String but documents intent at call sites.
func (n Name) Key() string { return n.String() }

// MarshalText implements encoding.TextMarshaler using the canonical
// string form, so Names embed naturally in JSON/XML payloads.
func (n Name) MarshalText() ([]byte, error) {
	return []byte(n.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler via Parse.
func (n *Name) UnmarshalText(text []byte) error {
	parsed, err := Parse(string(text))
	if err != nil {
		return err
	}
	*n = parsed
	return nil
}

// Parent returns the name with the last component removed. The parent of
// the universal context is the universal context itself.
func (n Name) Parent() Name {
	if len(n.components) == 0 {
		return Universal
	}
	return Name{components: n.components[:len(n.components)-1]}
}

// Child returns the name extended with one more component.
func (n Name) Child(typ, value string) (Name, error) {
	components := append(append([]Component(nil), n.components...), Component{Type: typ, Value: value})
	return NewName(components...)
}

// MustChild is like Child but panics on error.
func (n Name) MustChild(typ, value string) Name {
	c, err := n.Child(typ, value)
	if err != nil {
		panic(err)
	}
	return c
}

// IsAncestorOf reports whether n is a proper ancestor of o in the
// instance hierarchy: n's components are a strict prefix of o's. Only
// concrete component equality is considered; wildcards are not expanded
// (use Matches for policy-context comparison).
func (n Name) IsAncestorOf(o Name) bool {
	if len(n.components) >= len(o.components) {
		return false
	}
	for i, c := range n.components {
		if o.components[i] != c {
			return false
		}
	}
	return true
}

// IsEqualOrSubordinateTo reports whether n equals o or is subordinate to
// (a descendant of) o, comparing concrete components only.
func (n Name) IsEqualOrSubordinateTo(o Name) bool {
	return o.Equal(n) || o.IsAncestorOf(n)
}
