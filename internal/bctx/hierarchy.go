package bctx

import (
	"sort"
	"strings"
	"sync"
)

// Hierarchy tracks the set of business context instances that are
// currently active, arranged under the universal context as in Figure 2
// of the paper. The access control system does not need this knowledge to
// evaluate MSoD policies (the request carries its instance), but the
// hierarchy supports the start/termination inference of §2.2: an
// instance is active from the first time it (or a contained instance) is
// mentioned, until it is explicitly terminated or a containing instance
// terminates.
//
// Hierarchy is safe for concurrent use.
type Hierarchy struct {
	mu     sync.RWMutex
	active map[string]Name
}

// NewHierarchy returns an empty hierarchy.
func NewHierarchy() *Hierarchy {
	return &Hierarchy{active: make(map[string]Name)}
}

// Touch records that an instance (and therefore each of its ancestors)
// is active. It returns the number of newly activated instances.
func (h *Hierarchy) Touch(inst Name) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	added := 0
	for n := inst; ; n = n.Parent() {
		key := n.Key()
		if _, ok := h.active[key]; !ok {
			h.active[key] = n
			added++
		}
		if n.IsUniversal() {
			break
		}
	}
	return added
}

// Active reports whether the given instance is currently active, either
// because it was touched directly or because a contained instance was.
func (h *Hierarchy) Active(inst Name) bool {
	h.mu.RLock()
	defer h.mu.RUnlock()
	_, ok := h.active[inst.Key()]
	return ok
}

// Terminate deactivates an instance and every instance subordinate to
// it, implementing "termination of a containing business context implies
// termination of all the contained ones". It returns the names removed.
func (h *Hierarchy) Terminate(inst Name) []Name {
	h.mu.Lock()
	defer h.mu.Unlock()
	var removed []Name
	for key, n := range h.active {
		if n.IsEqualOrSubordinateTo(inst) && !n.IsUniversal() {
			removed = append(removed, n)
			delete(h.active, key)
		}
	}
	sortNames(removed)
	return removed
}

// Instances returns the active instances sorted by name, the universal
// context first.
func (h *Hierarchy) Instances() []Name {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]Name, 0, len(h.active))
	for _, n := range h.active {
		out = append(out, n)
	}
	sortNames(out)
	return out
}

// Len returns the number of active instances, including the universal
// context once anything has been touched.
func (h *Hierarchy) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.active)
}

// Render draws the active hierarchy as an indented tree rooted at the
// universal context, for diagnostics and for reproducing Figure 2.
func (h *Hierarchy) Render() string {
	instances := h.Instances()
	children := make(map[string][]Name)
	for _, n := range instances {
		if n.IsUniversal() {
			continue
		}
		pk := n.Parent().Key()
		children[pk] = append(children[pk], n)
	}
	for _, c := range children {
		sortNames(c)
	}
	var b strings.Builder
	var walk func(n Name, depth int)
	walk = func(n Name, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		if n.IsUniversal() {
			b.WriteString("(universal)")
		} else {
			comps := n.Components()
			b.WriteString(comps[len(comps)-1].String())
		}
		b.WriteByte('\n')
		for _, c := range children[n.Key()] {
			walk(c, depth+1)
		}
	}
	if len(instances) > 0 {
		walk(Universal, 0)
	}
	return b.String()
}

func sortNames(names []Name) {
	sort.Slice(names, func(i, j int) bool {
		if names[i].Len() != names[j].Len() {
			return names[i].Len() < names[j].Len()
		}
		return names[i].Key() < names[j].Key()
	})
}
