package bctx

import (
	"strings"
	"sync"
	"testing"
)

func TestHierarchyTouchActivatesAncestors(t *testing.T) {
	h := NewHierarchy()
	inst := MustParse("Branch=York, Period=2006")
	if got := h.Touch(inst); got != 3 { // universal, Branch=York, full name
		t.Fatalf("Touch added %d, want 3", got)
	}
	for _, s := range []string{"", "Branch=York", "Branch=York, Period=2006"} {
		if !h.Active(MustParse(s)) {
			t.Errorf("%q not active", s)
		}
	}
	if h.Active(MustParse("Branch=Leeds")) {
		t.Error("Branch=Leeds should not be active")
	}
	// Touching again adds nothing.
	if got := h.Touch(inst); got != 0 {
		t.Errorf("second Touch added %d, want 0", got)
	}
}

func TestHierarchyTerminateSubtree(t *testing.T) {
	h := NewHierarchy()
	h.Touch(MustParse("Branch=York, Period=2006"))
	h.Touch(MustParse("Branch=York, Period=2007"))
	h.Touch(MustParse("Branch=Leeds, Period=2006"))

	removed := h.Terminate(MustParse("Branch=York"))
	if len(removed) != 3 { // Branch=York and both periods
		t.Fatalf("Terminate removed %d instances, want 3: %v", len(removed), removed)
	}
	if h.Active(MustParse("Branch=York")) || h.Active(MustParse("Branch=York, Period=2006")) {
		t.Error("York subtree still active")
	}
	if !h.Active(MustParse("Branch=Leeds")) || !h.Active(MustParse("Branch=Leeds, Period=2006")) {
		t.Error("Leeds subtree should remain active")
	}
	if !h.Active(Universal) {
		t.Error("universal context should never be terminated by a subtree terminate")
	}
}

func TestHierarchyRender(t *testing.T) {
	h := NewHierarchy()
	h.Touch(MustParse("Branch=York, Period=2006"))
	h.Touch(MustParse("Branch=Leeds, Period=2006"))
	got := h.Render()
	want := "(universal)\n" +
		"  Branch=Leeds\n" +
		"    Period=2006\n" +
		"  Branch=York\n" +
		"    Period=2006\n"
	if got != want {
		t.Errorf("Render:\n%s\nwant:\n%s", got, want)
	}
	if !strings.HasPrefix(got, "(universal)") {
		t.Error("render must start at the universal context")
	}
}

func TestHierarchyRenderEmpty(t *testing.T) {
	h := NewHierarchy()
	if got := h.Render(); got != "" {
		t.Errorf("empty hierarchy rendered %q", got)
	}
}

func TestHierarchyConcurrent(t *testing.T) {
	h := NewHierarchy()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			branch := string(rune('A' + i))
			for p := 0; p < 50; p++ {
				inst := MustName(
					Component{Type: "Branch", Value: branch},
					Component{Type: "Period", Value: string(rune('a' + p%26))},
				)
				h.Touch(inst)
				h.Active(inst)
				if p%10 == 9 {
					h.Terminate(inst)
				}
			}
		}(i)
	}
	wg.Wait()
	if h.Len() == 0 {
		t.Error("expected some active instances after concurrent use")
	}
}
