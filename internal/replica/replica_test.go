package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"msod/internal/bctx"
	"msod/internal/inspect"
	"msod/internal/pdp"
	"msod/internal/policy"
	"msod/internal/rbac"
	"msod/internal/server"
)

const replicaPolicyXML = `
<RBACPolicy id="replica-test">
  <RoleList>
    <Role value="Teller"/>
    <Role value="Auditor"/>
    <Role value="RetainedADIController"/>
  </RoleList>
  <TargetAccessPolicy>
    <Grant role="Teller" operation="HandleCash" target="till"/>
    <Grant role="Auditor" operation="Audit" target="ledger"/>
    <Grant role="RetainedADIController" operation="purgeUser" target="msod:retainedADI"/>
  </TargetAccessPolicy>
  <MSoDPolicySet>
    <MSoDPolicy BusinessContext="Branch=*, Period=!">
      <MMER ForbiddenCardinality="2">
        <Role type="e" value="Teller"/>
        <Role type="e" value="Auditor"/>
      </MMER>
    </MSoDPolicy>
  </MSoDPolicySet>
</RBACPolicy>`

func testPolicy(t *testing.T) *policy.RBACPolicy {
	t.Helper()
	pol, err := policy.ParseRBACPolicy([]byte(replicaPolicyXML))
	if err != nil {
		t.Fatal(err)
	}
	return pol
}

// newOwner builds an owning shard the way msodd does: PDP + broker +
// HTTP server with the event stream and replica snapshot enabled.
func newOwner(t *testing.T) (*pdp.PDP, *inspect.Broker, *httptest.Server) {
	t.Helper()
	broker := inspect.NewBroker(64)
	p, err := pdp.New(pdp.Config{
		Policy:   testPolicy(t),
		Observer: func(ev inspect.DecisionEvent) { broker.Publish(ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(p, server.WithEventBroker(broker)))
	t.Cleanup(ts.Close)
	return p, broker, ts
}

func grant(t *testing.T, p *pdp.PDP, user, role, op, target, ctx string) pdp.Decision {
	t.Helper()
	dec, err := p.Decide(pdp.Request{
		User: rbac.UserID(user), Roles: []rbac.RoleName{rbac.RoleName(role)},
		Operation: rbac.Operation(op), Target: rbac.Object(target),
		Context: bctx.MustParse(ctx),
	})
	if err != nil {
		t.Fatal(err)
	}
	return dec
}

// waitConverged blocks until the follower is fresh and caught up with
// the broker's current head.
func waitConverged(t *testing.T, f *Follower, b *inspect.Broker) {
	t.Helper()
	target := b.Seq()
	deadline := time.Now().Add(10 * time.Second)
	for f.Mirror().AppliedSeq() < target || !f.Fresh() {
		if time.Now().After(deadline) {
			t.Fatalf("follower did not converge: applied %d of %d, status %+v",
				f.Mirror().AppliedSeq(), target, f.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMirrorReplaysOwnerHistory: feeding the owner's event stream
// through Apply reproduces the owner's retained ADI exactly — grants
// re-commit, denials are skipped but advance the cursor, and
// management purges replay — so advisory answers agree with the owner.
func TestMirrorReplaysOwnerHistory(t *testing.T) {
	pol := testPolicy(t)
	broker := inspect.NewBroker(64)
	p, err := pdp.New(pdp.Config{
		Policy:   pol,
		Observer: func(ev inspect.DecisionEvent) { broker.Publish(ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	// alice works as Teller (grant), is denied the Auditor switch
	// (MMER), bob audits (grant), then alice's history is purged.
	if dec := grant(t, p, "alice", "Teller", "HandleCash", "till", "Branch=York, Period=2006"); !dec.Allowed {
		t.Fatalf("seed grant denied: %+v", dec)
	}
	if dec := grant(t, p, "alice", "Auditor", "Audit", "ledger", "Branch=York, Period=2006"); dec.Allowed {
		t.Fatalf("MMER violation granted: %+v", dec)
	}
	if dec := grant(t, p, "bob", "Auditor", "Audit", "ledger", "Branch=York, Period=2006"); !dec.Allowed {
		t.Fatalf("bob's audit denied: %+v", dec)
	}
	if _, err := p.Manage(pdp.ManagementRequest{
		User: "root", Roles: []rbac.RoleName{"RetainedADIController"},
		Operation: pdp.OpPurgeUser, TargetUser: "alice",
	}); err != nil {
		t.Fatal(err)
	}

	m, err := NewMirror(pol, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range broker.Recent(inspect.Filter{}, 0) {
		if err := m.Apply(ev); err != nil {
			t.Fatalf("apply seq %d (%s): %v", ev.Seq, ev.Effect, err)
		}
	}
	if m.AppliedSeq() != broker.Seq() {
		t.Errorf("applied seq %d, broker at %d", m.AppliedSeq(), broker.Seq())
	}
	if m.Records() != p.Store().Len() {
		t.Errorf("mirror holds %d records, owner %d", m.Records(), p.Store().Len())
	}
	// Advisory equality after the purge: alice's Teller history is gone,
	// so both the owner and the mirror would now allow her to audit.
	probe := pdp.Request{
		User: "alice", Roles: []rbac.RoleName{"Auditor"},
		Operation: "Audit", Target: "ledger",
		Context: bctx.MustParse("Branch=York, Period=2006"),
	}
	ownerDec, err := p.Advise(probe)
	if err != nil {
		t.Fatal(err)
	}
	mirrorDec, err := m.Advise(probe)
	if err != nil {
		t.Fatal(err)
	}
	if ownerDec.Allowed != mirrorDec.Allowed || !mirrorDec.Allowed {
		t.Errorf("advisory answers diverge after purge replay: owner %v, mirror %v",
			ownerDec.Allowed, mirrorDec.Allowed)
	}
	// And a probe that must deny: bob auditing means bob handling cash
	// violates the MMER, on both sides.
	probe = pdp.Request{
		User: "bob", Roles: []rbac.RoleName{"Teller"},
		Operation: "HandleCash", Target: "till",
		Context: bctx.MustParse("Branch=York, Period=2006"),
	}
	ownerDec, _ = p.Advise(probe)
	mirrorDec, _ = m.Advise(probe)
	if ownerDec.Allowed || mirrorDec.Allowed {
		t.Errorf("near-limit probe: owner allowed=%v mirror allowed=%v, want both denied",
			ownerDec.Allowed, mirrorDec.Allowed)
	}
}

// TestMirrorRefusesDivergentEvents: an event whose echoed effects the
// mirror cannot reproduce is refused with ErrDiverged — the mirror
// never silently absorbs state it cannot verify.
func TestMirrorRefusesDivergentEvents(t *testing.T) {
	pol := testPolicy(t)
	m, err := NewMirror(pol, false)
	if err != nil {
		t.Fatal(err)
	}
	good := inspect.DecisionEvent{
		Seq: 1, Effect: inspect.OutcomeGrant, User: "alice", Roles: []string{"Teller"},
		Operation: "HandleCash", Target: "till", Context: "Branch=York, Period=2006",
		Time: time.Unix(1136160000, 0), Recorded: 1,
	}
	// Tampered echo: the owner claims two records from one grant.
	bad := good
	bad.Recorded = 2
	if err := m.Apply(bad); !errors.Is(err, ErrDiverged) {
		t.Errorf("tampered Recorded echo: err = %v, want ErrDiverged", err)
	}
	// A grant the mirror's policy denies (Auditor after Teller) is a
	// divergence too, not a silent skip.
	if err := m.Apply(good); err != nil {
		t.Fatal(err)
	}
	conflicting := inspect.DecisionEvent{
		Seq: 2, Effect: inspect.OutcomeGrant, User: "alice", Roles: []string{"Auditor"},
		Operation: "Audit", Target: "ledger", Context: "Branch=York, Period=2006",
		Time: time.Unix(1136160001, 0), Recorded: 1,
	}
	if err := m.Apply(conflicting); !errors.Is(err, ErrDiverged) {
		t.Errorf("owner-granted MMER violation: err = %v, want ErrDiverged", err)
	}
	// Unknown effects are divergences, and an already-applied sequence
	// number is an idempotent no-op.
	if err := m.Apply(inspect.DecisionEvent{Seq: 3, Effect: "explode"}); !errors.Is(err, ErrDiverged) {
		t.Error("unknown effect accepted")
	}
	before := m.Records()
	if err := m.Apply(good); err != nil || m.Records() != before {
		t.Errorf("re-applying seq 1: err=%v records %d→%d, want no-op", err, before, m.Records())
	}
}

// TestFollowerConvergesAndAdvises: the follower bootstraps from the
// owner's snapshot, tails new events, and its advisory answers match
// the owner's once the lag drains.
func TestFollowerConvergesAndAdvises(t *testing.T) {
	p, broker, ts := newOwner(t)
	grant(t, p, "alice", "Teller", "HandleCash", "till", "Branch=York, Period=2006")

	f, err := New(Config{
		Owner: ts.URL, Policy: testPolicy(t),
		ReconnectBackoff: 10 * time.Millisecond, ResyncBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = f.Run(ctx) }()
	waitConverged(t, f, broker)
	if got := f.Status().Resyncs; got != 1 {
		t.Errorf("resyncs after bootstrap = %d, want 1", got)
	}

	// New owner decisions stream in and change the mirror's answers.
	grant(t, p, "bob", "Auditor", "Audit", "ledger", "Branch=Leeds, Period=2006")
	waitConverged(t, f, broker)
	probe := pdp.Request{
		User: "alice", Roles: []rbac.RoleName{"Auditor"},
		Operation: "Audit", Target: "ledger",
		Context: bctx.MustParse("Branch=York, Period=2006"),
	}
	ownerDec, err := p.Advise(probe)
	if err != nil {
		t.Fatal(err)
	}
	mirrorDec, err := f.Advise(probe)
	if err != nil {
		t.Fatal(err)
	}
	if ownerDec.Allowed != mirrorDec.Allowed || mirrorDec.Allowed {
		t.Errorf("advisory: owner allowed=%v, replica allowed=%v, want both denied (MMER)",
			ownerDec.Allowed, mirrorDec.Allowed)
	}
	if f.Mirror().Records() != p.Store().Len() {
		t.Errorf("mirror %d records, owner %d", f.Mirror().Records(), p.Store().Len())
	}
}

// TestFollowerStalenessBound: a follower past its staleness bound
// refuses with ErrStale instead of answering from old state, and a
// negative bound disables the check.
func TestFollowerStalenessBound(t *testing.T) {
	p, broker, ts := newOwner(t)
	grant(t, p, "alice", "Teller", "HandleCash", "till", "Branch=York, Period=2006")

	f, err := New(Config{
		Owner: ts.URL, Policy: testPolicy(t), MaxStaleness: time.Nanosecond,
		ReconnectBackoff: 10 * time.Millisecond, ResyncBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = f.Run(ctx) }()
	// Converge on sequence alone — a 1ns bound means Fresh flaps false
	// the instant after contact, which is the point.
	deadline := time.Now().Add(10 * time.Second)
	for f.Mirror().AppliedSeq() < broker.Seq() {
		if time.Now().After(deadline) {
			t.Fatalf("no catch-up: %+v", f.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond) // guarantee >1ns since last contact
	_, err = f.Advise(pdp.Request{
		User: "alice", Roles: []rbac.RoleName{"Teller"},
		Operation: "HandleCash", Target: "till",
		Context: bctx.MustParse("Branch=York, Period=2006"),
	})
	if !errors.Is(err, ErrStale) {
		t.Errorf("stale advise = %v, want ErrStale", err)
	}

	// Unbounded (-1): the same staleness is acceptable by contract.
	f2, err := New(Config{Owner: ts.URL, Policy: testPolicy(t), MaxStaleness: -1,
		ReconnectBackoff: 10 * time.Millisecond, ResyncBackoff: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = f2.Run(ctx) }()
	waitConverged(t, f2, broker)
	time.Sleep(10 * time.Millisecond)
	if !f2.Fresh() {
		t.Error("unbounded follower reports not fresh")
	}
}

// proxy is a kill-switch TCP forwarder between follower and owner, so
// tests can sever and restore the stream without touching either end.
type proxy struct {
	ln     net.Listener
	target string
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	reject atomic.Bool
}

func newProxy(t *testing.T, ownerURL string) *proxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &proxy{
		ln:     ln,
		target: strings.TrimPrefix(ownerURL, "http://"),
		conns:  make(map[net.Conn]struct{}),
	}
	go p.accept()
	t.Cleanup(func() { ln.Close(); p.sever() })
	return p
}

func (p *proxy) URL() string { return "http://" + p.ln.Addr().String() }

func (p *proxy) accept() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		if p.reject.Load() {
			c.Close()
			continue
		}
		up, err := net.Dial("tcp", p.target)
		if err != nil {
			c.Close()
			continue
		}
		p.mu.Lock()
		p.conns[c], p.conns[up] = struct{}{}, struct{}{}
		p.mu.Unlock()
		pipe := func(dst, src net.Conn) {
			_, _ = io.Copy(dst, src)
			dst.Close()
			src.Close()
		}
		go pipe(up, c)
		go pipe(c, up)
	}
}

// sever closes every live connection (and, with reject set, keeps new
// ones from being established).
func (p *proxy) sever() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for c := range p.conns {
		c.Close()
		delete(p.conns, c)
	}
}

// TestFollowerGapForcesResync: while the follower is partitioned, the
// owner's ring rotates past the resume point; on reconnect the 410
// forces a full snapshot resync — never a silent rejoin with a hole.
func TestFollowerGapForcesResync(t *testing.T) {
	pol := testPolicy(t)
	broker := inspect.NewBroker(4) // tiny ring so a short partition gaps
	p, err := pdp.New(pdp.Config{
		Policy:   pol,
		Observer: func(ev inspect.DecisionEvent) { broker.Publish(ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(p, server.WithEventBroker(broker)))
	defer ts.Close()
	px := newProxy(t, ts.URL)

	grant(t, p, "u0", "Teller", "HandleCash", "till", "Branch=York, Period=2006")
	f, err := New(Config{
		Owner: px.URL(), Policy: testPolicy(t),
		ReconnectBackoff: 10 * time.Millisecond, ResyncBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = f.Run(ctx) }()
	waitConverged(t, f, broker)

	// Partition, then publish more events than the ring retains.
	px.reject.Store(true)
	px.sever()
	for i := 1; i <= 8; i++ {
		grant(t, p, fmt.Sprintf("u%d", i), "Teller", "HandleCash", "till", "Branch=York, Period=2006")
	}
	px.reject.Store(false)

	waitConverged(t, f, broker)
	st := f.Status()
	if st.Resyncs < 2 {
		t.Errorf("resyncs = %d, want ≥2 (bootstrap + gap recovery)", st.Resyncs)
	}
	if f.Mirror().Records() != p.Store().Len() {
		t.Errorf("post-gap mirror %d records, owner %d", f.Mirror().Records(), p.Store().Len())
	}
}

// TestFollowerPolicyMismatchIsTerminal: an owner running a different
// policy document cannot be followed — Run returns instead of serving
// answers computed from alien history.
func TestFollowerPolicyMismatchIsTerminal(t *testing.T) {
	_, _, ts := newOwner(t) // owner runs "replica-test"
	otherXML := strings.Replace(replicaPolicyXML, `id="replica-test"`, `id="something-else"`, 1)
	otherPol, err := policy.ParseRBACPolicy([]byte(otherXML))
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(Config{Owner: ts.URL, Policy: otherPol,
		ReconnectBackoff: 10 * time.Millisecond, ResyncBackoff: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	runErr := f.Run(ctx)
	if runErr == nil || ctx.Err() != nil {
		t.Fatalf("Run = %v (ctx %v), want a prompt policy-mismatch error", runErr, ctx.Err())
	}
	if !strings.Contains(runErr.Error(), "policy") {
		t.Errorf("mismatch error = %v", runErr)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Policy: testPolicy(t)}); err == nil {
		t.Error("missing owner accepted")
	}
	if _, err := New(Config{Owner: "http://x"}); err == nil {
		t.Error("missing policy accepted")
	}
}

// TestReplicaServerContract covers the HTTP surface: a syncing replica
// refuses reads with 503, authoritative traffic always gets 421, and a
// fresh replica stamps every answer with its applied seq and lag.
func TestReplicaServerContract(t *testing.T) {
	p, broker, ts := newOwner(t)
	grant(t, p, "alice", "Teller", "HandleCash", "till", "Branch=York, Period=2006")

	f, err := New(Config{Owner: ts.URL, Policy: testPolicy(t),
		ReconnectBackoff: 10 * time.Millisecond, ResyncBackoff: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rs := httptest.NewServer(NewServer(f))
	defer rs.Close()

	adviceBody := func() *bytes.Reader {
		b, _ := json.Marshal(server.DecisionRequest{
			User: "alice", Roles: []string{"Auditor"},
			Operation: "Audit", Target: "ledger",
			Context: "Branch=York, Period=2006",
		})
		return bytes.NewReader(b)
	}

	// Before Run: syncing, so reads refuse 503 and health says so.
	resp, err := http.Post(rs.URL+server.AdvicePath, "application/json", adviceBody())
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("syncing advice status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "" {
		t.Error("stale refusal carries Retry-After; the caller should fail over, not wait")
	}
	var health map[string]string
	hr, err := http.Get(rs.URL + server.HealthPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if health["status"] != "replica-syncing" || health["role"] != "replica" {
		t.Errorf("syncing health = %+v", health)
	}

	// Authoritative traffic is misdirected regardless of freshness.
	for _, path := range []string{server.DecisionPath, server.ManagementPath} {
		resp, err := http.Post(rs.URL+path, "application/json", adviceBody())
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMisdirectedRequest {
			t.Errorf("POST %s = %d, want 421", path, resp.StatusCode)
		}
	}

	// Run and converge: advisory answers flow, stamped with seq and lag.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = f.Run(ctx) }()
	waitConverged(t, f, broker)
	resp, err = http.Post(rs.URL+server.AdvicePath, "application/json", adviceBody())
	if err != nil {
		t.Fatal(err)
	}
	var dec server.DecisionResponse
	if err := json.NewDecoder(resp.Body).Decode(&dec); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || dec.Allowed {
		t.Errorf("advice = %d allowed=%v, want 200 denied (MMER)", resp.StatusCode, dec.Allowed)
	}
	seq, err := strconv.ParseUint(resp.Header.Get(ReplicaSeqHeader), 10, 64)
	if err != nil || seq != broker.Seq() {
		t.Errorf("%s = %q, want broker head %d", ReplicaSeqHeader, resp.Header.Get(ReplicaSeqHeader), broker.Seq())
	}
	if resp.Header.Get(ReplicaLagHeader) == "" {
		t.Errorf("no %s header on a replica answer", ReplicaLagHeader)
	}

	// State reads answer from the mirror, stamped the same way.
	sr, err := http.Get(rs.URL + server.StateUsersPath + "alice")
	if err != nil {
		t.Fatal(err)
	}
	var st inspect.UserState
	if err := json.NewDecoder(sr.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sr.Body.Close()
	if sr.StatusCode != http.StatusOK || len(st.Records) != 1 {
		t.Errorf("replica user state = %d %+v", sr.StatusCode, st)
	}
	if sr.Header.Get(ReplicaSeqHeader) == "" {
		t.Error("state answer missing replica seq stamp")
	}

	// The event stream is not re-served.
	er, err := http.Get(rs.URL + server.EventsPath)
	if err != nil {
		t.Fatal(err)
	}
	er.Body.Close()
	if er.StatusCode != http.StatusNotFound {
		t.Errorf("replica /v1/events = %d, want 404", er.StatusCode)
	}

	// Metric families are all present.
	mr, err := http.Get(rs.URL + server.MetricsPath)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	for _, fam := range []string{
		"msod_replica_lag_seconds", "msod_replica_applied_seq",
		"msod_replica_resyncs_total", "msod_replica_events_applied_total",
		"msod_replica_divergences_total", "msod_replica_syncing",
		"msod_replica_records", "msod_replica_advisories_total",
		"msod_replica_state_queries_total", "msod_replica_stale_refusals_total",
		"msod_replica_authoritative_refusals_total",
	} {
		if !strings.Contains(string(body), fam) {
			t.Errorf("replica metrics missing %s", fam)
		}
	}
}
