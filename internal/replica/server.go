package replica

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"msod/internal/bctx"
	"msod/internal/inspect"
	"msod/internal/obsv"
	"msod/internal/pdp"
	"msod/internal/rbac"
	"msod/internal/server"
)

// Response headers stamping the bounded-staleness contract onto every
// replica answer: the owner sequence number the answer reflects, and
// how long ago the replica last heard from the owner. A consumer that
// needs "no older than X" checks the lag; a consumer comparing answers
// across replicas checks the seq.
const (
	ReplicaSeqHeader = "X-Msod-Replica-Seq"
	ReplicaLagHeader = "X-Msod-Replica-Lag"
)

// Server is the HTTP surface of a replica: the advisory and state
// endpoints of a shard (same paths, same wire shapes, plus the
// staleness stamps), health and metrics, and explicit refusals for
// everything authoritative. It serves the paths a shard serves so
// gateways and clients need no special dialect — but a decision or
// management POST gets 421 Misdirected Request, never an answer: a
// replica holds no authority and a "grant" from one would be a false
// grant.
type Server struct {
	follower  *Follower
	inspector *inspect.Inspector
	mux       *http.ServeMux
	start     time.Time

	advisories            atomic.Int64
	stateQueries          atomic.Int64
	staleRefusals         atomic.Int64
	authoritativeRefusals atomic.Int64
}

// NewServer wraps a follower.
func NewServer(f *Follower) *Server {
	s := &Server{
		follower:  f,
		inspector: inspect.NewInspector(f.Mirror().Engine(), f.Mirror().Browser(), nil),
		mux:       http.NewServeMux(),
		start:     time.Now(),
	}
	s.mux.HandleFunc(server.AdvicePath, s.handleAdvice)
	s.mux.HandleFunc(server.StateUsersPath, s.handleStateUser)
	s.mux.HandleFunc(server.StateContextsPath, s.handleStateContext)
	s.mux.HandleFunc(server.HealthPath, s.handleHealth)
	s.mux.HandleFunc(server.MetricsPath, s.handleMetrics)
	s.mux.HandleFunc(server.DecisionPath, s.refuseAuthoritative)
	s.mux.HandleFunc(server.ManagementPath, s.refuseAuthoritative)
	// Explain records live where the decision executed; a replica never
	// executed one, so it refuses like the other authoritative paths.
	s.mux.HandleFunc(server.ExplainPath, s.refuseAuthoritative)
	// Likewise traces: a replica retains no span trees of its own, and
	// serving an empty 404 would look like rotation rather than the
	// truth — the decision (and its trace) lives on the owner.
	s.mux.HandleFunc(server.TracesPath, s.refuseAuthoritative)
	// The resharding handoff surface is authoritative by nature: an
	// import into (or a release from) a replica would fork the
	// retained-ADI history off the owner's. 421, same as decisions.
	s.mux.HandleFunc(server.HandoffUsersPath, s.refuseAuthoritative)
	s.mux.HandleFunc(server.HandoffImportPath, s.refuseAuthoritative)
	s.mux.HandleFunc(server.HandoffReleasePath, s.refuseAuthoritative)
	s.mux.HandleFunc(server.EventsPath, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusNotFound, map[string]string{
			"error": "replicas do not re-serve the event stream; subscribe to the owner at " + s.follower.Owner(),
		})
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// stamp writes the staleness-contract headers for the current state.
func (s *Server) stamp(w http.ResponseWriter) {
	st := s.follower.Status()
	w.Header().Set(ReplicaSeqHeader, strconv.FormatUint(st.AppliedSeq, 10))
	w.Header().Set(ReplicaLagHeader, st.Staleness.Round(time.Millisecond).String())
}

// refuseStale answers true after writing the 503 when the replica
// cannot prove freshness. Unlike a shed 503 there is no Retry-After:
// the caller should fail over to the owner now, not wait.
func (s *Server) refuseStale(w http.ResponseWriter) bool {
	if s.follower.Fresh() {
		return false
	}
	s.staleRefusals.Add(1)
	s.stamp(w)
	st := s.follower.Status()
	msg := fmt.Sprintf("replica stale: last owner contact %s ago exceeds the %s bound; ask the owner at %s",
		st.Staleness.Round(time.Millisecond), s.follower.MaxStaleness(), s.follower.Owner())
	if st.Syncing {
		msg = "replica resyncing from the owner; ask the owner at " + s.follower.Owner()
	}
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": msg})
	return true
}

// refuseAuthoritative rejects decision/management traffic outright.
func (s *Server) refuseAuthoritative(w http.ResponseWriter, r *http.Request) {
	s.authoritativeRefusals.Add(1)
	writeJSON(w, http.StatusMisdirectedRequest, map[string]string{
		"error": "replicas never serve authoritative decisions or management; ask the owner at " + s.follower.Owner(),
	})
}

func (s *Server) handleAdvice(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "POST required"})
		return
	}
	if s.refuseStale(w) {
		return
	}
	var wire server.DecisionRequest
	if err := json.NewDecoder(r.Body).Decode(&wire); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("decode: %v", err)})
		return
	}
	ctxName, err := bctx.Parse(wire.Context)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("context: %v", err)})
		return
	}
	roles := make([]rbac.RoleName, len(wire.Roles))
	for i, rr := range wire.Roles {
		roles[i] = rbac.RoleName(rr)
	}
	traceID, ok := obsv.ParseTraceparent(r.Header.Get(obsv.TraceparentHeader))
	if !ok {
		traceID = obsv.NewTraceID()
	}
	dec, err := s.follower.Advise(pdp.Request{
		Credentials: wire.Credentials,
		User:        rbac.UserID(wire.User),
		Roles:       roles,
		Operation:   rbac.Operation(wire.Operation),
		Target:      rbac.Object(wire.Target),
		Context:     ctxName,
		Environment: wire.Environment,
	})
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case isStale(err):
			s.staleRefusals.Add(1)
			status = http.StatusServiceUnavailable
		case isNoSubject(err):
			status = http.StatusBadRequest
		}
		s.stamp(w)
		writeJSON(w, status, map[string]string{"error": err.Error()})
		return
	}
	s.advisories.Add(1)
	resp := server.DecisionResponse{
		Allowed: dec.Allowed,
		Phase:   string(dec.Phase),
		Reason:  dec.Reason,
		User:    string(dec.User),
		Roles:   make([]string, len(dec.Roles)),
		TraceID: string(traceID),
	}
	for i, rr := range dec.Roles {
		resp.Roles[i] = string(rr)
	}
	if dec.MSoD != nil {
		resp.Recorded = dec.MSoD.Recorded
		resp.Purged = dec.MSoD.Purged
		resp.MatchedPolicies = dec.MSoD.MatchedPolicies
	}
	s.stamp(w)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStateUser(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "GET required"})
		return
	}
	if s.refuseStale(w) {
		return
	}
	user := strings.TrimPrefix(r.URL.Path, server.StateUsersPath)
	if user == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "user ID required: GET " + server.StateUsersPath + "{user}"})
		return
	}
	s.stateQueries.Add(1)
	s.stamp(w)
	writeJSON(w, http.StatusOK, s.inspector.UserState(rbac.UserID(user)))
}

func (s *Server) handleStateContext(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "GET required"})
		return
	}
	if s.refuseStale(w) {
		return
	}
	raw := strings.TrimPrefix(r.URL.Path, server.StateContextsPath)
	if raw == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "context pattern required: GET " + server.StateContextsPath + "{bc}"})
		return
	}
	pattern, err := bctx.Parse(raw)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("context: %v", err)})
		return
	}
	s.stateQueries.Add(1)
	s.stamp(w)
	writeJSON(w, http.StatusOK, s.inspector.ContextState(pattern))
}

// handleHealth reports the replica role explicitly so load balancers
// and the gateway never mistake a replica for an owner: status is
// "replica" when serving, "replica-syncing" / "replica-stale" when
// refusing.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	st := s.follower.Status()
	status := "replica"
	switch {
	case st.Syncing:
		status = "replica-syncing"
	case !s.follower.Fresh():
		status = "replica-stale"
	}
	s.stamp(w)
	writeJSON(w, http.StatusOK, map[string]string{
		"status":     status,
		"role":       "replica",
		"policy":     s.follower.Mirror().PolicyID(),
		"owner":      s.follower.Owner(),
		"appliedSeq": strconv.FormatUint(st.AppliedSeq, 10),
		"staleness":  st.Staleness.Round(time.Millisecond).String(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.follower.Status()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	obsv.WriteGauge(w, "msod_replica_lag_seconds",
		"Seconds since the replica last heard from its owner (staleness bound input).",
		st.Staleness.Seconds())
	obsv.WriteGauge(w, "msod_replica_applied_seq",
		"Owner broker sequence number the mirror has applied through.",
		float64(st.AppliedSeq))
	obsv.WriteCounter(w, "msod_replica_resyncs_total",
		"Full state resyncs (bootstrap, stream gap, detected divergence).",
		st.Resyncs)
	obsv.WriteCounter(w, "msod_replica_events_applied_total",
		"Owner decision events applied to the mirror.",
		st.Applied)
	obsv.WriteCounter(w, "msod_replica_divergences_total",
		"Apply-time divergences detected (the mirror refused the event and resynced).",
		st.Divergences)
	obsv.WriteGauge(w, "msod_replica_syncing",
		"1 while a full resync is pending or in progress (the replica refuses answers).",
		boolGauge(st.Syncing))
	obsv.WriteGauge(w, "msod_replica_records",
		"Retained-ADI records held by the mirror.",
		float64(st.Records))
	obsv.WriteCounter(w, "msod_replica_advisories_total",
		"Advisory decisions served from the mirror.",
		s.advisories.Load())
	obsv.WriteCounter(w, "msod_replica_state_queries_total",
		"State introspection answers served from the mirror.",
		s.stateQueries.Load())
	obsv.WriteCounter(w, "msod_replica_stale_refusals_total",
		"Answers refused because freshness could not be proven (stale or resyncing).",
		s.staleRefusals.Load())
	obsv.WriteCounter(w, "msod_replica_authoritative_refusals_total",
		"Decision/management requests refused — replicas never serve authority.",
		s.authoritativeRefusals.Load())
	s.follower.applyHist.Write(w, "msod_replica_apply_seconds",
		"Mirror event-apply latency (the replica-side analogue of the owner's store stage).")
	obsv.WriteBuildInfo(w, "msod-replica")
	obsv.WriteUptime(w, s.start)
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func isStale(err error) bool { return errors.Is(err, ErrStale) }

func isNoSubject(err error) bool { return errors.Is(err, pdp.ErrNoSubject) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
