package replica

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"

	"msod/internal/inspect"
	"msod/internal/obsv"
	"msod/internal/pdp"
	"msod/internal/policy"
	"msod/internal/server"
)

// ErrStale reports that the replica cannot prove its answer is within
// the staleness bound — it is resyncing, or it has not heard from the
// owner (events, keep-alives, connections all count as contact) within
// MaxStaleness. The contract is "refuse rather than answer stale": the
// caller should ask the owner. Test with errors.Is.
var ErrStale = errors.New("replica: staleness bound exceeded; ask the owner")

// Defaults for Config zero values.
const (
	// DefaultMaxStaleness must exceed the owner's SSE keep-alive
	// interval (15s), or an idle but perfectly healthy replica would
	// flap stale between heartbeats.
	DefaultMaxStaleness     = 30 * time.Second
	DefaultReconnectBackoff = 500 * time.Millisecond
	DefaultResyncBackoff    = time.Second
)

// Config assembles a Follower.
type Config struct {
	// Owner is the base URL of the owning shard (a msodd instance with
	// the event broker enabled). Required. Note it is one shard, not a
	// gateway: the gateway's fan-in event stream has no total order
	// across shards, so it cannot feed a mirror.
	Owner string
	// Policy is the parsed policy, which must be the same document the
	// owner runs. Required.
	Policy *policy.RBACPolicy
	// HierarchyAwareMSoD mirrors the owner's setting.
	HierarchyAwareMSoD bool
	// MaxStaleness bounds how long since last owner contact the
	// replica keeps answering (default DefaultMaxStaleness; negative
	// disables the bound — not recommended outside tests).
	MaxStaleness time.Duration
	// ReconnectBackoff paces stream reconnects (default 500ms).
	ReconnectBackoff time.Duration
	// ResyncBackoff paces retries after a failed resync (default 1s).
	ResyncBackoff time.Duration
	// HTTPClient overrides the transport (default http.DefaultClient).
	HTTPClient *http.Client
	// SnapshotTimeout bounds the snapshot fetch (default 1m).
	SnapshotTimeout time.Duration
	// Logger, when non-nil, receives follower lifecycle events
	// (resyncs, gaps, divergences).
	Logger *slog.Logger
}

// Follower keeps a Mirror converged with its owner: bootstrap from a
// snapshot, then follow the event stream with sequence resume. Any
// loss of continuity — a stream gap past the owner's ring, a detected
// divergence, an owner restart — forces a full resync before the
// replica serves again.
type Follower struct {
	cfg    Config
	mirror *Mirror
	client *server.Client
	log    *slog.Logger

	// syncing is true from the moment continuity is lost until the
	// next resync completes; the replica refuses to serve while set.
	syncing atomic.Bool
	// lastContact is the wall time (UnixNano) of the last sign of life
	// from the owner; staleness is measured from it.
	lastContact atomic.Int64

	resyncs     atomic.Int64
	applied     atomic.Int64
	divergences atomic.Int64

	// applyHist times each mirror event-apply (the replica-side
	// analogue of the owner's store stage), with the owner's trace ID
	// as exemplar — so a latency spike here points straight at a
	// retained trace on the owner via msodctl trace.
	applyHist *obsv.Histogram
}

// Status is a consistent-enough snapshot of follower state for health
// answers and metrics.
type Status struct {
	// Syncing is true while a full resync is pending or in progress.
	Syncing bool
	// AppliedSeq is the owner sequence number applied through.
	AppliedSeq uint64
	// Staleness is the time since last owner contact.
	Staleness time.Duration
	// Records is the mirror's retained record count.
	Records int
	// Resyncs counts full state resyncs (including the bootstrap one).
	Resyncs int64
	// Applied counts events applied to the mirror.
	Applied int64
	// Divergences counts apply-time divergences detected.
	Divergences int64
}

// New builds a follower. Call Run to start it; the replica refuses all
// answers until the first resync completes.
func New(cfg Config) (*Follower, error) {
	if cfg.Owner == "" {
		return nil, errors.New("replica: config: owner URL required")
	}
	if cfg.Policy == nil {
		return nil, errors.New("replica: config: policy required")
	}
	if cfg.MaxStaleness == 0 {
		cfg.MaxStaleness = DefaultMaxStaleness
	}
	if cfg.ReconnectBackoff <= 0 {
		cfg.ReconnectBackoff = DefaultReconnectBackoff
	}
	if cfg.ResyncBackoff <= 0 {
		cfg.ResyncBackoff = DefaultResyncBackoff
	}
	if cfg.SnapshotTimeout <= 0 {
		cfg.SnapshotTimeout = time.Minute
	}
	mirror, err := NewMirror(cfg.Policy, cfg.HierarchyAwareMSoD)
	if err != nil {
		return nil, err
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(discardHandler{})
	}
	f := &Follower{
		cfg:       cfg,
		mirror:    mirror,
		client:    server.NewClient(cfg.Owner, cfg.HTTPClient, server.WithTimeout(cfg.SnapshotTimeout)),
		log:       log,
		applyHist: obsv.NewHistogram(obsv.DefaultDurationBuckets),
	}
	f.syncing.Store(true)
	return f, nil
}

// Mirror exposes the follower's mirror (advisory surface, browsing).
func (f *Follower) Mirror() *Mirror { return f.mirror }

// Owner returns the owner's base URL.
func (f *Follower) Owner() string { return f.cfg.Owner }

// MaxStaleness returns the effective staleness bound (zero or negative
// means unbounded).
func (f *Follower) MaxStaleness() time.Duration { return f.cfg.MaxStaleness }

// Status reports follower state.
func (f *Follower) Status() Status {
	return Status{
		Syncing:     f.syncing.Load(),
		AppliedSeq:  f.mirror.AppliedSeq(),
		Staleness:   f.staleness(),
		Records:     f.mirror.Records(),
		Resyncs:     f.resyncs.Load(),
		Applied:     f.applied.Load(),
		Divergences: f.divergences.Load(),
	}
}

func (f *Follower) staleness() time.Duration {
	last := f.lastContact.Load()
	if last == 0 {
		// Never heard from the owner.
		return time.Duration(1<<63 - 1)
	}
	return time.Since(time.Unix(0, last))
}

// Fresh reports whether the replica may answer under the staleness
// contract: synced, and within the bound.
func (f *Follower) Fresh() bool {
	if f.syncing.Load() {
		return false
	}
	if f.cfg.MaxStaleness < 0 {
		return true
	}
	return f.staleness() <= f.cfg.MaxStaleness
}

// Advise answers a side-effect-free advisory decision from the mirror,
// refusing with ErrStale when freshness cannot be proven. On success
// the decision is exactly what the owner's advisory path would answer
// at the applied sequence number.
func (f *Follower) Advise(req pdp.Request) (pdp.Decision, error) {
	if !f.Fresh() {
		st := f.Status()
		if st.Syncing {
			return pdp.Decision{}, fmt.Errorf("%w: resync in progress", ErrStale)
		}
		return pdp.Decision{}, fmt.Errorf("%w: last owner contact %s ago exceeds the %s bound",
			ErrStale, st.Staleness.Round(time.Millisecond), f.cfg.MaxStaleness)
	}
	return f.mirror.Advise(req)
}

// touch records a sign of life from the owner.
func (f *Follower) touch() {
	f.lastContact.Store(time.Now().UnixNano())
}

// Run drives the resync-then-follow loop until the context is
// cancelled. It returns ctx.Err() on cancellation, or a terminal error
// when the owner is fundamentally incompatible (different policy ID).
func (f *Follower) Run(ctx context.Context) error {
	for ctx.Err() == nil {
		if err := f.resync(ctx); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			var mismatch *policyMismatchError
			if errors.As(err, &mismatch) {
				// Retrying cannot help: same URL, wrong policy. Serving
				// would answer from alien history.
				return err
			}
			f.log.Warn("replica resync failed; retrying", "owner", f.cfg.Owner, "error", err)
			if !sleepContext(ctx, f.cfg.ResyncBackoff) {
				return ctx.Err()
			}
			continue
		}
		err := f.follow(ctx)
		switch {
		case ctx.Err() != nil:
			return ctx.Err()
		case errors.Is(err, server.ErrEventGap):
			// Events rotated past the resume point (or the owner
			// restarted): the mirror has a hole it cannot stream over.
			f.syncing.Store(true)
			f.log.Warn("replica stream gap; forcing full resync", "owner", f.cfg.Owner, "appliedSeq", f.mirror.AppliedSeq())
		case errors.Is(err, ErrDiverged):
			f.syncing.Store(true)
			f.divergences.Add(1)
			f.log.Error("replica mirror diverged; forcing full resync", "owner", f.cfg.Owner, "error", err)
		default:
			// A deliberate refusal that reconnecting inside the stream
			// could not heal (e.g. events disabled); resyncing retries
			// from scratch after a pause.
			f.syncing.Store(true)
			f.log.Warn("replica stream ended; resyncing", "owner", f.cfg.Owner, "error", err)
			if !sleepContext(ctx, f.cfg.ResyncBackoff) {
				return ctx.Err()
			}
		}
	}
	return ctx.Err()
}

// policyMismatchError is terminal: the owner runs a different policy.
type policyMismatchError struct{ owner, mine string }

func (e *policyMismatchError) Error() string {
	return fmt.Sprintf("replica: owner runs policy %q, replica compiled %q; refusing to follow", e.owner, e.mine)
}

// resync rebuilds the mirror from a fresh owner snapshot.
func (f *Follower) resync(ctx context.Context) error {
	f.syncing.Store(true)
	snap, err := f.client.ReplicaSnapshot(ctx)
	if err != nil {
		return fmt.Errorf("replica: snapshot: %w", err)
	}
	if snap.Policy != f.mirror.PolicyID() {
		return &policyMismatchError{owner: snap.Policy, mine: f.mirror.PolicyID()}
	}
	if err := f.mirror.Reset(snap); err != nil {
		return err
	}
	f.resyncs.Add(1)
	f.touch()
	f.syncing.Store(false)
	f.log.Info("replica resynced", "owner", f.cfg.Owner, "seq", snap.Seq, "records", len(snap.Records))
	return nil
}

// follow tails the owner's event stream with sequence resume, applying
// each event to the mirror. It returns on context cancellation, a
// stream gap, a detected divergence, or a permanent stream refusal —
// transient transport failures are reconnected internally by
// FollowEvents.
func (f *Follower) follow(ctx context.Context) error {
	return f.client.FollowEvents(ctx, server.FollowEventsOptions{
		Resume:           true,
		ResumeAfter:      f.mirror.AppliedSeq(),
		ReconnectBackoff: f.cfg.ReconnectBackoff,
		OnHeartbeat:      f.touch,
	}, func(ev inspect.DecisionEvent) error {
		start := time.Now()
		if err := f.mirror.Apply(ev); err != nil {
			return err
		}
		// The owner's trace ID rides along as exemplar: a slow apply
		// on a replica points straight at the owner's retained trace.
		f.applyHist.ObserveExemplar(time.Since(start), ev.TraceID)
		f.applied.Add(1)
		f.touch()
		return nil
	})
}

// sleepContext waits d or until the context ends, reporting whether the
// full wait elapsed.
func sleepContext(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// discardHandler is a no-op slog handler for followers without a
// logger.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }
