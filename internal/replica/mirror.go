// Package replica implements the advisory read-replica tier: a
// follower subscribes to an owning shard's decision event stream,
// applies the events to a read-only retained-ADI mirror, and serves
// the advisory surface (near-limit probes, /v1/state introspection)
// under an explicit bounded-staleness contract. Authoritative
// decisions stay single-writer on the owner; every replica answer is
// stamped with the applied broker sequence number and lag, and a
// replica that cannot prove freshness refuses — failing toward "ask
// the owner" — rather than answering stale.
package replica

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"msod/internal/adi"
	"msod/internal/bctx"
	"msod/internal/core"
	"msod/internal/inspect"
	"msod/internal/pdp"
	"msod/internal/policy"
	"msod/internal/rbac"
	"msod/internal/server"
)

// ErrDiverged reports that applying an event produced different
// retained-ADI effects than the owner recorded for it. The mirror's
// state can no longer be trusted and must be rebuilt from a snapshot;
// the follower does exactly that. Test with errors.Is.
var ErrDiverged = errors.New("replica: mirror diverged from owner")

// Mirror is a local retained-ADI copy maintained by deterministic
// replay: grant events are re-evaluated through an engine compiled
// from the same policy, with the clock pinned to each event's
// timestamp, so the mirror commits exactly the records the owner did —
// and proves it by comparing its recorded/purged counts against the
// owner's echoes in every event. Denials never mutate and are skipped;
// management purges arrive as their own events.
//
// The mirror is the advisory decision surface too: Advise answers
// "would the owner grant this?" from local state with zero side
// effects.
type Mirror struct {
	pdp   *pdp.PDP
	store *adi.Store

	// mu serialises Apply and Reset; reads (Advise, browsing) go
	// through the store's own locks and may interleave.
	mu sync.Mutex
	// applyTime pins the engine clock to the event being applied, so
	// replayed records carry the owner's timestamps, not replay time.
	applyTime  atomic.Pointer[time.Time]
	appliedSeq atomic.Uint64
}

// NewMirror compiles the policy into a fresh mirror. The policy (and
// hierarchyAware, mirroring the owner's -hierarchy-msod setting) must
// match the owner's: same events through a different policy is a
// different history.
func NewMirror(pol *policy.RBACPolicy, hierarchyAware bool) (*Mirror, error) {
	m := &Mirror{store: adi.NewStore()}
	p, err := pdp.New(pdp.Config{
		Policy:             pol,
		Store:              m.store,
		Clock:              m.clock,
		HierarchyAwareMSoD: hierarchyAware,
	})
	if err != nil {
		return nil, err
	}
	m.pdp = p
	return m, nil
}

// clock is the mirror PDP's time source: the event timestamp during
// replay, wall time otherwise (advisory evaluations never commit, so
// wall time is only cosmetic there).
func (m *Mirror) clock() time.Time {
	if t := m.applyTime.Load(); t != nil {
		return *t
	}
	return time.Now()
}

// PolicyID returns the compiled policy's identifier.
func (m *Mirror) PolicyID() string { return m.pdp.PolicyID() }

// AppliedSeq returns the owner sequence number the mirror has applied
// through.
func (m *Mirror) AppliedSeq() uint64 { return m.appliedSeq.Load() }

// Records returns the mirror's retained record count.
func (m *Mirror) Records() int { return m.store.Len() }

// Browser exposes the mirror's read-only browse surface for state
// introspection.
func (m *Mirror) Browser() adi.Browser { return m.store }

// Engine exposes the mirror's MSoD engine (for the inspector's
// near-limit computation).
func (m *Mirror) Engine() *core.Engine { return m.pdp.Engine() }

// Advise answers a side-effect-free advisory decision from mirror
// state. Freshness is the caller's concern (see Follower.Advise).
func (m *Mirror) Advise(req pdp.Request) (pdp.Decision, error) {
	return m.pdp.Advise(req)
}

// Apply replays one owner event into the mirror. Events must arrive in
// sequence order with no holes (the resumable stream guarantees it).
// An ErrDiverged return means the mirror refused the event because its
// effects did not match the owner's echoes; the mirror must be Reset
// from a fresh snapshot.
func (m *Mirror) Apply(ev inspect.DecisionEvent) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ev.Seq != 0 && ev.Seq <= m.appliedSeq.Load() {
		// Already applied (an overlapping replay); skipping is safe
		// because application is deterministic.
		return nil
	}
	var err error
	switch ev.Effect {
	case inspect.OutcomeDeny:
		// Denials never touch the retained ADI.
	case inspect.OutcomeGrant:
		err = m.applyGrant(ev)
	case inspect.OutcomePurge:
		err = m.applyPurge(ev)
	default:
		err = fmt.Errorf("%w: unknown effect %q at seq %d", ErrDiverged, ev.Effect, ev.Seq)
	}
	if err != nil {
		return err
	}
	if ev.Seq != 0 {
		m.appliedSeq.Store(ev.Seq)
	}
	return nil
}

func (m *Mirror) applyGrant(ev inspect.DecisionEvent) error {
	ctxName, err := bctx.Parse(ev.Context)
	if err != nil {
		return fmt.Errorf("%w: seq %d has unparseable context %q: %v", ErrDiverged, ev.Seq, ev.Context, err)
	}
	t := ev.Time
	m.applyTime.Store(&t)
	defer m.applyTime.Store((*time.Time)(nil))
	roles := make([]rbac.RoleName, len(ev.Roles))
	for i, r := range ev.Roles {
		roles[i] = rbac.RoleName(r)
	}
	dec, err := m.pdp.Engine().Evaluate(core.Request{
		User:      rbac.UserID(ev.User),
		Roles:     roles,
		Operation: rbac.Operation(ev.Operation),
		Target:    rbac.Object(ev.Target),
		Context:   ctxName,
	})
	if err != nil {
		return fmt.Errorf("replica: apply seq %d: %w", ev.Seq, err)
	}
	if dec.Effect != core.Grant {
		return fmt.Errorf("%w: owner granted seq %d (%s on %s by %s in %q) but the mirror denies: %v",
			ErrDiverged, ev.Seq, ev.Operation, ev.Target, ev.User, ev.Context, dec.Denial)
	}
	if dec.Recorded != ev.Recorded || dec.Purged != ev.Purged {
		return fmt.Errorf("%w: seq %d effects differ: owner recorded=%d purged=%d, mirror recorded=%d purged=%d",
			ErrDiverged, ev.Seq, ev.Recorded, ev.Purged, dec.Recorded, dec.Purged)
	}
	return nil
}

func (m *Mirror) applyPurge(ev inspect.DecisionEvent) error {
	var n int
	switch rbac.Operation(ev.Operation) {
	case pdp.OpPurgeContext:
		pattern, err := bctx.Parse(ev.Context)
		if err != nil {
			return fmt.Errorf("%w: purge seq %d has unparseable pattern %q: %v", ErrDiverged, ev.Seq, ev.Context, err)
		}
		n, err = m.store.PurgeContext(pattern)
		if err != nil {
			return fmt.Errorf("replica: apply purge seq %d: %w", ev.Seq, err)
		}
	case pdp.OpPurgeUser:
		n = m.store.PurgeUser(rbac.UserID(ev.User))
	case pdp.OpPurgeBefore:
		if ev.Before == nil {
			return fmt.Errorf("%w: purgeBefore event seq %d carries no cutoff", ErrDiverged, ev.Seq)
		}
		n = m.store.PurgeBefore(*ev.Before)
	default:
		return fmt.Errorf("%w: unknown purge operation %q at seq %d", ErrDiverged, ev.Operation, ev.Seq)
	}
	if n != ev.Purged {
		return fmt.Errorf("%w: purge seq %d removed %d records on the mirror, %d on the owner",
			ErrDiverged, ev.Seq, n, ev.Purged)
	}
	return nil
}

// Reset replaces the mirror's state with a snapshot: the store is
// reloaded from the dump and the applied sequence jumps to the
// snapshot's. Readers may observe the brief empty window; the follower
// marks itself syncing (and therefore refuses to serve) around Reset.
func (m *Mirror) Reset(snap server.ReplicaSnapshot) error {
	recs := make([]adi.Record, 0, len(snap.Records))
	for _, sr := range snap.Records {
		rec, err := sr.ADIRecord()
		if err != nil {
			return fmt.Errorf("replica: snapshot record context %q: %w", sr.Context, err)
		}
		recs = append(recs, rec)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.store.Reset()
	if len(recs) > 0 {
		if err := m.store.Append(recs...); err != nil {
			return fmt.Errorf("replica: load snapshot: %w", err)
		}
	}
	m.appliedSeq.Store(snap.Seq)
	return nil
}
