package adi

import (
	"strings"
	"testing"
	"time"

	"msod/internal/bctx"
	"msod/internal/rbac"
)

// TestDurableStoreSatisfiesEngineQueries exercises the read-side
// Recorder delegation of DurableStore through realistic query mixes,
// and checks All() ordering matches the in-memory store's contract.
func TestDurableStoreSatisfiesEngineQueries(t *testing.T) {
	dir := t.TempDir()
	ds := openDurable(t, dir)

	perm := rbac.Permission{Operation: "approve", Object: "check"}
	if err := ds.Append(
		rec("bob", "Auditor", "approve", "check", "P=1"),
		rec("alice", "Teller", "approve", "check", "P=1"),
		rec("alice", "Teller", "approve", "check", "P=2"),
	); err != nil {
		t.Fatal(err)
	}

	p1 := bctx.MustParse("P=1")
	if ok, err := ds.UserHasPrivilege("alice", p1, perm); err != nil || !ok {
		t.Errorf("UserHasPrivilege = %v, %v", ok, err)
	}
	if n, err := ds.CountUserRole("alice", bctx.Universal, "Teller", 0); err != nil || n != 2 {
		t.Errorf("CountUserRole = %d, %v", n, err)
	}
	if n, err := ds.CountUserPrivilege("alice", p1, perm, 0); err != nil || n != 1 {
		t.Errorf("CountUserPrivilege = %d, %v", n, err)
	}
	if ok, err := ds.ContextActive(bctx.MustParse("P=*")); err != nil || !ok {
		t.Errorf("ContextActive = %v, %v", ok, err)
	}
	all := ds.All()
	if len(all) != 3 || all[0].User != "alice" || all[2].User != "bob" {
		t.Errorf("All = %v", all)
	}
	// Record rendering helpers.
	if got := all[0].Privilege(); got != perm {
		t.Errorf("Privilege = %v", got)
	}
	if s := all[0].String(); !strings.Contains(s, "alice") || !strings.Contains(s, "approve") {
		t.Errorf("String = %q", s)
	}
}

// TestDurableCompactAfterPurge: compaction of a store whose WAL contains
// purges yields a snapshot equal to the live state.
func TestDurableCompactAfterPurge(t *testing.T) {
	dir := t.TempDir()
	ds := openDurable(t, dir)
	if err := ds.Append(
		rec("a", "R", "op", "t", "P=1"),
		rec("b", "R", "op", "t", "P=2"),
	); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.PurgeContext(bctx.MustParse("P=1")); err != nil {
		t.Fatal(err)
	}
	if err := ds.Compact(); err != nil {
		t.Fatal(err)
	}
	ds.Close()
	ds2 := openDurable(t, dir)
	if ds2.Len() != 1 {
		t.Fatalf("recovered %d records after compact-with-purge", ds2.Len())
	}
	ok, _ := ds2.UserHasRole("b", bctx.Universal, "R")
	if !ok {
		t.Error("survivor record lost")
	}
}

// TestDurableDoubleClose: Close is idempotent.
func TestDurableDoubleClose(t *testing.T) {
	ds, err := OpenDurable(t.TempDir(), []byte("k"), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestDurableTimestampsPreserved: WAL round trips record times.
func TestDurableTimestampsPreserved(t *testing.T) {
	dir := t.TempDir()
	when := time.Date(2006, 3, 14, 15, 9, 26, 0, time.UTC)
	ds := openDurable(t, dir)
	if err := ds.Append(Record{
		User: "u", Roles: []rbac.RoleName{"R"}, Operation: "op", Target: "t",
		Context: bctx.MustParse("P=1"), Time: when,
	}); err != nil {
		t.Fatal(err)
	}
	ds.Close()
	ds2 := openDurable(t, dir)
	all := ds2.All()
	if len(all) != 1 || !all[0].Time.Equal(when) {
		t.Fatalf("All = %v", all)
	}
}
