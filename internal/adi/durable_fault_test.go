package adi

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"msod/internal/bctx"
	"msod/internal/fault"
	"msod/internal/fsx"
)

// openDurableFS opens a store over a fault filesystem with sync-every-
// write on, so each Append is write-op + sync-op.
func openDurableFS(t *testing.T, dir string, fs fsx.FS) (*DurableStore, error) {
	t.Helper()
	return OpenDurableFS(dir, []byte("durable-secret"), true, fs)
}

// TestDurableENoSpaceMidAppend injects disk-full in the middle of a WAL
// append and checks the two halves of the fail-closed contract: the
// failed mutation is not visible in the acknowledged (in-memory) state,
// and the store reopens cleanly over whatever torn bytes reached the
// disk — with no partial mutation surfacing after recovery.
func TestDurableENoSpaceMidAppend(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		dir := t.TempDir()
		ffs := fault.NewFS(fsx.OS, seed)
		ds, err := openDurableFS(t, dir, ffs)
		if err != nil {
			t.Fatalf("seed %d: open: %v", seed, err)
		}
		if err := ds.Append(rec("alice", "Teller", "op", "t", "Branch=York, Period=2006")); err != nil {
			t.Fatalf("seed %d: first append: %v", seed, err)
		}
		// Arm disk-full at the next mutating op — the WAL write of the
		// second append.
		ffs.InjectAt(ffs.Ops()+1, fault.ENoSpace)
		err = ds.Append(rec("bob", "Auditor", "op", "t", "Branch=Leeds, Period=2006"))
		if err == nil {
			t.Fatalf("seed %d: append succeeded despite ENOSPC", seed)
		}
		if !errors.Is(err, ErrWriteFailed) {
			t.Fatalf("seed %d: err = %v, want ErrWriteFailed", seed, err)
		}
		if !errors.Is(err, fault.ErrNoSpace) {
			t.Fatalf("seed %d: err = %v, want to carry ErrNoSpace", seed, err)
		}
		// The refused mutation must not be acknowledged in memory.
		if ds.Len() != 1 {
			t.Fatalf("seed %d: len after failed append = %d, want 1", seed, ds.Len())
		}
		ds.Close()

		// Reopen over the real surviving bytes. A torn final record is
		// truncated away; a whole record that happened to land is fine —
		// in both cases the store is consistent and appendable.
		ds2, err := OpenDurable(dir, []byte("durable-secret"), true)
		if err != nil {
			t.Fatalf("seed %d: reopen after ENOSPC: %v", seed, err)
		}
		if n := ds2.Len(); n != 1 && n != 2 {
			t.Fatalf("seed %d: recovered %d records, want 1 or 2", seed, n)
		}
		ok, err := ds2.UserHasRole("alice", bctx.MustParse("Branch=York, Period=2006"), "Teller")
		if err != nil || !ok {
			t.Fatalf("seed %d: acknowledged record lost: ok=%v err=%v", seed, ok, err)
		}
		if err := ds2.Append(rec("carol", "Clerk", "op", "t", "Branch=Hull, Period=2006")); err != nil {
			t.Fatalf("seed %d: append after recovery: %v", seed, err)
		}
		ds2.Close()
	}
}

// TestDurableEIOMidAppendNothingLeaks injects a hard EIO on the WAL
// write: nothing reaches the disk and nothing reaches memory.
func TestDurableEIOMidAppend(t *testing.T) {
	dir := t.TempDir()
	ffs := fault.NewFS(fsx.OS, 4)
	ds, err := openDurableFS(t, dir, ffs)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Append(rec("alice", "Teller", "op", "t", "Branch=York, Period=2006")); err != nil {
		t.Fatal(err)
	}
	ffs.InjectAt(ffs.Ops()+1, fault.EIO)
	err = ds.Append(rec("bob", "Auditor", "op", "t", "Branch=Leeds, Period=2006"))
	if !errors.Is(err, ErrWriteFailed) || !errors.Is(err, fault.ErrEIO) {
		t.Fatalf("err = %v, want ErrWriteFailed wrapping ErrEIO", err)
	}
	if ds.Len() != 1 {
		t.Fatalf("len = %d after refused append", ds.Len())
	}
	ds.Close()
	ds2, err := OpenDurable(dir, []byte("durable-secret"), true)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if ds2.Len() != 1 {
		t.Fatalf("recovered %d records, want exactly 1", ds2.Len())
	}
	ds2.Close()
}

// TestDurableFailedFsyncRefusesWrite checks the sync-every-write
// contract: if the fsync fails, the append is refused even though the
// bytes reached the OS.
func TestDurableFailedFsyncRefusesWrite(t *testing.T) {
	dir := t.TempDir()
	ffs := fault.NewFS(fsx.OS, 6)
	ds, err := openDurableFS(t, dir, ffs)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Append(rec("alice", "Teller", "op", "t", "Branch=York, Period=2006")); err != nil {
		t.Fatal(err)
	}
	// Next append: op+1 is the WAL write, op+2 the fsync.
	ffs.InjectAt(ffs.Ops()+2, fault.SyncFail)
	err = ds.Append(rec("bob", "Auditor", "op", "t", "Branch=Leeds, Period=2006"))
	if !errors.Is(err, ErrWriteFailed) {
		t.Fatalf("err = %v, want ErrWriteFailed on failed fsync", err)
	}
	if ds.Len() != 1 {
		t.Fatalf("len = %d after refused append", ds.Len())
	}
	ds.Close()
}

// TestDurableTornFinalRecordResumed writes a torn final WAL record the
// way a crash would (a prefix of a sealed line, no trailing newline)
// and checks recovery truncates it and the store resumes appending —
// the WAL analogue of the audit trail's ErrTruncated repair.
func TestDurableTornFinalRecordResumed(t *testing.T) {
	dir := t.TempDir()
	ds, err := OpenDurable(dir, []byte("durable-secret"), true)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Append(rec("alice", "Teller", "op", "t", "Branch=York, Period=2006")); err != nil {
		t.Fatal(err)
	}
	if err := ds.Append(rec("bob", "Auditor", "op", "t", "Branch=Leeds, Period=2006")); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	walPath := filepath.Join(dir, durableWALName)
	wal, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	before, _ := os.Stat(walPath)
	// Tear: append the first half of the first record without a newline.
	half := wal[:len(wal)/4]
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(half); err != nil {
		t.Fatal(err)
	}
	f.Close()

	ds2, err := OpenDurable(dir, []byte("durable-secret"), true)
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	if ds2.Len() != 2 {
		t.Fatalf("recovered %d records, want 2", ds2.Len())
	}
	// The torn bytes are gone from the disk.
	after, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != before.Size() {
		t.Fatalf("wal size %d after repair, want %d", after.Size(), before.Size())
	}
	// And the store resumes normally.
	if err := ds2.Append(rec("carol", "Clerk", "op", "t", "Branch=Hull, Period=2006")); err != nil {
		t.Fatalf("append after torn-tail repair: %v", err)
	}
	ds2.Close()
	ds3, err := OpenDurable(dir, []byte("durable-secret"), true)
	if err != nil {
		t.Fatal(err)
	}
	if ds3.Len() != 3 {
		t.Fatalf("final recovery %d records, want 3", ds3.Len())
	}
	ds3.Close()
}

// TestSecureStoreSaveSurvivesCrashAfterDirSync drives the satellite
// fix: with the temp file fsynced before rename and the directory
// fsynced after, a simulated power loss immediately after Save never
// loses or tears the snapshot.
func TestSecureStoreSaveSurvivesCrash(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		dir := t.TempDir()
		path := filepath.Join(dir, "snap.sealed")
		ffs := fault.NewFS(fsx.OS, seed)
		ss, err := NewSecureStoreFS(path, []byte("s3cret"), ffs)
		if err != nil {
			t.Fatal(err)
		}
		recs := []Record{
			rec("alice", "Teller", "op", "t", "Branch=York, Period=2006"),
			rec("bob", "Auditor", "op", "t", "Branch=Leeds, Period=2006"),
		}
		if err := ss.Save(recs); err != nil {
			t.Fatalf("seed %d: save: %v", seed, err)
		}
		ffs.CrashNow()

		// Reopen over the survivors with the real filesystem.
		ss2, err := NewSecureStore(path, []byte("s3cret"))
		if err != nil {
			t.Fatal(err)
		}
		got, err := ss2.Load()
		if err != nil {
			t.Fatalf("seed %d: snapshot torn after crash: %v", seed, err)
		}
		if len(got) != len(recs) {
			t.Fatalf("seed %d: %d records after crash, want %d", seed, len(got), len(recs))
		}
	}
}
