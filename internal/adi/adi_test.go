package adi

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"msod/internal/bctx"
	"msod/internal/rbac"
)

func rec(user, roles, op, target, ctx string) Record {
	var rs []rbac.RoleName
	if roles != "" {
		rs = []rbac.RoleName{rbac.RoleName(roles)}
	}
	return Record{
		User:      rbac.UserID(user),
		Roles:     rs,
		Operation: rbac.Operation(op),
		Target:    rbac.Object(target),
		Context:   bctx.MustParse(ctx),
		Time:      time.Date(2006, 7, 1, 12, 0, 0, 0, time.UTC),
	}
}

// stores returns both Recorder implementations so every behavioural test
// runs against each.
func stores() map[string]Recorder {
	return map[string]Recorder{
		"indexed": NewStore(),
		"linear":  NewLinearStore(),
	}
}

func TestRecordValidate(t *testing.T) {
	if err := rec("u", "Teller", "op", "t", "Branch=York").Validate(); err != nil {
		t.Errorf("valid record rejected: %v", err)
	}
	bad := rec("", "Teller", "op", "t", "Branch=York")
	if err := bad.Validate(); err == nil {
		t.Error("empty user accepted")
	}
	wild := rec("u", "Teller", "op", "t", "Branch=*")
	if err := wild.Validate(); err == nil {
		t.Error("wildcard context accepted")
	}
}

func TestAppendAndQuery(t *testing.T) {
	for name, s := range stores() {
		t.Run(name, func(t *testing.T) {
			if err := s.Append(
				rec("alice", "Teller", "HandleCash", "till", "Branch=York, Period=2006"),
				rec("bob", "Auditor", "Audit", "ledger", "Branch=Leeds, Period=2006"),
			); err != nil {
				t.Fatal(err)
			}
			if s.Len() != 2 {
				t.Fatalf("Len = %d", s.Len())
			}
			pattern := bctx.MustParse("Branch=*, Period=2006")
			ok, err := s.UserHasRole("alice", pattern, "Teller")
			if err != nil || !ok {
				t.Errorf("alice Teller in pattern: %v %v", ok, err)
			}
			ok, _ = s.UserHasRole("alice", pattern, "Auditor")
			if ok {
				t.Error("alice should not have Auditor history")
			}
			ok, _ = s.UserHasRole("bob", pattern, "Auditor")
			if !ok {
				t.Error("bob Auditor history missing")
			}
			// Pattern restricted to one branch excludes the other.
			york := bctx.MustParse("Branch=York, Period=2006")
			ok, _ = s.UserHasRole("bob", york, "Auditor")
			if ok {
				t.Error("bob's Leeds record matched a York pattern")
			}
			ok, _ = s.UserHasPrivilege("alice", pattern, rbac.Permission{Operation: "HandleCash", Object: "till"})
			if !ok {
				t.Error("alice privilege history missing")
			}
			ok, _ = s.UserHasPrivilege("alice", pattern, rbac.Permission{Operation: "HandleCash", Object: "other"})
			if ok {
				t.Error("privilege matched wrong target")
			}
		})
	}
}

func TestCountsAndContextActive(t *testing.T) {
	for name, s := range stores() {
		t.Run(name, func(t *testing.T) {
			if ok, _ := s.ContextActive(bctx.Universal); ok {
				t.Error("empty store reports active context")
			}
			if err := s.Append(
				rec("alice", "Teller", "approve", "check", "P=1"),
				rec("alice", "Teller", "approve", "check", "P=1"),
				rec("alice", "Teller", "approve", "check", "P=2"),
			); err != nil {
				t.Fatal(err)
			}
			p1 := bctx.MustParse("P=1")
			perm := rbac.Permission{Operation: "approve", Object: "check"}
			if n, _ := s.CountUserPrivilege("alice", p1, perm, 0); n != 2 {
				t.Errorf("CountUserPrivilege uncapped = %d, want 2", n)
			}
			if n, _ := s.CountUserPrivilege("alice", p1, perm, 1); n != 1 {
				t.Errorf("CountUserPrivilege capped = %d, want 1", n)
			}
			if n, _ := s.CountUserRole("alice", bctx.Universal, "Teller", 0); n != 3 {
				t.Errorf("CountUserRole = %d, want 3", n)
			}
			if n, _ := s.CountUserRole("bob", bctx.Universal, "Teller", 0); n != 0 {
				t.Errorf("CountUserRole other user = %d", n)
			}
			if ok, _ := s.ContextActive(p1); !ok {
				t.Error("P=1 should be active")
			}
			if ok, _ := s.ContextActive(bctx.MustParse("P=3")); ok {
				t.Error("P=3 should not be active")
			}
			if ok, _ := s.ContextActive(bctx.MustParse("P=*")); !ok {
				t.Error("P=* should match active instances")
			}
			if _, err := s.PurgeContext(p1); err != nil {
				t.Fatal(err)
			}
			if ok, _ := s.ContextActive(p1); ok {
				t.Error("P=1 still active after purge")
			}
			if ok, _ := s.ContextActive(bctx.MustParse("P=2")); !ok {
				t.Error("P=2 should survive the purge")
			}
		})
	}
}

func TestStoreContextIndexAfterUserPurges(t *testing.T) {
	s := NewStore()
	if err := s.Append(
		rec("alice", "R", "op", "t", "P=1"),
		rec("bob", "R", "op", "t", "P=1"),
	); err != nil {
		t.Fatal(err)
	}
	s.PurgeUser("alice")
	if ok, _ := s.ContextActive(bctx.MustParse("P=1")); !ok {
		t.Error("P=1 should remain active while bob's record exists")
	}
	s.PurgeUser("bob")
	if ok, _ := s.ContextActive(bctx.MustParse("P=1")); ok {
		t.Error("P=1 should be inactive after both purges")
	}
}

func TestAppendAtomicOnInvalid(t *testing.T) {
	for name, s := range stores() {
		t.Run(name, func(t *testing.T) {
			err := s.Append(
				rec("alice", "Teller", "op", "t", "Branch=York"),
				rec("", "Teller", "op", "t", "Branch=York"), // invalid
			)
			if err == nil {
				t.Fatal("expected validation error")
			}
			if s.Len() != 0 {
				t.Errorf("partial append: Len = %d", s.Len())
			}
		})
	}
}

func TestPurgeContextSubtree(t *testing.T) {
	for name, s := range stores() {
		t.Run(name, func(t *testing.T) {
			if err := s.Append(
				rec("alice", "Teller", "op", "t", "Branch=York, Period=2006"),
				rec("alice", "Teller", "op", "t", "Branch=York, Period=2006, Till=4"),
				rec("alice", "Teller", "op", "t", "Branch=York, Period=2007"),
				rec("bob", "Auditor", "op", "t", "Branch=Leeds, Period=2006"),
			); err != nil {
				t.Fatal(err)
			}
			// Purge the 2006 period across all branches — the Example 1
			// CommitAudit semantics with policy context "Branch=*, Period=2006".
			n, err := s.PurgeContext(bctx.MustParse("Branch=*, Period=2006"))
			if err != nil {
				t.Fatal(err)
			}
			if n != 3 {
				t.Fatalf("purged %d, want 3", n)
			}
			if s.Len() != 1 {
				t.Errorf("Len after purge = %d", s.Len())
			}
			ok, _ := s.UserHasRole("alice", bctx.Universal, "Teller")
			if !ok {
				t.Error("2007 record should survive")
			}
			ok, _ = s.UserHasRole("bob", bctx.Universal, "Auditor")
			if ok {
				t.Error("bob's 2006 record should be purged")
			}
		})
	}
}

func TestRolesSliceIsCopied(t *testing.T) {
	s := NewStore()
	roles := []rbac.RoleName{"Teller"}
	r := Record{User: "u", Roles: roles, Operation: "op", Target: "t",
		Context: bctx.MustParse("A=1"), Time: time.Now()}
	if err := s.Append(r); err != nil {
		t.Fatal(err)
	}
	roles[0] = "Auditor" // mutate caller's slice
	ok, _ := s.UserHasRole("u", bctx.Universal, "Teller")
	if !ok {
		t.Error("store shared the caller's roles slice")
	}
}

func TestPurgeUserAndBefore(t *testing.T) {
	s := NewStore()
	old := Record{User: "alice", Roles: []rbac.RoleName{"Teller"}, Operation: "op", Target: "t",
		Context: bctx.MustParse("A=1"), Time: time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC)}
	newer := Record{User: "alice", Roles: []rbac.RoleName{"Teller"}, Operation: "op", Target: "t",
		Context: bctx.MustParse("A=2"), Time: time.Date(2007, 1, 1, 0, 0, 0, 0, time.UTC)}
	bobs := Record{User: "bob", Roles: []rbac.RoleName{"Auditor"}, Operation: "op", Target: "t",
		Context: bctx.MustParse("A=1"), Time: time.Date(2005, 6, 1, 0, 0, 0, 0, time.UTC)}
	if err := s.Append(old, newer, bobs); err != nil {
		t.Fatal(err)
	}
	if n := s.PurgeBefore(time.Date(2006, 1, 1, 0, 0, 0, 0, time.UTC)); n != 2 {
		t.Errorf("PurgeBefore removed %d, want 2", n)
	}
	if s.Len() != 1 || s.Users() != 1 {
		t.Errorf("Len=%d Users=%d after PurgeBefore", s.Len(), s.Users())
	}
	if n := s.PurgeUser("alice"); n != 1 {
		t.Errorf("PurgeUser removed %d, want 1", n)
	}
	if s.Len() != 0 {
		t.Errorf("Len=%d after PurgeUser", s.Len())
	}
}

func TestUserRecordsAndAll(t *testing.T) {
	s := NewStore()
	if err := s.Append(
		rec("bob", "Auditor", "op1", "t", "A=1"),
		rec("alice", "Teller", "op2", "t", "A=1"),
		rec("alice", "Teller", "op3", "t", "A=2"),
	); err != nil {
		t.Fatal(err)
	}
	got := s.UserRecords("alice", bctx.MustParse("A=1"))
	if len(got) != 1 || got[0].Operation != "op2" {
		t.Errorf("UserRecords = %v", got)
	}
	all := s.All()
	if len(all) != 3 {
		t.Fatalf("All = %d records", len(all))
	}
	// Sorted by user: alice's two records first.
	if all[0].User != "alice" || all[2].User != "bob" {
		t.Errorf("All not ordered by user: %v", all)
	}
	s.Reset()
	if s.Len() != 0 || len(s.All()) != 0 {
		t.Error("Reset did not clear the store")
	}
}

func TestConcurrentStore(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			user := fmt.Sprintf("user%d", g)
			for i := 0; i < 100; i++ {
				ctx := fmt.Sprintf("A=%d", i%5)
				if err := s.Append(rec(user, "R", "op", "t", ctx)); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.UserHasRole(rbac.UserID(user), bctx.Universal, "R"); err != nil {
					t.Error(err)
					return
				}
				if i%20 == 19 {
					if _, err := s.PurgeContext(bctx.MustParse("A=0")); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() == 0 {
		t.Error("expected surviving records")
	}
}

// Property: the indexed store and the linear store answer every query
// identically under random workloads (the E4 ablation must differ only
// in speed).
func TestQuickStoreEquivalence(t *testing.T) {
	users := []string{"u0", "u1", "u2"}
	ctxs := []string{"A=1", "A=2", "A=1, B=x", "A=1, B=y"}
	patterns := []string{"", "A=1", "A=*", "A=1, B=*", "A=2"}
	roles := []string{"R0", "R1"}

	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		idx, lin := NewStore(), NewLinearStore()
		for i := 0; i < int(n); i++ {
			switch r.Intn(4) {
			case 0, 1: // append
				rc := rec(users[r.Intn(len(users))], roles[r.Intn(len(roles))],
					fmt.Sprintf("op%d", r.Intn(3)), "t", ctxs[r.Intn(len(ctxs))])
				if idx.Append(rc) != nil || lin.Append(rc) != nil {
					return false
				}
			case 2: // purge
				p := bctx.MustParse(patterns[r.Intn(len(patterns))])
				n1, e1 := idx.PurgeContext(p)
				n2, e2 := lin.PurgeContext(p)
				if e1 != nil || e2 != nil || n1 != n2 {
					return false
				}
			case 3: // query
				u := rbac.UserID(users[r.Intn(len(users))])
				p := bctx.MustParse(patterns[r.Intn(len(patterns))])
				role := rbac.RoleName(roles[r.Intn(len(roles))])
				a1, e1 := idx.UserHasRole(u, p, role)
				a2, e2 := lin.UserHasRole(u, p, role)
				if e1 != nil || e2 != nil || a1 != a2 {
					return false
				}
				perm := rbac.Permission{Operation: rbac.Operation(fmt.Sprintf("op%d", r.Intn(3))), Object: "t"}
				b1, e1 := idx.UserHasPrivilege(u, p, perm)
				b2, e2 := lin.UserHasPrivilege(u, p, perm)
				if e1 != nil || e2 != nil || b1 != b2 {
					return false
				}
				c1, e1 := idx.CountUserRole(u, p, role, 0)
				c2, e2 := lin.CountUserRole(u, p, role, 0)
				if e1 != nil || e2 != nil || c1 != c2 {
					return false
				}
				d1, e1 := idx.CountUserPrivilege(u, p, perm, 2)
				d2, e2 := lin.CountUserPrivilege(u, p, perm, 2)
				if e1 != nil || e2 != nil || d1 != d2 {
					return false
				}
				x1, e1 := idx.ContextActive(p)
				x2, e2 := lin.ContextActive(p)
				if e1 != nil || e2 != nil || x1 != x2 {
					return false
				}
			}
			if idx.Len() != lin.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
