package adi

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"msod/internal/bctx"
	"msod/internal/rbac"
)

func TestShardedBasic(t *testing.T) {
	s := NewShardedStore(4)
	if err := s.Append(
		rec("alice", "Teller", "op", "t", "P=1"),
		rec("bob", "Auditor", "op", "t", "P=2"),
		rec("carol", "Teller", "op", "t", "P=1"),
	); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	ok, _ := s.UserHasRole("alice", bctx.MustParse("P=1"), "Teller")
	if !ok {
		t.Error("alice query failed")
	}
	ok, _ = s.ContextActive(bctx.MustParse("P=2"))
	if !ok {
		t.Error("P=2 should be active")
	}
	n, err := s.PurgeContext(bctx.MustParse("P=1"))
	if err != nil || n != 2 {
		t.Fatalf("purge = %d, %v", n, err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len after purge = %d", s.Len())
	}
	if got := s.PurgeUser("bob"); got != 1 {
		t.Errorf("PurgeUser = %d", got)
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestShardedAllOrderedByUser(t *testing.T) {
	s := NewShardedStore(8)
	users := []string{"zoe", "alice", "bob", "zoe", "alice"}
	for i, u := range users {
		if err := s.Append(rec(u, "R", fmt.Sprintf("op%d", i), "t", "P=1")); err != nil {
			t.Fatal(err)
		}
	}
	all := s.All()
	if len(all) != 5 {
		t.Fatalf("All = %d", len(all))
	}
	// Ordered by user; per-user insertion order preserved.
	wantUsers := []rbac.UserID{"alice", "alice", "bob", "zoe", "zoe"}
	for i, w := range wantUsers {
		if all[i].User != w {
			t.Fatalf("All[%d].User = %s, want %s (%v)", i, all[i].User, w, all)
		}
	}
	if all[0].Operation != "op1" || all[1].Operation != "op4" {
		t.Errorf("alice's insertion order lost: %v", all[:2])
	}
}

func TestShardedNormalisation(t *testing.T) {
	s := NewShardedStore(0)
	if len(s.shards) != 1 {
		t.Errorf("shards = %d", len(s.shards))
	}
}

// Property: sharded store and plain store answer identically under the
// same operation stream.
func TestQuickShardedEquivalence(t *testing.T) {
	users := []string{"u0", "u1", "u2", "u3"}
	ctxs := []string{"A=1", "A=2", "A=1, B=x"}
	patterns := []string{"", "A=1", "A=*"}

	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		sh, plain := NewShardedStore(3), NewStore()
		for i := 0; i < int(n); i++ {
			switch r.Intn(4) {
			case 0, 1:
				rc := rec(users[r.Intn(len(users))], "R", "op", "t", ctxs[r.Intn(len(ctxs))])
				if sh.Append(rc) != nil || plain.Append(rc) != nil {
					return false
				}
			case 2:
				p := bctx.MustParse(patterns[r.Intn(len(patterns))])
				n1, e1 := sh.PurgeContext(p)
				n2, e2 := plain.PurgeContext(p)
				if e1 != nil || e2 != nil || n1 != n2 {
					return false
				}
			case 3:
				u := rbac.UserID(users[r.Intn(len(users))])
				p := bctx.MustParse(patterns[r.Intn(len(patterns))])
				a1, _ := sh.UserHasRole(u, p, "R")
				a2, _ := plain.UserHasRole(u, p, "R")
				if a1 != a2 {
					return false
				}
				c1, _ := sh.ContextActive(p)
				c2, _ := plain.ContextActive(p)
				if c1 != c2 {
					return false
				}
			}
			if sh.Len() != plain.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestShardedConcurrent(t *testing.T) {
	s := NewShardedStore(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			user := fmt.Sprintf("user%d", g)
			for i := 0; i < 200; i++ {
				if err := s.Append(rec(user, "R", "op", "t", fmt.Sprintf("A=%d", i%4))); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.CountUserRole(rbac.UserID(user), bctx.Universal, "R", 0); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 8*200 {
		t.Errorf("Len = %d", s.Len())
	}
}
