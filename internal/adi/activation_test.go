package adi

import (
	"testing"
	"time"

	"msod/internal/bctx"
)

func TestEnsureActiveIdempotent(t *testing.T) {
	store := NewStore()
	now := time.Now()
	p1 := bctx.MustParse("Proc=p1")
	p2 := bctx.MustParse("Proc=p2")

	added, err := EnsureActive(store, now, p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	if added != 2 {
		t.Fatalf("added = %d, want 2 markers", added)
	}
	for _, b := range []bctx.Name{p1, p2} {
		if active, _ := store.ContextActive(b); !active {
			t.Fatalf("%s not active after EnsureActive", b)
		}
	}

	// Replays and overlapping fan-outs must not pile up markers.
	added, err = EnsureActive(store, now, p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	if added != 0 {
		t.Fatalf("second EnsureActive added %d, want 0", added)
	}
	if got := store.Len(); got != 2 {
		t.Fatalf("store holds %d records, want exactly 2 markers", got)
	}
}

func TestEnsureActiveSkipsContextsWithRealHistory(t *testing.T) {
	store := NewStore()
	bound := bctx.MustParse("Proc=p1")
	if err := store.Append(Record{
		User: "alice", Operation: "prepare", Target: "claim",
		Context: bound, Time: time.Now(),
	}); err != nil {
		t.Fatal(err)
	}
	added, err := EnsureActive(store, time.Now(), bound)
	if err != nil {
		t.Fatal(err)
	}
	if added != 0 {
		t.Fatalf("added = %d, want 0: real history already activates the instance", added)
	}
}

func TestActivationMarkerPurgedWithContext(t *testing.T) {
	store := NewStore()
	bound := bctx.MustParse("Proc=p1")
	if _, err := EnsureActive(store, time.Now(), bound); err != nil {
		t.Fatal(err)
	}
	if _, err := store.PurgeContext(bctx.MustParse("Proc=*")); err != nil {
		t.Fatal(err)
	}
	if active, _ := store.ContextActive(bound); active {
		t.Fatal("marker survived the administrative context purge")
	}
}
