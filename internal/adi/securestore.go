package adi

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"msod/internal/fsx"
)

// SecureStore persists retained-ADI snapshots to an AES-256-GCM
// encrypted, integrity-protected file. It plays the role of the "secure
// relational database" the paper proposes as its next implementation
// (§6): instead of replaying audit trails at start-up, the PDP loads one
// sealed snapshot. Experiment E5 compares the two recovery paths.
type SecureStore struct {
	path string
	aead cipher.AEAD
	fs   fsx.FS
}

// wireRecord is the serialised form of a Record; the business context is
// carried as its canonical string.
type wireRecord struct {
	User      string    `json:"user"`
	Roles     []string  `json:"roles,omitempty"`
	Operation string    `json:"op"`
	Target    string    `json:"target"`
	Context   string    `json:"ctx"`
	Time      time.Time `json:"time"`
}

// snapshot is the serialised file payload.
type snapshot struct {
	Version int          `json:"version"`
	Saved   time.Time    `json:"saved"`
	Records []wireRecord `json:"records"`
}

const snapshotVersion = 1

// NewSecureStore creates a store writing to path, deriving an AES-256
// key from the given secret via SHA-256. The secret plays the role of
// the PDP's storage credential; key management proper is outside the
// paper's scope.
func NewSecureStore(path string, secret []byte) (*SecureStore, error) {
	return NewSecureStoreFS(path, secret, fsx.OS)
}

// NewSecureStoreFS is NewSecureStore over an injected filesystem, so
// fault-injection tests can fail or tear the snapshot's writes.
func NewSecureStoreFS(path string, secret []byte, fs fsx.FS) (*SecureStore, error) {
	if len(secret) == 0 {
		return nil, fmt.Errorf("adi: empty secure store secret")
	}
	key := sha256.Sum256(secret)
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("adi: cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("adi: gcm: %w", err)
	}
	return &SecureStore{path: path, aead: aead, fs: fs}, nil
}

// Save seals the given records into the snapshot file, replacing any
// previous snapshot atomically: write to a temp file, fsync it, rename
// over the target, then fsync the parent directory. Without the two
// fsyncs a power failure can leave the "atomic" snapshot torn (temp
// content not on disk at rename) or lost (directory entry not on
// disk).
func (ss *SecureStore) Save(recs []Record) error {
	//msod:ignore clockuse snapshot-file Saved stamp is operator metadata; record timestamps inside are preserved verbatim
	snap := snapshot{Version: snapshotVersion, Saved: time.Now().UTC(), Records: make([]wireRecord, len(recs))}
	for i, r := range recs {
		snap.Records[i] = toWire(r)
	}
	plain, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("adi: marshal snapshot: %w", err)
	}
	nonce := make([]byte, ss.aead.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return fmt.Errorf("adi: nonce: %w", err)
	}
	sealed := ss.aead.Seal(nonce, nonce, plain, nil)
	tmp := ss.path + ".tmp"
	f, err := ss.fs.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o600)
	if err != nil {
		return fmt.Errorf("adi: create snapshot temp: %w", err)
	}
	if _, err := f.Write(sealed); err != nil {
		f.Close()
		return fmt.Errorf("adi: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("adi: sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("adi: close snapshot temp: %w", err)
	}
	if err := ss.fs.Rename(tmp, ss.path); err != nil {
		return fmt.Errorf("adi: install snapshot: %w", err)
	}
	if err := syncDir(ss.fs, filepath.Dir(ss.path)); err != nil {
		return fmt.Errorf("adi: sync snapshot dir: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so a just-completed rename inside it is
// durable.
func syncDir(fs fsx.FS, dir string) error {
	d, err := fs.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}

// Load opens and verifies the snapshot file and returns its records. A
// missing file yields an empty slice and no error; a tampered or
// wrongly-keyed file yields an error.
func (ss *SecureStore) Load() ([]Record, error) {
	sealed, err := ss.fs.ReadFile(ss.path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("adi: read snapshot: %w", err)
	}
	if len(sealed) < ss.aead.NonceSize() {
		return nil, fmt.Errorf("adi: snapshot truncated")
	}
	nonce, body := sealed[:ss.aead.NonceSize()], sealed[ss.aead.NonceSize():]
	plain, err := ss.aead.Open(nil, nonce, body, nil)
	if err != nil {
		return nil, fmt.Errorf("adi: snapshot authentication failed: %w", err)
	}
	var snap snapshot
	if err := json.Unmarshal(plain, &snap); err != nil {
		return nil, fmt.Errorf("adi: unmarshal snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("adi: unsupported snapshot version %d", snap.Version)
	}
	recs := make([]Record, len(snap.Records))
	for i, w := range snap.Records {
		r, err := fromWire(w)
		if err != nil {
			return nil, fmt.Errorf("adi: snapshot record %d: %w", i, err)
		}
		recs[i] = r
	}
	return recs, nil
}

// LoadInto restores the snapshot's records into the given store,
// returning how many were loaded.
func (ss *SecureStore) LoadInto(dst Recorder) (int, error) {
	recs, err := ss.Load()
	if err != nil {
		return 0, err
	}
	if len(recs) == 0 {
		return 0, nil
	}
	if err := dst.Append(recs...); err != nil {
		return 0, err
	}
	return len(recs), nil
}
