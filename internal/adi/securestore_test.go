package adi

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"msod/internal/bctx"
	"msod/internal/rbac"
)

func TestSecureStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "adi.sealed")
	ss, err := NewSecureStore(path, []byte("test-secret"))
	if err != nil {
		t.Fatal(err)
	}
	in := []Record{
		{
			User:      "alice",
			Roles:     []rbac.RoleName{"Teller", "Clerk"},
			Operation: "HandleCash",
			Target:    "till",
			Context:   bctx.MustParse("Branch=York, Period=2006"),
			Time:      time.Date(2006, 7, 1, 10, 0, 0, 0, time.UTC),
		},
		{
			User:      "bob",
			Operation: "Audit",
			Target:    "ledger",
			Context:   bctx.MustParse("Branch=Leeds, Period=2006"),
			Time:      time.Date(2006, 8, 1, 10, 0, 0, 0, time.UTC),
		},
	}
	if err := ss.Save(in); err != nil {
		t.Fatal(err)
	}
	out, err := ss.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("loaded %d records", len(out))
	}
	if out[0].User != "alice" || len(out[0].Roles) != 2 || out[0].Roles[1] != "Clerk" {
		t.Errorf("record 0 = %+v", out[0])
	}
	if !out[0].Context.Equal(in[0].Context) || !out[0].Time.Equal(in[0].Time) {
		t.Errorf("record 0 context/time mismatch: %+v", out[0])
	}
	if out[1].User != "bob" || len(out[1].Roles) != 0 {
		t.Errorf("record 1 = %+v", out[1])
	}
}

func TestSecureStoreMissingFile(t *testing.T) {
	ss, err := NewSecureStore(filepath.Join(t.TempDir(), "absent"), []byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := ss.Load()
	if err != nil || recs != nil {
		t.Errorf("Load missing = %v, %v", recs, err)
	}
}

func TestSecureStoreTamperDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "adi.sealed")
	ss, err := NewSecureStore(path, []byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	if err := ss.Save([]Record{{User: "u", Operation: "op", Target: "t",
		Context: bctx.MustParse("A=1"), Time: time.Now()}}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := ss.Load(); err == nil {
		t.Error("tampered snapshot loaded without error")
	}
}

func TestSecureStoreWrongKey(t *testing.T) {
	path := filepath.Join(t.TempDir(), "adi.sealed")
	ss1, _ := NewSecureStore(path, []byte("key-one"))
	if err := ss1.Save(nil); err != nil {
		t.Fatal(err)
	}
	ss2, _ := NewSecureStore(path, []byte("key-two"))
	if _, err := ss2.Load(); err == nil {
		t.Error("snapshot opened with wrong key")
	}
}

func TestSecureStoreEmptySecret(t *testing.T) {
	if _, err := NewSecureStore("x", nil); err == nil {
		t.Error("empty secret accepted")
	}
}

func TestSecureStoreLoadInto(t *testing.T) {
	path := filepath.Join(t.TempDir(), "adi.sealed")
	ss, _ := NewSecureStore(path, []byte("k"))
	src := NewStore()
	if err := src.Append(
		rec("alice", "Teller", "op", "t", "A=1"),
		rec("bob", "Auditor", "op", "t", "A=2"),
	); err != nil {
		t.Fatal(err)
	}
	if err := ss.Save(src.All()); err != nil {
		t.Fatal(err)
	}
	dst := NewStore()
	n, err := ss.LoadInto(dst)
	if err != nil || n != 2 {
		t.Fatalf("LoadInto = %d, %v", n, err)
	}
	ok, _ := dst.UserHasRole("alice", bctx.Universal, "Teller")
	if !ok {
		t.Error("restored store missing alice's record")
	}
}
