package adi

import (
	"hash/fnv"
	"sort"
	"time"

	"msod/internal/bctx"
	"msod/internal/rbac"
)

// ShardedStore partitions the retained ADI across n independent Store
// shards by user ID, the storage-side companion of the engine's lock
// striping (core.WithStriping): per-user queries and appends touch only
// one shard's lock, so decisions for different users do not contend.
// Cross-user operations (ContextActive, PurgeContext) fan out over all
// shards.
//
// ShardedStore is safe for concurrent use. The paper's semantics are
// unaffected — every Recorder query is per-user except context
// activity, which is a monotone bit per instance within a purge-free
// window (see core.WithStriping for the serialisability argument).
type ShardedStore struct {
	shards []*Store
}

var _ Recorder = (*ShardedStore)(nil)

// NewShardedStore returns a store with n shards (minimum 1).
func NewShardedStore(n int) *ShardedStore {
	if n < 1 {
		n = 1
	}
	s := &ShardedStore{shards: make([]*Store, n)}
	for i := range s.shards {
		s.shards[i] = NewStore()
	}
	return s
}

func (s *ShardedStore) shardFor(user rbac.UserID) *Store {
	h := fnv.New32a()
	h.Write([]byte(user))
	return s.shards[int(h.Sum32())%len(s.shards)]
}

// Append implements Recorder, routing each record to its user's shard.
// Validation runs first so the multi-shard write cannot partially fail.
func (s *ShardedStore) Append(recs ...Record) error {
	for _, r := range recs {
		if err := r.Validate(); err != nil {
			return err
		}
	}
	for _, r := range recs {
		if err := s.shardFor(r.User).Append(r); err != nil {
			return err
		}
	}
	return nil
}

// UserHasRole implements Recorder.
func (s *ShardedStore) UserHasRole(user rbac.UserID, pattern bctx.Name, role rbac.RoleName) (bool, error) {
	return s.shardFor(user).UserHasRole(user, pattern, role)
}

// UserHasPrivilege implements Recorder.
func (s *ShardedStore) UserHasPrivilege(user rbac.UserID, pattern bctx.Name, p rbac.Permission) (bool, error) {
	return s.shardFor(user).UserHasPrivilege(user, pattern, p)
}

// CountUserRole implements Recorder.
func (s *ShardedStore) CountUserRole(user rbac.UserID, pattern bctx.Name, role rbac.RoleName, max int) (int, error) {
	return s.shardFor(user).CountUserRole(user, pattern, role, max)
}

// CountUserPrivilege implements Recorder.
func (s *ShardedStore) CountUserPrivilege(user rbac.UserID, pattern bctx.Name, p rbac.Permission, max int) (int, error) {
	return s.shardFor(user).CountUserPrivilege(user, pattern, p, max)
}

// ContextActive implements Recorder by asking every shard.
func (s *ShardedStore) ContextActive(pattern bctx.Name) (bool, error) {
	for _, shard := range s.shards {
		ok, err := shard.ContextActive(pattern)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// PurgeContext implements Recorder across every shard.
func (s *ShardedStore) PurgeContext(pattern bctx.Name) (int, error) {
	total := 0
	for _, shard := range s.shards {
		n, err := shard.PurgeContext(pattern)
		if err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}

// PurgeUser removes one user's records from their shard.
func (s *ShardedStore) PurgeUser(user rbac.UserID) int {
	return s.shardFor(user).PurgeUser(user)
}

// PurgeBefore removes old records from every shard.
func (s *ShardedStore) PurgeBefore(t time.Time) int {
	total := 0
	for _, shard := range s.shards {
		total += shard.PurgeBefore(t)
	}
	return total
}

// Len implements Recorder.
func (s *ShardedStore) Len() int {
	n := 0
	for _, shard := range s.shards {
		n += shard.Len()
	}
	return n
}

// All returns every record across shards, ordered by user then
// insertion order within a user (shard order then user order; user
// buckets never span shards, so the per-user contract of Store.All is
// preserved globally after a merge sort by user).
func (s *ShardedStore) All() []Record {
	var out []Record
	for _, shard := range s.shards {
		out = append(out, shard.All()...)
	}
	// Stable order by user across shards.
	sortRecordsByUser(out)
	return out
}

// sortRecordsByUser sorts records by user, preserving the relative
// (insertion) order of each user's records, which live in one shard.
func sortRecordsByUser(recs []Record) {
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].User < recs[j].User })
}
