package adi

import (
	"time"

	"msod/internal/bctx"
	"msod/internal/rbac"
)

// Context-activation markers. §4.2 step 3 asks "has this bound context
// instance any retained history?" — per-store state. When the user
// population is partitioned across stores (the cluster gateway shards
// by user), the node holding the first-stepper activates the instance
// locally, but every OTHER node would still answer "no history" and,
// for a FirstStep-gated policy, skip recording its own users'
// operations in the running instance — under-counted history, the one
// failure mode MSoD must never have. Activation markers close the gap:
// a marker is an ordinary retained-ADI record under a reserved user
// ID, so ContextActive turns true on any store holding one, the WAL
// persists it like any history, and a context-pattern purge (the
// administrative closure) removes it with the history it covered.
//
// Markers are deny-safe by construction: they belong to a user that
// never issues requests, so no k-of-m counter ever counts them; a
// spurious marker can only cause over-recording (over-counting denies,
// never grants), and a missing one is repaired idempotently by
// EnsureActive.
const (
	// ActivationUser owns every activation marker. The "msod:" prefix
	// cannot collide with subjects resolved from credentials in any
	// shipped CVS, and the cluster handoff planner skips it — markers
	// are node-local infrastructure state, not user history to move.
	ActivationUser rbac.UserID = "msod:ctx-activation"
	// ActivationOp/ActivationTarget make markers self-describing in
	// state dumps; no TargetAccessPolicy ever grants them, so the pair
	// can never count toward a privilege check.
	ActivationOp     rbac.Operation = "msod:activate"
	ActivationTarget rbac.Object    = "msod:ctx"
)

// NewActivationRecord builds the marker record for one bound context.
func NewActivationRecord(bound bctx.Name, now time.Time) Record {
	return Record{
		User:      ActivationUser,
		Operation: ActivationOp,
		Target:    ActivationTarget,
		Context:   bound,
		Time:      now,
	}
}

// EnsureActive idempotently marks the bound contexts active on the
// store: a marker is appended only where ContextActive is still false,
// so replays and overlapping fan-outs cannot pile up markers. Returns
// how many markers were appended. Callers serialise against decisions
// (the PDP commit lock) themselves.
func EnsureActive(store Recorder, now time.Time, bounds ...bctx.Name) (int, error) {
	added := 0
	for _, bound := range bounds {
		active, err := store.ContextActive(bound)
		if err != nil {
			return added, err
		}
		if active {
			continue
		}
		if err := store.Append(NewActivationRecord(bound, now)); err != nil {
			return added, err
		}
		added++
	}
	return added, nil
}
