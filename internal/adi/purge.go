package adi

import "msod/internal/rbac"

// PurgeUserFrom removes one user's records from any store shipped with
// the repo, papering over the signature split between the in-memory
// stores (PurgeUser(user) int) and the durable store (PurgeUser(user)
// (int, error)). ok is false when the store exposes no per-user purge
// at all — callers must treat that as "the records are still there"
// and refuse whatever operation depended on their removal, never as an
// empty success.
func PurgeUserFrom(r Recorder, user rbac.UserID) (n int, ok bool, err error) {
	switch s := r.(type) {
	case *Store:
		return s.PurgeUser(user), true, nil
	case *ShardedStore:
		return s.PurgeUser(user), true, nil
	case *DurableStore:
		n, err := s.PurgeUser(user)
		return n, true, err
	}
	return 0, false, nil
}
