package adi

import (
	"bufio"
	"context"
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"msod/internal/bctx"
	"msod/internal/fsx"
	"msod/internal/obsv"
	"msod/internal/rbac"
)

// ErrWriteFailed marks a durable-store mutation that failed at the
// disk layer (EIO, ENOSPC, failed fsync). The acknowledged state is
// unchanged — the mutation was refused, not half-applied — but the
// store can no longer promise durability for new writes, so callers
// (the PDP server) treat it as the trigger for degraded read-only
// mode. Test with errors.Is.
var ErrWriteFailed = errors.New("adi: durable write failed")

// DurableStore is the paper's §6 successor design for the retained ADI:
// instead of rebuilding history from audit trails at every start-up, the
// store itself is durable. It keeps the indexed in-memory Store for
// queries and makes every mutation durable through an encrypted
// write-ahead log; Compact folds the log into a sealed snapshot. Opening
// the store recovers state from snapshot + log, tolerating a torn final
// log record from a crash mid-write.
//
// Layout inside the directory:
//
//	snapshot.sealed  AES-GCM sealed snapshot (SecureStore format)
//	wal.log          one sealed mutation per line, applied after the snapshot
//
// DurableStore implements Recorder and is safe for concurrent use.
type DurableStore struct {
	mu   sync.Mutex
	mem  *Store
	dir  string
	aead cipher.AEAD
	snap *SecureStore
	fs   fsx.FS

	wal fsx.File
	w   *bufio.Writer
	// sync makes every mutation fsync before returning.
	sync bool
	// walOps counts mutations since the last compaction.
	walOps int
	// recoveryDur is how long snapshot+WAL recovery took at open —
	// the restart cost an operator watches (exposed as the
	// msod_adi_recovery_seconds gauge by msodd).
	recoveryDur time.Duration
}

// walEntry is one logged mutation.
type walEntry struct {
	// Op is "append", "purgeContext", "purgeUser" or "purgeBefore".
	Op string `json:"op"`
	// Records carries the appended records (wire form).
	Records []wireRecord `json:"records,omitempty"`
	// Pattern is the purgeContext scope.
	Pattern string `json:"pattern,omitempty"`
	// User is the purgeUser subject.
	User string `json:"user,omitempty"`
	// Before is the purgeBefore cutoff.
	Before time.Time `json:"before,omitempty"`
}

const (
	durableSnapshotName = "snapshot.sealed"
	durableWALName      = "wal.log"
)

// OpenDurable opens (creating if necessary) a durable retained-ADI store
// in dir, sealed with a key derived from secret. syncEveryWrite selects
// whether each mutation is fsynced (durable against power loss) or only
// flushed to the OS (durable against process crash).
func OpenDurable(dir string, secret []byte, syncEveryWrite bool) (*DurableStore, error) {
	return OpenDurableFS(dir, secret, syncEveryWrite, fsx.OS)
}

// OpenDurableFS is OpenDurable over an injected filesystem. The fault
// torture tests use it to crash the store at every write, fsync and
// rename and then reopen over the surviving bytes.
func OpenDurableFS(dir string, secret []byte, syncEveryWrite bool, fs fsx.FS) (*DurableStore, error) {
	if len(secret) == 0 {
		return nil, fmt.Errorf("adi: empty durable store secret")
	}
	if err := fs.MkdirAll(dir, 0o700); err != nil {
		return nil, fmt.Errorf("adi: create durable dir: %w", err)
	}
	key := sha256.Sum256(append([]byte("msod-durable-wal:"), secret...))
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("adi: cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("adi: gcm: %w", err)
	}
	snap, err := NewSecureStoreFS(filepath.Join(dir, durableSnapshotName), secret, fs)
	if err != nil {
		return nil, err
	}
	ds := &DurableStore{
		mem:  NewStore(),
		dir:  dir,
		aead: aead,
		snap: snap,
		fs:   fs,
		sync: syncEveryWrite,
	}
	if err := ds.checkKey(); err != nil {
		return nil, err
	}
	recoverStart := time.Now() //msod:ignore clockuse startup-recovery telemetry only; never retained in ADI records or trail ordering
	if err := ds.recover(); err != nil {
		return nil, err
	}
	ds.recoveryDur = time.Since(recoverStart)
	wal, err := fs.OpenFile(filepath.Join(dir, durableWALName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		return nil, fmt.Errorf("adi: open wal: %w", err)
	}
	ds.wal = wal
	ds.w = bufio.NewWriter(wal)
	return ds, nil
}

// durableKeyCheckName marks the store with a sealed probe so a wrong
// secret is reported as such instead of being mistaken for a torn WAL.
const durableKeyCheckName = "keycheck.sealed"

// checkKey verifies (or, for a fresh store, installs) the key-check
// marker. The install is a durable write — a torn marker after power
// loss would make every later open fail as a secret mismatch.
func (ds *DurableStore) checkKey() error {
	path := filepath.Join(ds.dir, durableKeyCheckName)
	sealed, err := ds.fs.ReadFile(path)
	if os.IsNotExist(err) {
		line, serr := ds.sealEntry(walEntry{Op: "keycheck"})
		if serr != nil {
			return serr
		}
		f, werr := ds.fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o600)
		if werr != nil {
			return fmt.Errorf("adi: create keycheck: %w", werr)
		}
		if _, werr := f.Write(line); werr != nil {
			f.Close()
			return fmt.Errorf("adi: write keycheck: %w", werr)
		}
		if werr := f.Sync(); werr != nil {
			f.Close()
			return fmt.Errorf("adi: sync keycheck: %w", werr)
		}
		return f.Close()
	}
	if err != nil {
		return fmt.Errorf("adi: read keycheck: %w", err)
	}
	entry, err := ds.openEntry(sealed)
	if err != nil || entry.Op != "keycheck" {
		return fmt.Errorf("adi: durable store secret mismatch or keycheck corrupt")
	}
	return nil
}

// recover loads the snapshot, then replays the WAL. A torn final record
// (crash mid-write) is truncated away; a corrupted record elsewhere is a
// hard error (tampering).
func (ds *DurableStore) recover() error {
	if _, err := ds.snap.LoadInto(ds.mem); err != nil {
		return fmt.Errorf("adi: durable recovery: %w", err)
	}
	walPath := filepath.Join(ds.dir, durableWALName)
	f, err := ds.fs.Open(walPath)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("adi: open wal for recovery: %w", err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 8<<20)
	var (
		goodBytes int64
		lineNo    int
	)
	for sc.Scan() {
		line := sc.Bytes()
		lineNo++
		if len(line) == 0 {
			goodBytes += 1
			continue
		}
		entry, err := ds.openEntry(line)
		if err != nil {
			// Only the final record may be torn; check whether anything
			// non-blank follows.
			rest, readErr := trailingContent(sc)
			if readErr != nil {
				return readErr
			}
			if rest {
				return fmt.Errorf("adi: wal line %d corrupt mid-log: %w", lineNo, err)
			}
			// Torn tail: truncate it away and finish recovery.
			if terr := ds.fs.Truncate(walPath, goodBytes); terr != nil {
				return fmt.Errorf("adi: truncate torn wal: %w", terr)
			}
			ds.walOps = lineNo - 1
			return nil
		}
		if err := ds.applyEntry(entry); err != nil {
			return fmt.Errorf("adi: wal line %d: %w", lineNo, err)
		}
		goodBytes += int64(len(line)) + 1
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("adi: read wal: %w", err)
	}
	ds.walOps = lineNo
	return nil
}

// trailingContent reports whether any non-blank line remains in the
// scanner (used to distinguish a torn tail from mid-log corruption).
func trailingContent(sc *bufio.Scanner) (bool, error) {
	for sc.Scan() {
		if len(strings.TrimSpace(sc.Text())) > 0 {
			return true, nil
		}
	}
	return false, sc.Err()
}

// applyEntry replays one mutation into the in-memory store.
func (ds *DurableStore) applyEntry(e walEntry) error {
	switch e.Op {
	case "append":
		recs := make([]Record, len(e.Records))
		for i, w := range e.Records {
			r, err := fromWire(w)
			if err != nil {
				return err
			}
			recs[i] = r
		}
		return ds.mem.Append(recs...)
	case "purgeContext":
		pattern, err := bctx.Parse(e.Pattern)
		if err != nil {
			return err
		}
		_, err = ds.mem.PurgeContext(pattern)
		return err
	case "purgeUser":
		ds.mem.PurgeUser(rbac.UserID(e.User))
		return nil
	case "purgeBefore":
		ds.mem.PurgeBefore(e.Before)
		return nil
	default:
		return fmt.Errorf("unknown wal op %q", e.Op)
	}
}

// sealEntry encrypts one WAL entry to a base64 line.
func (ds *DurableStore) sealEntry(e walEntry) ([]byte, error) {
	plain, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("adi: marshal wal entry: %w", err)
	}
	nonce := make([]byte, ds.aead.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("adi: wal nonce: %w", err)
	}
	sealed := ds.aead.Seal(nonce, nonce, plain, nil)
	out := make([]byte, base64.StdEncoding.EncodedLen(len(sealed)))
	base64.StdEncoding.Encode(out, sealed)
	return out, nil
}

// openEntry decrypts one WAL line.
func (ds *DurableStore) openEntry(line []byte) (walEntry, error) {
	sealed := make([]byte, base64.StdEncoding.DecodedLen(len(line)))
	n, err := base64.StdEncoding.Decode(sealed, line)
	if err != nil {
		return walEntry{}, fmt.Errorf("adi: wal base64: %w", err)
	}
	sealed = sealed[:n]
	if len(sealed) < ds.aead.NonceSize() {
		return walEntry{}, fmt.Errorf("adi: wal record truncated")
	}
	plain, err := ds.aead.Open(nil, sealed[:ds.aead.NonceSize()], sealed[ds.aead.NonceSize():], nil)
	if err != nil {
		return walEntry{}, fmt.Errorf("adi: wal authentication failed: %w", err)
	}
	var e walEntry
	if err := json.Unmarshal(plain, &e); err != nil {
		return walEntry{}, fmt.Errorf("adi: wal decode: %w", err)
	}
	return e, nil
}

// logLocked seals and writes one entry, then applies it in memory.
// Durability first: the mutation reaches the log before the store state
// changes, so a crash never loses an acknowledged write.
func (ds *DurableStore) logLocked(e walEntry) error {
	line, err := ds.sealEntry(e)
	if err != nil {
		return err
	}
	if _, err := ds.w.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("%w: write wal: %w", ErrWriteFailed, err)
	}
	if err := ds.w.Flush(); err != nil {
		return fmt.Errorf("%w: flush wal: %w", ErrWriteFailed, err)
	}
	if ds.sync {
		if err := ds.wal.Sync(); err != nil {
			return fmt.Errorf("%w: sync wal: %w", ErrWriteFailed, err)
		}
	}
	if err := ds.applyEntry(e); err != nil {
		return err
	}
	ds.walOps++
	return nil
}

// AppendCtx is Append carrying a context: when the context holds an
// obsv.Trace, the whole WAL round trip (seal, write, flush, optional
// fsync, in-memory apply) is recorded as a SpanStoreWAL span — nested
// inside the engine's store span, so an operator reading a retained
// trace can tell WAL latency apart from in-memory commit work.
// Untraced contexts pay a single nil check.
func (ds *DurableStore) AppendCtx(ctx context.Context, recs ...Record) error {
	defer obsv.StartSpan(ctx, obsv.SpanStoreWAL)()
	return ds.Append(recs...)
}

// Append implements Recorder.
func (ds *DurableStore) Append(recs ...Record) error {
	for _, r := range recs {
		if err := r.Validate(); err != nil {
			return err
		}
	}
	if len(recs) == 0 {
		return nil
	}
	ds.mu.Lock()
	defer ds.mu.Unlock()
	wire := make([]wireRecord, len(recs))
	for i, r := range recs {
		wire[i] = toWire(r)
	}
	return ds.logLocked(walEntry{Op: "append", Records: wire})
}

// PurgeContext implements Recorder.
func (ds *DurableStore) PurgeContext(pattern bctx.Name) (int, error) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	before := ds.mem.Len()
	if err := ds.logLocked(walEntry{Op: "purgeContext", Pattern: pattern.String()}); err != nil {
		return 0, err
	}
	return before - ds.mem.Len(), nil
}

// PurgeUser durably removes one user's records.
func (ds *DurableStore) PurgeUser(user rbac.UserID) (int, error) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	before := ds.mem.Len()
	if err := ds.logLocked(walEntry{Op: "purgeUser", User: string(user)}); err != nil {
		return 0, err
	}
	return before - ds.mem.Len(), nil
}

// PurgeBefore durably removes records older than t.
func (ds *DurableStore) PurgeBefore(t time.Time) (int, error) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	before := ds.mem.Len()
	if err := ds.logLocked(walEntry{Op: "purgeBefore", Before: t}); err != nil {
		return 0, err
	}
	return before - ds.mem.Len(), nil
}

// Read-side methods delegate to the in-memory index.

// UserHasRole implements Recorder.
func (ds *DurableStore) UserHasRole(user rbac.UserID, pattern bctx.Name, role rbac.RoleName) (bool, error) {
	return ds.mem.UserHasRole(user, pattern, role)
}

// UserHasPrivilege implements Recorder.
func (ds *DurableStore) UserHasPrivilege(user rbac.UserID, pattern bctx.Name, p rbac.Permission) (bool, error) {
	return ds.mem.UserHasPrivilege(user, pattern, p)
}

// CountUserRole implements Recorder.
func (ds *DurableStore) CountUserRole(user rbac.UserID, pattern bctx.Name, role rbac.RoleName, max int) (int, error) {
	return ds.mem.CountUserRole(user, pattern, role, max)
}

// CountUserPrivilege implements Recorder.
func (ds *DurableStore) CountUserPrivilege(user rbac.UserID, pattern bctx.Name, p rbac.Permission, max int) (int, error) {
	return ds.mem.CountUserPrivilege(user, pattern, p, max)
}

// ContextActive implements Recorder.
func (ds *DurableStore) ContextActive(pattern bctx.Name) (bool, error) {
	return ds.mem.ContextActive(pattern)
}

// Len implements Recorder.
func (ds *DurableStore) Len() int { return ds.mem.Len() }

// All returns a copy of every record (see Store.All).
func (ds *DurableStore) All() []Record { return ds.mem.All() }

// WALOps returns the number of mutations logged since the last
// compaction, for compaction scheduling.
func (ds *DurableStore) WALOps() int {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.walOps
}

// RecoveryDuration reports how long snapshot+WAL recovery took when
// the store was opened.
func (ds *DurableStore) RecoveryDuration() time.Duration { return ds.recoveryDur }

// DiskUsage reports the store's on-disk footprint in bytes (snapshot
// plus write-ahead log) — the growth an operator watches between
// compactions.
func (ds *DurableStore) DiskUsage() int64 {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	// Flush buffered WAL bytes so the reported size matches what a
	// crash would recover.
	if ds.w != nil {
		_ = ds.w.Flush()
	}
	var total int64
	for _, name := range []string{durableSnapshotName, durableWALName} {
		if fi, err := ds.fs.Stat(filepath.Join(ds.dir, name)); err == nil {
			total += fi.Size()
		}
	}
	return total
}

// Compact folds the log into the snapshot: the current state is sealed
// to snapshot.sealed (atomically) and the WAL is truncated. Recovery
// after Compact reads only the snapshot.
func (ds *DurableStore) Compact() error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if err := ds.w.Flush(); err != nil {
		return fmt.Errorf("%w: flush before compact: %w", ErrWriteFailed, err)
	}
	if err := ds.snap.Save(ds.mem.All()); err != nil {
		return fmt.Errorf("%w: %w", ErrWriteFailed, err)
	}
	// Snapshot durably installed; the log can be reset.
	if err := ds.wal.Truncate(0); err != nil {
		return fmt.Errorf("%w: truncate wal: %w", ErrWriteFailed, err)
	}
	if _, err := ds.wal.Seek(0, 0); err != nil {
		return fmt.Errorf("adi: rewind wal: %w", err)
	}
	ds.w.Reset(ds.wal)
	ds.walOps = 0
	return nil
}

// Close flushes and closes the store. A Compact before Close makes the
// next open snapshot-only.
func (ds *DurableStore) Close() error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.wal == nil {
		return nil
	}
	if err := ds.w.Flush(); err != nil {
		return fmt.Errorf("adi: flush wal: %w", err)
	}
	err := ds.wal.Close()
	ds.wal = nil
	if err != nil {
		return fmt.Errorf("adi: close wal: %w", err)
	}
	return nil
}

var _ Recorder = (*DurableStore)(nil)

// toWire converts a record to its serialised form.
func toWire(r Record) wireRecord {
	roles := make([]string, len(r.Roles))
	for j, rr := range r.Roles {
		roles[j] = string(rr)
	}
	return wireRecord{
		User:      string(r.User),
		Roles:     roles,
		Operation: string(r.Operation),
		Target:    string(r.Target),
		Context:   r.Context.String(),
		Time:      r.Time,
	}
}

// fromWire converts a serialised record back.
func fromWire(w wireRecord) (Record, error) {
	ctx, err := bctx.Parse(w.Context)
	if err != nil {
		return Record{}, fmt.Errorf("adi: wire record context: %w", err)
	}
	roles := make([]rbac.RoleName, len(w.Roles))
	for j, rr := range w.Roles {
		roles[j] = rbac.RoleName(rr)
	}
	return Record{
		User:      rbac.UserID(w.User),
		Roles:     roles,
		Operation: rbac.Operation(w.Operation),
		Target:    rbac.Object(w.Target),
		Context:   ctx,
		Time:      w.Time,
	}, nil
}
