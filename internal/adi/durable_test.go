package adi

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"

	"msod/internal/bctx"
	"msod/internal/rbac"
)

func openDurable(t *testing.T, dir string) *DurableStore {
	t.Helper()
	ds, err := OpenDurable(dir, []byte("durable-secret"), false)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ds.Close() })
	return ds
}

func TestDurableBasicRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ds := openDurable(t, dir)
	if err := ds.Append(
		rec("alice", "Teller", "op", "t", "Branch=York, Period=2006"),
		rec("bob", "Auditor", "op", "t", "Branch=Leeds, Period=2006"),
	); err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 2 || ds.WALOps() != 1 {
		t.Fatalf("len=%d walOps=%d", ds.Len(), ds.WALOps())
	}
	ok, _ := ds.UserHasRole("alice", bctx.MustParse("Branch=*, Period=2006"), "Teller")
	if !ok {
		t.Error("query against durable store failed")
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: state recovered from WAL alone (no compaction yet).
	ds2 := openDurable(t, dir)
	if ds2.Len() != 2 {
		t.Fatalf("recovered %d records", ds2.Len())
	}
	ok, _ = ds2.UserHasRole("bob", bctx.Universal, "Auditor")
	if !ok {
		t.Error("bob's record lost across reopen")
	}
}

func TestDurablePurgesSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	ds := openDurable(t, dir)
	if err := ds.Append(
		rec("alice", "Teller", "op", "t", "P=1"),
		rec("alice", "Teller", "op", "t", "P=2"),
		rec("bob", "Auditor", "op", "t", "P=1"),
	); err != nil {
		t.Fatal(err)
	}
	n, err := ds.PurgeContext(bctx.MustParse("P=1"))
	if err != nil || n != 2 {
		t.Fatalf("purge = %d, %v", n, err)
	}
	if _, err := ds.PurgeUser("alice"); err != nil {
		t.Fatal(err)
	}
	ds.Close()

	ds2 := openDurable(t, dir)
	if ds2.Len() != 0 {
		t.Fatalf("recovered %d records, want 0 (purges must replay)", ds2.Len())
	}
}

func TestDurableCompact(t *testing.T) {
	dir := t.TempDir()
	ds := openDurable(t, dir)
	for i := 0; i < 10; i++ {
		if err := ds.Append(rec(fmt.Sprintf("u%d", i), "R", "op", "t", "P=1")); err != nil {
			t.Fatal(err)
		}
	}
	if err := ds.Compact(); err != nil {
		t.Fatal(err)
	}
	if ds.WALOps() != 0 {
		t.Errorf("WALOps after compact = %d", ds.WALOps())
	}
	// The WAL file must be empty now.
	fi, err := os.Stat(filepath.Join(dir, durableWALName))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 0 {
		t.Errorf("wal size after compact = %d", fi.Size())
	}
	// Post-compact mutations land in the fresh WAL.
	if err := ds.Append(rec("post", "R", "op", "t", "P=2")); err != nil {
		t.Fatal(err)
	}
	ds.Close()

	ds2 := openDurable(t, dir)
	if ds2.Len() != 11 {
		t.Fatalf("recovered %d records, want 11", ds2.Len())
	}
	ok, _ := ds2.UserHasRole("post", bctx.Universal, "R")
	if !ok {
		t.Error("post-compact record lost")
	}
}

func TestDurableTornTailRecovered(t *testing.T) {
	dir := t.TempDir()
	ds := openDurable(t, dir)
	for i := 0; i < 5; i++ {
		if err := ds.Append(rec(fmt.Sprintf("u%d", i), "R", "op", "t", "P=1")); err != nil {
			t.Fatal(err)
		}
	}
	ds.Close()

	// Simulate a crash mid-write: chop bytes off the final WAL record.
	walPath := filepath.Join(dir, durableWALName)
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, raw[:len(raw)-10], 0o600); err != nil {
		t.Fatal(err)
	}

	ds2 := openDurable(t, dir)
	if ds2.Len() != 4 {
		t.Fatalf("recovered %d records, want 4 (torn tail dropped)", ds2.Len())
	}
	// The store is writable again and the truncated WAL continues.
	if err := ds2.Append(rec("u9", "R", "op", "t", "P=1")); err != nil {
		t.Fatal(err)
	}
	ds2.Close()
	ds3 := openDurable(t, dir)
	if ds3.Len() != 5 {
		t.Fatalf("after repair+append: %d records, want 5", ds3.Len())
	}
}

func TestDurableMidLogCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	ds := openDurable(t, dir)
	for i := 0; i < 3; i++ {
		if err := ds.Append(rec(fmt.Sprintf("u%d", i), "R", "op", "t", "P=1")); err != nil {
			t.Fatal(err)
		}
	}
	ds.Close()

	walPath := filepath.Join(dir, durableWALName)
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[10] ^= 0xff // corrupt the first record, not the tail
	if err := os.WriteFile(walPath, raw, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurable(dir, []byte("durable-secret"), false); err == nil {
		t.Fatal("mid-log corruption accepted as torn tail")
	}
}

func TestDurableWrongSecret(t *testing.T) {
	dir := t.TempDir()
	ds := openDurable(t, dir)
	if err := ds.Append(rec("u", "R", "op", "t", "P=1")); err != nil {
		t.Fatal(err)
	}
	ds.Close()
	if _, err := OpenDurable(dir, []byte("other-secret"), false); err == nil {
		t.Fatal("wrong secret opened the store")
	}
	if _, err := OpenDurable(t.TempDir(), nil, false); err == nil {
		t.Fatal("empty secret accepted")
	}
}

func TestDurableSyncMode(t *testing.T) {
	ds, err := OpenDurable(t.TempDir(), []byte("k"), true)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if err := ds.Append(rec("u", "R", "op", "t", "P=1")); err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 1 {
		t.Error("sync-mode append lost")
	}
}

func TestDurableEmptyAppendIsNoop(t *testing.T) {
	ds := openDurable(t, t.TempDir())
	if err := ds.Append(); err != nil {
		t.Fatal(err)
	}
	if ds.WALOps() != 0 {
		t.Error("empty append logged a WAL entry")
	}
}

func TestDurablePurgeBefore(t *testing.T) {
	dir := t.TempDir()
	ds := openDurable(t, dir)
	old := Record{User: "u", Roles: []rbac.RoleName{"R"}, Operation: "op", Target: "t",
		Context: bctx.MustParse("P=1"), Time: time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC)}
	newer := Record{User: "u", Roles: []rbac.RoleName{"R"}, Operation: "op", Target: "t",
		Context: bctx.MustParse("P=2"), Time: time.Date(2007, 1, 1, 0, 0, 0, 0, time.UTC)}
	if err := ds.Append(old, newer); err != nil {
		t.Fatal(err)
	}
	n, err := ds.PurgeBefore(time.Date(2006, 1, 1, 0, 0, 0, 0, time.UTC))
	if err != nil || n != 1 {
		t.Fatalf("PurgeBefore = %d, %v", n, err)
	}
	ds.Close()
	ds2 := openDurable(t, dir)
	if ds2.Len() != 1 {
		t.Fatalf("recovered %d, want 1", ds2.Len())
	}
}

// TestQuickDurableEquivalence: under random mutate/compact/reopen
// sequences, the durable store answers queries identically to a plain
// in-memory store receiving the same mutations.
func TestQuickDurableEquivalence(t *testing.T) {
	users := []string{"u0", "u1"}
	ctxs := []string{"A=1", "A=2", "A=1, B=x"}
	patterns := []string{"", "A=1", "A=*"}

	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		dir, err := os.MkdirTemp("", "msod-durable-quick-*")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		ds, err := OpenDurable(dir, []byte("k"), false)
		if err != nil {
			return false
		}
		defer func() { ds.Close() }()
		shadow := NewStore()

		for i := 0; i < int(n); i++ {
			switch r.Intn(6) {
			case 0, 1, 2: // append
				rc := rec(users[r.Intn(len(users))], "R",
					fmt.Sprintf("op%d", r.Intn(2)), "t", ctxs[r.Intn(len(ctxs))])
				if ds.Append(rc) != nil || shadow.Append(rc) != nil {
					return false
				}
			case 3: // purge
				p := bctx.MustParse(patterns[r.Intn(len(patterns))])
				n1, e1 := ds.PurgeContext(p)
				n2, e2 := shadow.PurgeContext(p)
				if e1 != nil || e2 != nil || n1 != n2 {
					return false
				}
			case 4: // compact
				if ds.Compact() != nil {
					return false
				}
			case 5: // reopen
				if ds.Close() != nil {
					return false
				}
				ds, err = OpenDurable(dir, []byte("k"), false)
				if err != nil {
					return false
				}
			}
			if ds.Len() != shadow.Len() {
				return false
			}
			u := rbac.UserID(users[r.Intn(len(users))])
			p := bctx.MustParse(patterns[r.Intn(len(patterns))])
			a1, e1 := ds.UserHasRole(u, p, "R")
			a2, e2 := shadow.UserHasRole(u, p, "R")
			if e1 != nil || e2 != nil || a1 != a2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
