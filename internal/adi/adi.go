// Package adi implements the Retained Access control Decision
// Information store of ISO 10181-3 as used by the MSoD paper (§4.1,
// §4.2): a record of previous *granted* access control decisions that the
// PDP consults to make history-dependent decisions.
//
// Each record is the six-tuple defined in §4.2:
//
//  1. user's ID,
//  2. user's activated role(s),
//  3. operation granted,
//  4. target accessed,
//  5. business context instance, and
//  6. time/date of the grant decision.
//
// Two implementations are provided: Store, indexed by user ID (the
// production form), and LinearStore, an unindexed scan used as the
// ablation baseline in experiment E4. Both satisfy Recorder.
package adi

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"msod/internal/bctx"
	"msod/internal/rbac"
)

// Record is one retained-ADI entry: a previously granted decision.
type Record struct {
	// User is the requester's stable identifier.
	User rbac.UserID
	// Roles are the roles the user had activated for the granted request.
	Roles []rbac.RoleName
	// Operation is the granted operation.
	Operation rbac.Operation
	// Target is the object the operation was granted on.
	Target rbac.Object
	// Context is the concrete business context instance of the request.
	Context bctx.Name
	// Time is when the grant decision was made.
	Time time.Time
}

// HasRole reports whether the record lists the role.
func (r Record) HasRole(role rbac.RoleName) bool {
	for _, rr := range r.Roles {
		if rr == role {
			return true
		}
	}
	return false
}

// Privilege returns the record's (operation, target) pair.
func (r Record) Privilege() rbac.Permission {
	return rbac.Permission{Operation: r.Operation, Object: r.Target}
}

// String renders the record compactly for logs and diagnostics.
func (r Record) String() string {
	roles := make([]string, len(r.Roles))
	for i, rr := range r.Roles {
		roles[i] = string(rr)
	}
	return fmt.Sprintf("%s[%s] %s@%s ctx=%q %s",
		r.User, strings.Join(roles, ","), r.Operation, r.Target, r.Context, r.Time.Format(time.RFC3339))
}

// Validate checks that the record is storable: non-empty user and a
// concrete context instance.
func (r Record) Validate() error {
	if r.User == "" {
		return fmt.Errorf("adi: record has empty user ID")
	}
	if !r.Context.IsInstance() {
		return fmt.Errorf("adi: record context %q is not an instance", r.Context)
	}
	return nil
}

// Recorder is the query/update surface the MSoD engine needs from a
// retained-ADI implementation.
type Recorder interface {
	// Append stores granted-decision records. It is atomic: either all
	// records are stored or none.
	Append(recs ...Record) error
	// UserHasRole reports whether any record for the user whose context
	// instance falls within pattern lists the role.
	UserHasRole(user rbac.UserID, pattern bctx.Name, role rbac.RoleName) (bool, error)
	// UserHasPrivilege reports whether any record for the user whose
	// context instance falls within pattern granted the privilege.
	UserHasPrivilege(user rbac.UserID, pattern bctx.Name, p rbac.Permission) (bool, error)
	// CountUserRole counts records for the user within pattern that list
	// the role, stopping early at max (pass max <= 0 for no cap). The
	// multiset counting of §4.2 step 5.iii needs counts, not existence.
	CountUserRole(user rbac.UserID, pattern bctx.Name, role rbac.RoleName, max int) (int, error)
	// CountUserPrivilege counts records for the user within pattern that
	// granted the privilege, stopping early at max (pass max <= 0 for no
	// cap), for §4.2 step 6.iii.
	CountUserPrivilege(user rbac.UserID, pattern bctx.Name, p rbac.Permission, max int) (int, error)
	// ContextActive reports whether any record (for any user) has a
	// context instance within pattern — §4.2 step 3's "match the policy
	// business context against the business context instances stored in
	// the retained ADI".
	ContextActive(pattern bctx.Name) (bool, error)
	// PurgeContext deletes every record whose context instance is equal
	// or subordinate to pattern (step 7 of the §4.2 algorithm). It
	// returns the number of records removed.
	PurgeContext(pattern bctx.Name) (int, error)
	// Len returns the number of retained records.
	Len() int
}

// CtxAppender is the optional context-aware extension of Recorder: a
// store that implements it gets the decision's context (and so its
// obsv.Trace) on the commit path, letting it record sub-spans like the
// durable WAL round trip. The engine type-asserts once and falls back
// to plain Append for stores that don't.
type CtxAppender interface {
	AppendCtx(ctx context.Context, recs ...Record) error
}

// matchPattern reports whether the record's instance is within pattern.
func matchPattern(pattern bctx.Name, rec Record) bool {
	ok, err := bctx.MatchInstance(pattern, rec.Context)
	return err == nil && ok
}

// Store is the indexed in-memory retained ADI: records are bucketed by
// user ID so per-user history queries do not scan unrelated users, and a
// per-context-instance reference count answers ContextActive without
// scanning records. Store is safe for concurrent use.
type Store struct {
	mu     sync.RWMutex
	byUser map[rbac.UserID][]Record
	// ctxRef counts live records per exact context-instance key, so
	// ContextActive only inspects distinct instances.
	ctxRef  map[string]int
	ctxName map[string]bctx.Name
	// ctxComp indexes distinct instances by each positional component:
	// "i|Type=Value" and "i|Type" -> set of instance keys. ContextActive
	// probes the most selective bucket of the pattern instead of
	// scanning every distinct instance (experiment E15 measures the
	// difference).
	ctxComp map[string]map[string]bool
	n       int
}

var _ Recorder = (*Store)(nil)

// NewStore returns an empty indexed store.
func NewStore() *Store {
	return &Store{
		byUser:  make(map[rbac.UserID][]Record),
		ctxRef:  make(map[string]int),
		ctxName: make(map[string]bctx.Name),
		ctxComp: make(map[string]map[string]bool),
	}
}

// Append implements Recorder.
func (s *Store) Append(recs ...Record) error {
	for _, r := range recs {
		if err := r.Validate(); err != nil {
			return err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range recs {
		r.Roles = append([]rbac.RoleName(nil), r.Roles...)
		s.byUser[r.User] = append(s.byUser[r.User], r)
		s.addCtxRefLocked(r.Context)
		s.n++
	}
	return nil
}

func (s *Store) addCtxRefLocked(ctx bctx.Name) {
	key := ctx.Key()
	if s.ctxRef[key] == 0 {
		s.ctxName[key] = ctx
		for _, ck := range componentKeys(ctx) {
			set := s.ctxComp[ck]
			if set == nil {
				set = make(map[string]bool)
				s.ctxComp[ck] = set
			}
			set[key] = true
		}
	}
	s.ctxRef[key]++
}

func (s *Store) dropCtxRefLocked(ctx bctx.Name) {
	key := ctx.Key()
	if s.ctxRef[key]--; s.ctxRef[key] <= 0 {
		delete(s.ctxRef, key)
		delete(s.ctxName, key)
		for _, ck := range componentKeys(ctx) {
			if set := s.ctxComp[ck]; set != nil {
				delete(set, key)
				if len(set) == 0 {
					delete(s.ctxComp, ck)
				}
			}
		}
	}
}

// componentKeys returns the index keys of an instance: per position, a
// typed-value key and a type-only key.
func componentKeys(ctx bctx.Name) []string {
	comps := ctx.Components()
	out := make([]string, 0, 2*len(comps))
	for i, c := range comps {
		out = append(out,
			fmt.Sprintf("%d|%s=%s", i, c.Type, c.Value),
			fmt.Sprintf("%d|%s", i, c.Type),
		)
	}
	return out
}

// UserHasRole implements Recorder.
func (s *Store) UserHasRole(user rbac.UserID, pattern bctx.Name, role rbac.RoleName) (bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, rec := range s.byUser[user] {
		if rec.HasRole(role) && matchPattern(pattern, rec) {
			return true, nil
		}
	}
	return false, nil
}

// UserHasPrivilege implements Recorder.
func (s *Store) UserHasPrivilege(user rbac.UserID, pattern bctx.Name, p rbac.Permission) (bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, rec := range s.byUser[user] {
		if rec.Operation == p.Operation && rec.Target == p.Object && matchPattern(pattern, rec) {
			return true, nil
		}
	}
	return false, nil
}

// CountUserRole implements Recorder.
func (s *Store) CountUserRole(user rbac.UserID, pattern bctx.Name, role rbac.RoleName, max int) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, rec := range s.byUser[user] {
		if rec.HasRole(role) && matchPattern(pattern, rec) {
			n++
			if max > 0 && n >= max {
				break
			}
		}
	}
	return n, nil
}

// CountUserPrivilege implements Recorder.
func (s *Store) CountUserPrivilege(user rbac.UserID, pattern bctx.Name, p rbac.Permission, max int) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, rec := range s.byUser[user] {
		if rec.Operation == p.Operation && rec.Target == p.Object && matchPattern(pattern, rec) {
			n++
			if max > 0 && n >= max {
				break
			}
		}
	}
	return n, nil
}

// ContextActive implements Recorder using the component index: the
// pattern's most selective component picks a candidate bucket, and only
// those candidates are fully matched. A universal pattern is active as
// soon as any instance exists.
func (s *Store) ContextActive(pattern bctx.Name) (bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	comps := pattern.Components()
	if len(comps) == 0 {
		return len(s.ctxName) > 0, nil
	}
	// Pick the smallest available bucket among the pattern's component
	// keys (typed-value keys for concrete components, type-only keys for
	// wildcards — instances must carry the type at that position either
	// way).
	var candidates map[string]bool
	for i, c := range comps {
		var key string
		if c.IsWildcard() {
			key = fmt.Sprintf("%d|%s", i, c.Type)
		} else {
			key = fmt.Sprintf("%d|%s=%s", i, c.Type, c.Value)
		}
		set := s.ctxComp[key]
		if set == nil {
			// No instance has this component at this position: nothing
			// can match.
			return false, nil
		}
		if candidates == nil || len(set) < len(candidates) {
			candidates = set
		}
	}
	for key := range candidates {
		if ok, err := bctx.MatchInstance(pattern, s.ctxName[key]); err == nil && ok {
			return true, nil
		}
	}
	return false, nil
}

// PurgeContext implements Recorder.
func (s *Store) PurgeContext(pattern bctx.Name) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	for user, recs := range s.byUser {
		kept := recs[:0]
		for _, rec := range recs {
			if matchPattern(pattern, rec) {
				s.dropCtxRefLocked(rec.Context)
				removed++
				continue
			}
			kept = append(kept, rec)
		}
		if len(kept) == 0 {
			delete(s.byUser, user)
		} else {
			s.byUser[user] = kept
		}
	}
	s.n -= removed
	return removed, nil
}

// PurgeUser deletes every record for the user (a §4.3 management
// operation). It returns the number removed.
func (s *Store) PurgeUser(user rbac.UserID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	recs := s.byUser[user]
	for _, rec := range recs {
		s.dropCtxRefLocked(rec.Context)
	}
	delete(s.byUser, user)
	s.n -= len(recs)
	return len(recs)
}

// PurgeBefore deletes every record with a decision time strictly before
// t (a §4.3 management operation). It returns the number removed.
func (s *Store) PurgeBefore(t time.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	for user, recs := range s.byUser {
		kept := recs[:0]
		for _, rec := range recs {
			if rec.Time.Before(t) {
				s.dropCtxRefLocked(rec.Context)
				removed++
				continue
			}
			kept = append(kept, rec)
		}
		if len(kept) == 0 {
			delete(s.byUser, user)
		} else {
			s.byUser[user] = kept
		}
	}
	s.n -= removed
	return removed
}

// Len implements Recorder.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.n
}

// UserRecords returns copies of the user's records whose context matches
// pattern, in insertion order.
func (s *Store) UserRecords(user rbac.UserID, pattern bctx.Name) []Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Record
	for _, rec := range s.byUser[user] {
		if matchPattern(pattern, rec) {
			out = append(out, rec)
		}
	}
	return out
}

// All returns a copy of every record, ordered by user then insertion
// order, suitable for snapshots.
func (s *Store) All() []Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	users := make([]rbac.UserID, 0, len(s.byUser))
	for u := range s.byUser {
		users = append(users, u)
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
	out := make([]Record, 0, s.n)
	for _, u := range users {
		out = append(out, s.byUser[u]...)
	}
	return out
}

// Users returns the number of distinct users with retained records.
func (s *Store) Users() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byUser)
}

// Reset drops every record.
func (s *Store) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.byUser = make(map[rbac.UserID][]Record)
	s.ctxRef = make(map[string]int)
	s.ctxName = make(map[string]bctx.Name)
	s.ctxComp = make(map[string]map[string]bool)
	s.n = 0
}

// LinearStore is an unindexed retained ADI: one flat slice scanned on
// every query. It exists as the ablation baseline for experiment E4
// (decision latency vs retained-ADI size) and deliberately mirrors the
// naive implementation the paper warns about in §4.3.
// LinearStore is safe for concurrent use.
type LinearStore struct {
	mu   sync.RWMutex
	recs []Record
}

var _ Recorder = (*LinearStore)(nil)

// NewLinearStore returns an empty linear store.
func NewLinearStore() *LinearStore { return &LinearStore{} }

// Append implements Recorder.
func (s *LinearStore) Append(recs ...Record) error {
	for _, r := range recs {
		if err := r.Validate(); err != nil {
			return err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range recs {
		r.Roles = append([]rbac.RoleName(nil), r.Roles...)
		s.recs = append(s.recs, r)
	}
	return nil
}

// UserHasRole implements Recorder by scanning every record.
func (s *LinearStore) UserHasRole(user rbac.UserID, pattern bctx.Name, role rbac.RoleName) (bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, rec := range s.recs {
		if rec.User == user && rec.HasRole(role) && matchPattern(pattern, rec) {
			return true, nil
		}
	}
	return false, nil
}

// UserHasPrivilege implements Recorder by scanning every record.
func (s *LinearStore) UserHasPrivilege(user rbac.UserID, pattern bctx.Name, p rbac.Permission) (bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, rec := range s.recs {
		if rec.User == user && rec.Operation == p.Operation && rec.Target == p.Object && matchPattern(pattern, rec) {
			return true, nil
		}
	}
	return false, nil
}

// CountUserRole implements Recorder by scanning every record.
func (s *LinearStore) CountUserRole(user rbac.UserID, pattern bctx.Name, role rbac.RoleName, max int) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, rec := range s.recs {
		if rec.User == user && rec.HasRole(role) && matchPattern(pattern, rec) {
			n++
			if max > 0 && n >= max {
				break
			}
		}
	}
	return n, nil
}

// CountUserPrivilege implements Recorder by scanning every record.
func (s *LinearStore) CountUserPrivilege(user rbac.UserID, pattern bctx.Name, p rbac.Permission, max int) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, rec := range s.recs {
		if rec.User == user && rec.Operation == p.Operation && rec.Target == p.Object && matchPattern(pattern, rec) {
			n++
			if max > 0 && n >= max {
				break
			}
		}
	}
	return n, nil
}

// ContextActive implements Recorder by scanning every record.
func (s *LinearStore) ContextActive(pattern bctx.Name) (bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, rec := range s.recs {
		if matchPattern(pattern, rec) {
			return true, nil
		}
	}
	return false, nil
}

// PurgeContext implements Recorder.
func (s *LinearStore) PurgeContext(pattern bctx.Name) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	kept := s.recs[:0]
	removed := 0
	for _, rec := range s.recs {
		if matchPattern(pattern, rec) {
			removed++
			continue
		}
		kept = append(kept, rec)
	}
	s.recs = kept
	return removed, nil
}

// Len implements Recorder.
func (s *LinearStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.recs)
}
