package adi

import (
	"sort"

	"msod/internal/bctx"
	"msod/internal/rbac"
)

// Browser is the read-only introspection surface of a retained-ADI
// store: enough to enumerate who holds history in which context
// instances without exposing any mutation path. All four store
// implementations (Store, LinearStore, ShardedStore, DurableStore)
// satisfy it; internal/inspect builds the /v1/state API on top.
type Browser interface {
	// UserRecords returns copies of the user's records whose context
	// instance falls within pattern, in insertion order.
	UserRecords(user rbac.UserID, pattern bctx.Name) []Record
	// Instances returns the distinct context instances that currently
	// hold retained records, sorted by name.
	Instances() []bctx.Name
	// UserIDs returns the distinct users with retained records, sorted.
	UserIDs() []rbac.UserID
}

var (
	_ Browser = (*Store)(nil)
	_ Browser = (*LinearStore)(nil)
	_ Browser = (*ShardedStore)(nil)
	_ Browser = (*DurableStore)(nil)
)

// Instances implements Browser from the context reference index, so it
// never scans records.
func (s *Store) Instances() []bctx.Name {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]bctx.Name, 0, len(s.ctxName))
	for _, n := range s.ctxName {
		out = append(out, n)
	}
	sortInstances(out)
	return out
}

// UserIDs implements Browser.
func (s *Store) UserIDs() []rbac.UserID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]rbac.UserID, 0, len(s.byUser))
	for u := range s.byUser {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// UserRecords implements Browser by scanning every record (the linear
// store has no per-user index to use).
func (s *LinearStore) UserRecords(user rbac.UserID, pattern bctx.Name) []Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Record
	for _, rec := range s.recs {
		if rec.User == user && matchPattern(pattern, rec) {
			out = append(out, rec)
		}
	}
	return out
}

// Instances implements Browser.
func (s *LinearStore) Instances() []bctx.Name {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seen := make(map[string]bool)
	var out []bctx.Name
	for _, rec := range s.recs {
		if key := rec.Context.Key(); !seen[key] {
			seen[key] = true
			out = append(out, rec.Context)
		}
	}
	sortInstances(out)
	return out
}

// UserIDs implements Browser.
func (s *LinearStore) UserIDs() []rbac.UserID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seen := make(map[rbac.UserID]bool)
	var out []rbac.UserID
	for _, rec := range s.recs {
		if !seen[rec.User] {
			seen[rec.User] = true
			out = append(out, rec.User)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// UserRecords implements Browser on the user's shard.
func (s *ShardedStore) UserRecords(user rbac.UserID, pattern bctx.Name) []Record {
	return s.shardFor(user).UserRecords(user, pattern)
}

// Instances implements Browser as the deduplicated union of every
// shard's instances (an instance spans shards when different users act
// in it).
func (s *ShardedStore) Instances() []bctx.Name {
	seen := make(map[string]bool)
	var out []bctx.Name
	for _, shard := range s.shards {
		for _, n := range shard.Instances() {
			if key := n.Key(); !seen[key] {
				seen[key] = true
				out = append(out, n)
			}
		}
	}
	sortInstances(out)
	return out
}

// UserIDs implements Browser (user buckets never span shards, so the
// concatenation has no duplicates).
func (s *ShardedStore) UserIDs() []rbac.UserID {
	var out []rbac.UserID
	for _, shard := range s.shards {
		out = append(out, shard.UserIDs()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// UserRecords implements Browser.
func (ds *DurableStore) UserRecords(user rbac.UserID, pattern bctx.Name) []Record {
	return ds.mem.UserRecords(user, pattern)
}

// Instances implements Browser.
func (ds *DurableStore) Instances() []bctx.Name { return ds.mem.Instances() }

// UserIDs implements Browser.
func (ds *DurableStore) UserIDs() []rbac.UserID { return ds.mem.UserIDs() }

// BrowserFor returns the introspection surface of a store, if it has
// one: either the store implements Browser itself, or it is one of the
// known wrappers. The second return is false for stores with no
// read-only browse surface.
func BrowserFor(store Recorder) (Browser, bool) {
	b, ok := store.(Browser)
	return b, ok
}

func sortInstances(names []bctx.Name) {
	sort.Slice(names, func(i, j int) bool { return names[i].Key() < names[j].Key() })
}
