package rbac

import (
	"errors"
	"testing"
)

func mustAdd(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// bankModel builds the Example 1 universe: teller/auditor roles over a
// cash-processing object set.
func bankModel(t *testing.T) *Model {
	t.Helper()
	m := NewModel()
	mustAdd(t, m.AddRole("Teller"))
	mustAdd(t, m.AddRole("Auditor"))
	mustAdd(t, m.AddUser("alice"))
	mustAdd(t, m.AddUser("bob"))
	mustAdd(t, m.GrantPermission("Teller", Permission{"HandleCash", "till"}))
	mustAdd(t, m.GrantPermission("Auditor", Permission{"Audit", "ledger"}))
	return m
}

func TestAddDuplicates(t *testing.T) {
	m := bankModel(t)
	if err := m.AddRole("Teller"); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate role: %v", err)
	}
	if err := m.AddUser("alice"); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate user: %v", err)
	}
	mustAdd(t, m.AssignRole("alice", "Teller"))
	if err := m.AssignRole("alice", "Teller"); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate assignment: %v", err)
	}
	if err := m.GrantPermission("Teller", Permission{"HandleCash", "till"}); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate permission: %v", err)
	}
}

func TestUnknownEntities(t *testing.T) {
	m := NewModel()
	if err := m.AssignRole("ghost", "Teller"); !errors.Is(err, ErrNotFound) {
		t.Errorf("assign to unknown user: %v", err)
	}
	mustAdd(t, m.AddUser("u"))
	if err := m.AssignRole("u", "ghostrole"); !errors.Is(err, ErrNotFound) {
		t.Errorf("assign unknown role: %v", err)
	}
	if err := m.GrantPermission("ghostrole", Permission{"op", "obj"}); !errors.Is(err, ErrNotFound) {
		t.Errorf("grant to unknown role: %v", err)
	}
	if err := m.DeassignRole("u", "ghostrole"); !errors.Is(err, ErrNotFound) {
		t.Errorf("deassign missing: %v", err)
	}
	if err := m.RevokePermission("ghostrole", Permission{"op", "obj"}); !errors.Is(err, ErrNotFound) {
		t.Errorf("revoke missing: %v", err)
	}
}

func TestSSDBlocksConflictingAssignment(t *testing.T) {
	m := bankModel(t)
	mustAdd(t, m.AddSSD(SoDSet{Name: "teller-auditor", Roles: []RoleName{"Teller", "Auditor"}, Cardinality: 2}))
	mustAdd(t, m.AssignRole("alice", "Teller"))
	if err := m.AssignRole("alice", "Auditor"); !errors.Is(err, ErrSSDViolation) {
		t.Fatalf("expected SSD violation, got %v", err)
	}
	// Failed assignment must not stick.
	if got := m.AssignedRoles("alice"); len(got) != 1 || got[0] != "Teller" {
		t.Errorf("AssignedRoles after failed assign = %v", got)
	}
	// The other user can still take Auditor.
	mustAdd(t, m.AssignRole("bob", "Auditor"))
}

func TestSSDSequencedReassignmentIsInvisible(t *testing.T) {
	// The paper's Example 1 failure mode: the user drops Teller, later
	// gains Auditor — standard SSD sees no violation even though the same
	// person handled cash earlier in the audit period.
	m := bankModel(t)
	mustAdd(t, m.AddSSD(SoDSet{Name: "teller-auditor", Roles: []RoleName{"Teller", "Auditor"}, Cardinality: 2}))
	mustAdd(t, m.AssignRole("alice", "Teller"))
	mustAdd(t, m.DeassignRole("alice", "Teller"))
	if err := m.AssignRole("alice", "Auditor"); err != nil {
		t.Fatalf("SSD unexpectedly blocked sequential reassignment: %v", err)
	}
}

func TestAddSSDRejectsExistingViolation(t *testing.T) {
	m := bankModel(t)
	mustAdd(t, m.AssignRole("alice", "Teller"))
	mustAdd(t, m.AssignRole("alice", "Auditor"))
	err := m.AddSSD(SoDSet{Name: "late", Roles: []RoleName{"Teller", "Auditor"}, Cardinality: 2})
	if !errors.Is(err, ErrSSDViolation) {
		t.Fatalf("expected ErrSSDViolation, got %v", err)
	}
}

func TestSoDSetValidation(t *testing.T) {
	cases := []SoDSet{
		{Name: "one-role", Roles: []RoleName{"A"}, Cardinality: 2},
		{Name: "card-1", Roles: []RoleName{"A", "B"}, Cardinality: 1},
		{Name: "card-big", Roles: []RoleName{"A", "B"}, Cardinality: 3},
	}
	for _, s := range cases {
		if err := s.Validate(); !errors.Is(err, ErrBadCardinality) {
			t.Errorf("%s: expected ErrBadCardinality, got %v", s.Name, err)
		}
	}
	dup := SoDSet{Name: "dup", Roles: []RoleName{"A", "A"}, Cardinality: 2}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate role in set accepted")
	}
	ok := SoDSet{Name: "ok", Roles: []RoleName{"A", "B", "C"}, Cardinality: 2}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid set rejected: %v", err)
	}
}

func TestHierarchyInheritance(t *testing.T) {
	m := NewModel()
	for _, r := range []RoleName{"Employee", "Manager", "Director"} {
		mustAdd(t, m.AddRole(r))
	}
	mustAdd(t, m.AddInheritance("Manager", "Employee"))
	mustAdd(t, m.AddInheritance("Director", "Manager"))
	mustAdd(t, m.GrantPermission("Employee", Permission{"Enter", "building"}))
	mustAdd(t, m.GrantPermission("Manager", Permission{"Approve", "expense"}))

	mustAdd(t, m.AddUser("dana"))
	mustAdd(t, m.AssignRole("dana", "Director"))

	auth := m.AuthorizedRoles("dana")
	if len(auth) != 3 {
		t.Fatalf("AuthorizedRoles = %v, want 3 roles", auth)
	}
	if !m.RolesPermit([]RoleName{"Director"}, Permission{"Enter", "building"}) {
		t.Error("Director should inherit Employee's permission transitively")
	}
	if !m.RolesPermit([]RoleName{"Director"}, Permission{"Approve", "expense"}) {
		t.Error("Director should inherit Manager's permission")
	}
	if m.RolesPermit([]RoleName{"Employee"}, Permission{"Approve", "expense"}) {
		t.Error("inheritance must not flow downwards")
	}
	perms := m.RolePermissions("Director")
	if len(perms) != 2 {
		t.Errorf("RolePermissions(Director) = %v", perms)
	}
}

func TestHierarchyCycleRejected(t *testing.T) {
	m := NewModel()
	for _, r := range []RoleName{"A", "B", "C"} {
		mustAdd(t, m.AddRole(r))
	}
	mustAdd(t, m.AddInheritance("A", "B"))
	mustAdd(t, m.AddInheritance("B", "C"))
	if err := m.AddInheritance("C", "A"); !errors.Is(err, ErrCycle) {
		t.Errorf("cycle edge: %v", err)
	}
	if err := m.AddInheritance("A", "A"); !errors.Is(err, ErrCycle) {
		t.Errorf("self edge: %v", err)
	}
	if err := m.AddInheritance("A", "ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown junior: %v", err)
	}
}

func TestSSDWithHierarchy(t *testing.T) {
	// ANSI hierarchical SSD: authorized (inherited) roles count, so
	// assigning a senior role that inherits a conflicting junior is
	// refused.
	m := NewModel()
	for _, r := range []RoleName{"Teller", "Auditor", "HeadCashier"} {
		mustAdd(t, m.AddRole(r))
	}
	mustAdd(t, m.AddInheritance("HeadCashier", "Teller"))
	mustAdd(t, m.AddSSD(SoDSet{Name: "ta", Roles: []RoleName{"Teller", "Auditor"}, Cardinality: 2}))
	mustAdd(t, m.AddUser("u"))
	mustAdd(t, m.AssignRole("u", "Auditor"))
	if err := m.AssignRole("u", "HeadCashier"); !errors.Is(err, ErrSSDViolation) {
		t.Fatalf("expected hierarchical SSD violation, got %v", err)
	}
}
