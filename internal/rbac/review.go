package rbac

import "sort"

// This file implements the ANSI RBAC review functions (the standard's
// advanced review API): who holds a role, what a user may do, and which
// roles carry a permission. They are read-only and primarily serve
// administrative tooling and the experiments.

// AssignedUsers returns the users directly assigned the role, sorted
// (ANSI: AssignedUsers).
func (m *Model) AssignedUsers(r RoleName) []UserID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []UserID
	for u, roles := range m.ua {
		if roles[r] {
			out = append(out, u)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AuthorizedUsers returns the users authorized for the role directly or
// through inheritance (ANSI: AuthorizedUsers).
func (m *Model) AuthorizedUsers(r RoleName) []UserID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []UserID
	for u, roles := range m.ua {
		if m.closureLocked(roles)[r] {
			out = append(out, u)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// UserPermissions returns every permission the user's authorized roles
// grant, sorted (ANSI: UserPermissions).
func (m *Model) UserPermissions(u UserID) []Permission {
	m.mu.RLock()
	defer m.mu.RUnlock()
	set := make(map[Permission]bool)
	for r := range m.closureLocked(m.ua[u]) {
		for p := range m.pa[r] {
			set[p] = true
		}
	}
	out := make([]Permission, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// PermissionRoles returns the roles that grant the permission, directly
// or through an inherited junior, sorted (ANSI: PermissionRoles).
func (m *Model) PermissionRoles(p Permission) []RoleName {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []RoleName
	for r := range m.roles {
		if m.rolesPermitLocked(map[RoleName]bool{r: true}, p) {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SessionPermissions returns the permissions available to the session's
// active roles, sorted (ANSI: SessionPermissions).
func (m *Model) SessionPermissions(id SessionID) ([]Permission, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	s, ok := m.sessions[id]
	if !ok {
		return nil, ErrNotFound
	}
	set := make(map[Permission]bool)
	for r := range m.closureLocked(s.active) {
		for p := range m.pa[r] {
			set[p] = true
		}
	}
	out := make([]Permission, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out, nil
}
