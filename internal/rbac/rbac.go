// Package rbac implements the ANSI INCITS 359-2004 Role Based Access
// Control reference model (Figure 1 of the MSoD paper): core RBAC,
// hierarchical RBAC, and the static (SSD) and dynamic (DSD) separation of
// duty relations.
//
// It is the substrate the MSoD engine extends: the paper's point is that
// SSD and DSD, as defined here, cannot express multi-session constraints,
// and the experiments in this repository (E3 in particular) exercise this
// package as the baseline.
package rbac

import (
	"errors"
	"fmt"
)

// UserID identifies a user. MSoD requires this to be stable across
// sessions (§6, limitation 1).
type UserID string

// RoleName identifies a role, e.g. "Teller".
type RoleName string

// Operation is an action name, e.g. "prepareCheck".
type Operation string

// Object identifies a protected resource, typically by URI in the
// paper's policies, e.g. "http://www.myTaxOffice.com/Check".
type Object string

// Permission is the right to perform an Operation on an Object; ANSI
// RBAC calls this a permission, PERMIS calls it a privilege.
type Permission struct {
	Operation Operation
	Object    Object
}

// String renders the permission as "operation@object".
func (p Permission) String() string {
	return string(p.Operation) + "@" + string(p.Object)
}

// Sentinel errors returned by the model.
var (
	// ErrExists is returned when creating an entity that already exists.
	ErrExists = errors.New("rbac: already exists")
	// ErrNotFound is returned when referencing an unknown entity.
	ErrNotFound = errors.New("rbac: not found")
	// ErrSSDViolation is returned when a role assignment would violate a
	// static separation-of-duty constraint.
	ErrSSDViolation = errors.New("rbac: static separation of duty violation")
	// ErrDSDViolation is returned when a role activation would violate a
	// dynamic separation-of-duty constraint.
	ErrDSDViolation = errors.New("rbac: dynamic separation of duty violation")
	// ErrNotAssigned is returned when activating a role the user is not
	// authorized for.
	ErrNotAssigned = errors.New("rbac: role not assigned to user")
	// ErrCycle is returned when a role-hierarchy edge would create a cycle.
	ErrCycle = errors.New("rbac: role hierarchy cycle")
	// ErrBadCardinality is returned for SoD sets with cardinality outside
	// 2..len(set) or sets with fewer than two roles.
	ErrBadCardinality = errors.New("rbac: invalid separation of duty cardinality")
)

// SoDSet is an m-out-of-n mutually exclusive role set: a user may be
// assigned (SSD) or may activate (DSD) at most Cardinality-1 roles from
// Roles. This is the MER({r1..rn}, m) constraint of §2.3.
type SoDSet struct {
	// Name labels the constraint for diagnostics.
	Name string
	// Roles is the conflicting role set (n >= 2).
	Roles []RoleName
	// Cardinality is m: holding/activating m or more of Roles is
	// forbidden (1 < m <= n).
	Cardinality int
}

// Validate checks the ANSI constraints on an SoD set definition.
func (s SoDSet) Validate() error {
	if len(s.Roles) < 2 {
		return fmt.Errorf("%w: set %q has %d roles, need >= 2", ErrBadCardinality, s.Name, len(s.Roles))
	}
	if s.Cardinality < 2 || s.Cardinality > len(s.Roles) {
		return fmt.Errorf("%w: set %q cardinality %d outside 2..%d", ErrBadCardinality, s.Name, s.Cardinality, len(s.Roles))
	}
	seen := make(map[RoleName]bool, len(s.Roles))
	for _, r := range s.Roles {
		if seen[r] {
			return fmt.Errorf("rbac: set %q lists role %q twice", s.Name, r)
		}
		seen[r] = true
	}
	return nil
}

// countMembers returns how many of the roles in set.Roles appear in have.
func (s SoDSet) countMembers(have map[RoleName]bool) int {
	n := 0
	for _, r := range s.Roles {
		if have[r] {
			n++
		}
	}
	return n
}
