package rbac

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func sessionModel(t *testing.T) *Model {
	t.Helper()
	m := NewModel()
	for _, r := range []RoleName{"Clerk", "Manager", "Supervisor"} {
		mustAdd(t, m.AddRole(r))
	}
	mustAdd(t, m.AddUser("carol"))
	mustAdd(t, m.AssignRole("carol", "Clerk"))
	mustAdd(t, m.AssignRole("carol", "Manager"))
	mustAdd(t, m.GrantPermission("Clerk", Permission{"prepareCheck", "check"}))
	mustAdd(t, m.GrantPermission("Manager", Permission{"approveCheck", "check"}))
	return m
}

func TestSessionLifecycle(t *testing.T) {
	m := sessionModel(t)
	sid, err := m.CreateSession("carol")
	if err != nil {
		t.Fatal(err)
	}
	if m.SessionCount() != 1 {
		t.Errorf("SessionCount = %d", m.SessionCount())
	}
	mustAdd(t, m.AddActiveRole(sid, "Clerk"))
	roles, err := m.ActiveRoles(sid)
	if err != nil || len(roles) != 1 || roles[0] != "Clerk" {
		t.Fatalf("ActiveRoles = %v, %v", roles, err)
	}
	ok, err := m.CheckAccess(sid, "prepareCheck", "check")
	if err != nil || !ok {
		t.Errorf("CheckAccess clerk op = %v, %v", ok, err)
	}
	ok, err = m.CheckAccess(sid, "approveCheck", "check")
	if err != nil || ok {
		t.Errorf("CheckAccess manager op without manager active = %v, %v", ok, err)
	}
	mustAdd(t, m.DropActiveRole(sid, "Clerk"))
	ok, _ = m.CheckAccess(sid, "prepareCheck", "check")
	if ok {
		t.Error("access after role dropped")
	}
	mustAdd(t, m.DeleteSession(sid))
	if _, err := m.ActiveRoles(sid); !errors.Is(err, ErrNotFound) {
		t.Errorf("ActiveRoles after delete: %v", err)
	}
	if _, err := m.CheckAccess(sid, "x", "y"); !errors.Is(err, ErrNotFound) {
		t.Errorf("CheckAccess after delete: %v", err)
	}
}

func TestSessionErrors(t *testing.T) {
	m := sessionModel(t)
	if _, err := m.CreateSession("ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("CreateSession(ghost): %v", err)
	}
	sid, _ := m.CreateSession("carol")
	if err := m.AddActiveRole(sid, "Supervisor"); !errors.Is(err, ErrNotAssigned) {
		t.Errorf("activating unassigned role: %v", err)
	}
	mustAdd(t, m.AddActiveRole(sid, "Clerk"))
	if err := m.AddActiveRole(sid, "Clerk"); !errors.Is(err, ErrExists) {
		t.Errorf("re-activating role: %v", err)
	}
	if err := m.DropActiveRole(sid, "Manager"); !errors.Is(err, ErrNotFound) {
		t.Errorf("dropping inactive role: %v", err)
	}
	if err := m.AddActiveRole(999, "Clerk"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown session: %v", err)
	}
	if err := m.DeleteSession(999); !errors.Is(err, ErrNotFound) {
		t.Errorf("delete unknown session: %v", err)
	}
}

func TestDSDBlocksSimultaneousActivation(t *testing.T) {
	m := sessionModel(t)
	mustAdd(t, m.AddDSD(SoDSet{Name: "cm", Roles: []RoleName{"Clerk", "Manager"}, Cardinality: 2}))
	sid, _ := m.CreateSession("carol")
	mustAdd(t, m.AddActiveRole(sid, "Clerk"))
	if err := m.AddActiveRole(sid, "Manager"); !errors.Is(err, ErrDSDViolation) {
		t.Fatalf("expected DSD violation, got %v", err)
	}
	// Failed activation must not stick.
	roles, _ := m.ActiveRoles(sid)
	if len(roles) != 1 {
		t.Errorf("active roles after failed activation = %v", roles)
	}
}

func TestDSDBlindAcrossSessions(t *testing.T) {
	// The paper's core observation (Example 2): DSD only constrains one
	// session. The same user can activate Clerk in session 1 and Manager
	// in session 2 without violating ANSI DSD.
	m := sessionModel(t)
	mustAdd(t, m.AddDSD(SoDSet{Name: "cm", Roles: []RoleName{"Clerk", "Manager"}, Cardinality: 2}))
	s1, _ := m.CreateSession("carol")
	s2, _ := m.CreateSession("carol")
	mustAdd(t, m.AddActiveRole(s1, "Clerk"))
	if err := m.AddActiveRole(s2, "Manager"); err != nil {
		t.Fatalf("DSD unexpectedly spans sessions: %v", err)
	}
}

func TestDSDWithHierarchy(t *testing.T) {
	m := NewModel()
	for _, r := range []RoleName{"Clerk", "Manager", "Lead"} {
		mustAdd(t, m.AddRole(r))
	}
	mustAdd(t, m.AddInheritance("Lead", "Manager"))
	mustAdd(t, m.AddDSD(SoDSet{Name: "cm", Roles: []RoleName{"Clerk", "Manager"}, Cardinality: 2}))
	mustAdd(t, m.AddUser("u"))
	mustAdd(t, m.AssignRole("u", "Clerk"))
	mustAdd(t, m.AssignRole("u", "Lead"))
	sid, _ := m.CreateSession("u")
	mustAdd(t, m.AddActiveRole(sid, "Clerk"))
	if err := m.AddActiveRole(sid, "Lead"); !errors.Is(err, ErrDSDViolation) {
		t.Fatalf("activating a senior of a conflicting role should violate DSD: %v", err)
	}
}

func TestConcurrentSessions(t *testing.T) {
	m := sessionModel(t)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				sid, err := m.CreateSession("carol")
				if err != nil {
					t.Error(err)
					return
				}
				if err := m.AddActiveRole(sid, "Clerk"); err != nil {
					t.Error(err)
					return
				}
				if ok, err := m.CheckAccess(sid, "prepareCheck", "check"); err != nil || !ok {
					t.Errorf("CheckAccess: %v %v", ok, err)
					return
				}
				if err := m.DeleteSession(sid); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if m.SessionCount() != 0 {
		t.Errorf("leaked sessions: %d", m.SessionCount())
	}
}

// Property: under random assign/activate sequences, no user session ever
// holds >= cardinality active roles from a DSD set, and no user is ever
// authorized for >= cardinality roles of an SSD set.
func TestQuickSoDInvariant(t *testing.T) {
	roles := []RoleName{"R0", "R1", "R2", "R3", "R4"}
	f := func(seed int64, ops []byte) bool {
		r := rand.New(rand.NewSource(seed))
		m := NewModel()
		for _, rl := range roles {
			if err := m.AddRole(rl); err != nil {
				return false
			}
		}
		if err := m.AddUser("u"); err != nil {
			return false
		}
		ssd := SoDSet{Name: "s", Roles: []RoleName{"R0", "R1", "R2"}, Cardinality: 2}
		dsd := SoDSet{Name: "d", Roles: []RoleName{"R3", "R4"}, Cardinality: 2}
		if err := m.AddSSD(ssd); err != nil {
			return false
		}
		if err := m.AddDSD(dsd); err != nil {
			return false
		}
		sid, err := m.CreateSession("u")
		if err != nil {
			return false
		}
		for _, op := range ops {
			role := roles[r.Intn(len(roles))]
			switch op % 3 {
			case 0:
				_ = m.AssignRole("u", role) // may fail; that is the point
			case 1:
				_ = m.DeassignRole("u", role)
			case 2:
				_ = m.AddActiveRole(sid, role)
			}
			// Invariants.
			auth := map[RoleName]bool{}
			for _, rl := range m.AuthorizedRoles("u") {
				auth[rl] = true
			}
			if ssd.countMembers(auth) >= ssd.Cardinality {
				return false
			}
			act, err := m.ActiveRoles(sid)
			if err != nil {
				return false
			}
			actSet := map[RoleName]bool{}
			for _, rl := range act {
				actSet[rl] = true
			}
			if dsd.countMembers(actSet) >= dsd.Cardinality {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
