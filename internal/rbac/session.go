package rbac

import (
	"fmt"
	"sort"
)

// SessionID identifies a user access control session.
type SessionID uint64

// Session is an ANSI RBAC session: a mapping of one user to an activated
// subset of that user's authorized roles. Sessions must be accessed via
// their Model, which synchronises them.
type Session struct {
	id     SessionID
	user   UserID
	active map[RoleName]bool
}

// ID returns the session identifier.
func (s *Session) ID() SessionID { return s.id }

// User returns the session's user.
func (s *Session) User() UserID { return s.user }

// CreateSession starts a session for the user with no active roles.
func (m *Model) CreateSession(u UserID) (SessionID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.users[u] {
		return 0, fmt.Errorf("%w: user %q", ErrNotFound, u)
	}
	m.nextSess++
	id := SessionID(m.nextSess)
	m.sessions[id] = &Session{id: id, user: u, active: make(map[RoleName]bool)}
	return id, nil
}

// DeleteSession ends a session, dropping its active roles.
func (m *Model) DeleteSession(id SessionID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.sessions[id]; !ok {
		return fmt.Errorf("%w: session %d", ErrNotFound, id)
	}
	delete(m.sessions, id)
	return nil
}

// AddActiveRole activates a role in the session. The role must be in the
// user's authorized role set, and the activation is refused with
// ErrDSDViolation if the session's active roles (plus their inherited
// juniors, per the ANSI hierarchical-DSD semantics) would then contain
// Cardinality or more roles of any DSD set.
//
// Note the scope: DSD is evaluated against this one session only. The
// MSoD paper's Example 2 relies on exactly this limitation — a user who
// activates conflicting roles in two different sessions is never caught.
func (m *Model) AddActiveRole(id SessionID, r RoleName) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	if !ok {
		return fmt.Errorf("%w: session %d", ErrNotFound, id)
	}
	authorized := m.closureLocked(m.ua[s.user])
	if !authorized[r] {
		return fmt.Errorf("%w: user %q role %q", ErrNotAssigned, s.user, r)
	}
	if s.active[r] {
		return fmt.Errorf("%w: session %d role %q already active", ErrExists, id, r)
	}
	s.active[r] = true
	activeClosure := m.closureLocked(s.active)
	for _, set := range m.dsd {
		if n := set.countMembers(activeClosure); n >= set.Cardinality {
			delete(s.active, r)
			return fmt.Errorf("%w: activating %q in session %d gives %d roles of set %q (forbidden cardinality %d)",
				ErrDSDViolation, r, id, n, set.Name, set.Cardinality)
		}
	}
	return nil
}

// DropActiveRole deactivates a role in the session.
func (m *Model) DropActiveRole(id SessionID, r RoleName) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	if !ok {
		return fmt.Errorf("%w: session %d", ErrNotFound, id)
	}
	if !s.active[r] {
		return fmt.Errorf("%w: session %d role %q not active", ErrNotFound, id, r)
	}
	delete(s.active, r)
	return nil
}

// ActiveRoles returns the session's active roles, sorted.
func (m *Model) ActiveRoles(id SessionID) ([]RoleName, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	s, ok := m.sessions[id]
	if !ok {
		return nil, fmt.Errorf("%w: session %d", ErrNotFound, id)
	}
	return sortedRoles(s.active), nil
}

// CheckAccess implements the ANSI CheckAccess function: it reports
// whether the session may perform the operation on the object, i.e.
// whether some active role (or an inherited junior) holds the
// permission.
func (m *Model) CheckAccess(id SessionID, op Operation, obj Object) (bool, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	s, ok := m.sessions[id]
	if !ok {
		return false, fmt.Errorf("%w: session %d", ErrNotFound, id)
	}
	return m.rolesPermitLocked(s.active, Permission{Operation: op, Object: obj}), nil
}

// SessionCount returns the number of live sessions.
func (m *Model) SessionCount() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.sessions)
}

// Sessions returns the live session IDs, sorted.
func (m *Model) Sessions() []SessionID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]SessionID, 0, len(m.sessions))
	for id := range m.sessions {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
