package rbac

import (
	"errors"
	"reflect"
	"testing"
)

// reviewModel: Director > Manager > Employee; two users.
func reviewModel(t *testing.T) *Model {
	t.Helper()
	m := NewModel()
	for _, r := range []RoleName{"Employee", "Manager", "Director"} {
		mustAdd(t, m.AddRole(r))
	}
	mustAdd(t, m.AddInheritance("Manager", "Employee"))
	mustAdd(t, m.AddInheritance("Director", "Manager"))
	mustAdd(t, m.GrantPermission("Employee", Permission{"Enter", "building"}))
	mustAdd(t, m.GrantPermission("Manager", Permission{"Approve", "expense"}))
	mustAdd(t, m.AddUser("ann"))
	mustAdd(t, m.AddUser("bob"))
	mustAdd(t, m.AssignRole("ann", "Director"))
	mustAdd(t, m.AssignRole("bob", "Employee"))
	return m
}

func TestAssignedAndAuthorizedUsers(t *testing.T) {
	m := reviewModel(t)
	if got := m.AssignedUsers("Employee"); !reflect.DeepEqual(got, []UserID{"bob"}) {
		t.Errorf("AssignedUsers(Employee) = %v", got)
	}
	if got := m.AssignedUsers("Director"); !reflect.DeepEqual(got, []UserID{"ann"}) {
		t.Errorf("AssignedUsers(Director) = %v", got)
	}
	// ann is authorized for Employee through the hierarchy.
	if got := m.AuthorizedUsers("Employee"); !reflect.DeepEqual(got, []UserID{"ann", "bob"}) {
		t.Errorf("AuthorizedUsers(Employee) = %v", got)
	}
	if got := m.AuthorizedUsers("Director"); !reflect.DeepEqual(got, []UserID{"ann"}) {
		t.Errorf("AuthorizedUsers(Director) = %v", got)
	}
	if got := m.AssignedUsers("ghost"); len(got) != 0 {
		t.Errorf("AssignedUsers(ghost) = %v", got)
	}
}

func TestUserPermissions(t *testing.T) {
	m := reviewModel(t)
	ann := m.UserPermissions("ann")
	if len(ann) != 2 {
		t.Fatalf("ann permissions = %v", ann)
	}
	bob := m.UserPermissions("bob")
	if len(bob) != 1 || bob[0].Operation != "Enter" {
		t.Fatalf("bob permissions = %v", bob)
	}
	if got := m.UserPermissions("ghost"); len(got) != 0 {
		t.Errorf("ghost permissions = %v", got)
	}
}

func TestPermissionRoles(t *testing.T) {
	m := reviewModel(t)
	got := m.PermissionRoles(Permission{"Enter", "building"})
	want := []RoleName{"Director", "Employee", "Manager"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("PermissionRoles(Enter) = %v, want %v", got, want)
	}
	got = m.PermissionRoles(Permission{"Approve", "expense"})
	want = []RoleName{"Director", "Manager"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("PermissionRoles(Approve) = %v, want %v", got, want)
	}
	if got := m.PermissionRoles(Permission{"Fly", "moon"}); len(got) != 0 {
		t.Errorf("PermissionRoles(Fly) = %v", got)
	}
}

func TestSessionPermissions(t *testing.T) {
	m := reviewModel(t)
	sid, err := m.CreateSession("ann")
	if err != nil {
		t.Fatal(err)
	}
	// No active roles yet.
	ps, err := m.SessionPermissions(sid)
	if err != nil || len(ps) != 0 {
		t.Fatalf("empty session permissions = %v, %v", ps, err)
	}
	mustAdd(t, m.AddActiveRole(sid, "Manager"))
	ps, err = m.SessionPermissions(sid)
	if err != nil || len(ps) != 2 {
		t.Fatalf("manager session permissions = %v, %v", ps, err)
	}
	if _, err := m.SessionPermissions(999); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown session: %v", err)
	}
}

func TestClosure(t *testing.T) {
	m := reviewModel(t)
	got := m.Closure([]RoleName{"Director"})
	want := []RoleName{"Director", "Employee", "Manager"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Closure(Director) = %v, want %v", got, want)
	}
	if got := m.Closure(nil); len(got) != 0 {
		t.Errorf("Closure(nil) = %v", got)
	}
}
