package rbac

import (
	"fmt"
	"sort"
	"sync"
)

// Model is an ANSI RBAC database: users, roles, permissions, the UA and
// PA relations, a role hierarchy, SSD/DSD constraint sets and live
// sessions. The zero value is not usable; use NewModel.
//
// Model is safe for concurrent use.
type Model struct {
	mu sync.RWMutex

	roles map[RoleName]bool
	users map[UserID]bool

	// ua maps user -> directly assigned roles.
	ua map[UserID]map[RoleName]bool
	// pa maps role -> directly granted permissions.
	pa map[RoleName]map[Permission]bool
	// juniors maps a role to the roles it inherits from (r -> juniors:
	// r's members also get the juniors' permissions).
	juniors map[RoleName]map[RoleName]bool

	ssd []SoDSet
	dsd []SoDSet

	sessions map[SessionID]*Session
	nextSess uint64
}

// NewModel returns an empty RBAC model.
func NewModel() *Model {
	return &Model{
		roles:    make(map[RoleName]bool),
		users:    make(map[UserID]bool),
		ua:       make(map[UserID]map[RoleName]bool),
		pa:       make(map[RoleName]map[Permission]bool),
		juniors:  make(map[RoleName]map[RoleName]bool),
		sessions: make(map[SessionID]*Session),
	}
}

// AddRole creates a role. It fails with ErrExists if present.
func (m *Model) AddRole(r RoleName) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.roles[r] {
		return fmt.Errorf("%w: role %q", ErrExists, r)
	}
	m.roles[r] = true
	return nil
}

// AddUser creates a user. It fails with ErrExists if present.
func (m *Model) AddUser(u UserID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.users[u] {
		return fmt.Errorf("%w: user %q", ErrExists, u)
	}
	m.users[u] = true
	return nil
}

// Roles returns all role names, sorted.
func (m *Model) Roles() []RoleName {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]RoleName, 0, len(m.roles))
	for r := range m.roles {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Users returns all user IDs, sorted.
func (m *Model) Users() []UserID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]UserID, 0, len(m.users))
	for u := range m.users {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AddInheritance records that senior inherits junior: all permissions of
// junior become available to members of senior, and users assigned
// senior are authorized for junior. It rejects unknown roles, self
// edges and edges that would create a cycle.
func (m *Model) AddInheritance(senior, junior RoleName) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.roles[senior] {
		return fmt.Errorf("%w: role %q", ErrNotFound, senior)
	}
	if !m.roles[junior] {
		return fmt.Errorf("%w: role %q", ErrNotFound, junior)
	}
	if senior == junior {
		return fmt.Errorf("%w: %q inherits itself", ErrCycle, senior)
	}
	// Reject if junior already (transitively) inherits senior.
	if m.inheritsLocked(junior, senior) {
		return fmt.Errorf("%w: %q -> %q", ErrCycle, senior, junior)
	}
	js := m.juniors[senior]
	if js == nil {
		js = make(map[RoleName]bool)
		m.juniors[senior] = js
	}
	js[junior] = true
	return nil
}

// inheritsLocked reports whether a transitively inherits b.
func (m *Model) inheritsLocked(a, b RoleName) bool {
	if a == b {
		return true
	}
	seen := map[RoleName]bool{a: true}
	stack := []RoleName{a}
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for j := range m.juniors[r] {
			if j == b {
				return true
			}
			if !seen[j] {
				seen[j] = true
				stack = append(stack, j)
			}
		}
	}
	return false
}

// closureLocked returns the role set reachable from the given roles via
// inheritance, including the roles themselves.
func (m *Model) closureLocked(roles map[RoleName]bool) map[RoleName]bool {
	out := make(map[RoleName]bool, len(roles))
	var stack []RoleName
	for r := range roles {
		out[r] = true
		stack = append(stack, r)
	}
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for j := range m.juniors[r] {
			if !out[j] {
				out[j] = true
				stack = append(stack, j)
			}
		}
	}
	return out
}

// AssignRole adds (user, role) to UA. The assignment is refused with
// ErrSSDViolation if the user's authorized role set (assigned roles plus
// all inherited juniors, per the ANSI hierarchical-SSD semantics) would
// then contain Cardinality or more roles of any SSD set.
func (m *Model) AssignRole(u UserID, r RoleName) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.users[u] {
		return fmt.Errorf("%w: user %q", ErrNotFound, u)
	}
	if !m.roles[r] {
		return fmt.Errorf("%w: role %q", ErrNotFound, r)
	}
	assigned := m.ua[u]
	if assigned == nil {
		assigned = make(map[RoleName]bool)
		m.ua[u] = assigned
	}
	if assigned[r] {
		return fmt.Errorf("%w: user %q role %q", ErrExists, u, r)
	}
	assigned[r] = true
	authorized := m.closureLocked(assigned)
	for _, set := range m.ssd {
		if n := set.countMembers(authorized); n >= set.Cardinality {
			delete(assigned, r)
			return fmt.Errorf("%w: assigning %q to %q gives %d roles of set %q (forbidden cardinality %d)",
				ErrSSDViolation, r, u, n, set.Name, set.Cardinality)
		}
	}
	return nil
}

// DeassignRole removes (user, role) from UA. Active sessions are not
// affected (the ANSI standard leaves this to the implementation; the
// MSoD paper's point is precisely that assignment-time checks are
// insufficient, so we keep the baseline minimal and faithful).
func (m *Model) DeassignRole(u UserID, r RoleName) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.ua[u][r] {
		return fmt.Errorf("%w: user %q role %q", ErrNotFound, u, r)
	}
	delete(m.ua[u], r)
	return nil
}

// AssignedRoles returns the roles directly assigned to the user, sorted.
func (m *Model) AssignedRoles(u UserID) []RoleName {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return sortedRoles(m.ua[u])
}

// AuthorizedRoles returns the user's assigned roles plus every role
// inherited from them, sorted.
func (m *Model) AuthorizedRoles(u UserID) []RoleName {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return sortedRoles(m.closureLocked(m.ua[u]))
}

// Closure returns the given roles plus every role they transitively
// inherit, sorted. The MSoD engine uses it to make MMER constraints
// hierarchy-aware: activating a senior role conflicts like activating
// its juniors.
func (m *Model) Closure(roles []RoleName) []RoleName {
	m.mu.RLock()
	defer m.mu.RUnlock()
	set := make(map[RoleName]bool, len(roles))
	for _, r := range roles {
		set[r] = true
	}
	return sortedRoles(m.closureLocked(set))
}

// GrantPermission adds (role, permission) to PA.
func (m *Model) GrantPermission(r RoleName, p Permission) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.roles[r] {
		return fmt.Errorf("%w: role %q", ErrNotFound, r)
	}
	ps := m.pa[r]
	if ps == nil {
		ps = make(map[Permission]bool)
		m.pa[r] = ps
	}
	if ps[p] {
		return fmt.Errorf("%w: role %q permission %v", ErrExists, r, p)
	}
	ps[p] = true
	return nil
}

// RevokePermission removes (role, permission) from PA.
func (m *Model) RevokePermission(r RoleName, p Permission) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.pa[r][p] {
		return fmt.Errorf("%w: role %q permission %v", ErrNotFound, r, p)
	}
	delete(m.pa[r], p)
	return nil
}

// RolePermissions returns the permissions available to members of the
// role: those granted directly and those of every inherited junior.
func (m *Model) RolePermissions(r RoleName) []Permission {
	m.mu.RLock()
	defer m.mu.RUnlock()
	closure := m.closureLocked(map[RoleName]bool{r: true})
	set := make(map[Permission]bool)
	for cr := range closure {
		for p := range m.pa[cr] {
			set[p] = true
		}
	}
	out := make([]Permission, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// rolesPermitLocked reports whether any of the given roles (or their
// inherited juniors) holds the permission.
func (m *Model) rolesPermitLocked(roles map[RoleName]bool, p Permission) bool {
	for cr := range m.closureLocked(roles) {
		if m.pa[cr][p] {
			return true
		}
	}
	return false
}

// RolesPermit reports whether any of the given roles grants the
// permission, considering inheritance. This is the stateless role-based
// check the PDP uses when it is handed validated roles rather than a
// session.
func (m *Model) RolesPermit(roles []RoleName, p Permission) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	set := make(map[RoleName]bool, len(roles))
	for _, r := range roles {
		set[r] = true
	}
	return m.rolesPermitLocked(set, p)
}

// AddSSD registers a static SoD constraint set. Existing UA assignments
// are checked; registration fails if any user already violates the set.
func (m *Model) AddSSD(set SoDSet) error {
	if err := set.Validate(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for u, assigned := range m.ua {
		if n := set.countMembers(m.closureLocked(assigned)); n >= set.Cardinality {
			return fmt.Errorf("%w: user %q already authorized for %d roles of new set %q",
				ErrSSDViolation, u, n, set.Name)
		}
	}
	m.ssd = append(m.ssd, set)
	return nil
}

// AddDSD registers a dynamic SoD constraint set, enforced at role
// activation time within each session.
func (m *Model) AddDSD(set SoDSet) error {
	if err := set.Validate(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dsd = append(m.dsd, set)
	return nil
}

// SSDSets returns the registered static constraint sets.
func (m *Model) SSDSets() []SoDSet {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]SoDSet(nil), m.ssd...)
}

// DSDSets returns the registered dynamic constraint sets.
func (m *Model) DSDSets() []SoDSet {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]SoDSet(nil), m.dsd...)
}

func sortedRoles(set map[RoleName]bool) []RoleName {
	out := make([]RoleName, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
