package audit

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"msod/internal/fsx"
	"msod/internal/obsv"
)

// Writer appends decision events to HMAC-chained trail segments in a
// directory. Segments are named trail-NNNNNN.log and rotated every
// segmentSize entries (or on Rotate). A Writer reopened over an existing
// directory continues the sequence and the MAC chain of the newest
// segment, so the chain is unbroken across PDP restarts.
//
// Writer is safe for concurrent use.
type Writer struct {
	mu      sync.Mutex
	dir     string
	key     []byte
	segSize int
	fs      fsx.FS

	f       fsx.File
	w       *bufio.Writer
	seq     uint64 // last sequence number written
	lastMAC []byte
	inSeg   int // entries in the current segment
	segIdx  int // index of the current segment
}

// DefaultSegmentSize is the rotation threshold used when NewWriter is
// given a non-positive segment size.
const DefaultSegmentSize = 4096

// NewWriter opens (or creates) the trail directory and positions the
// writer after the last existing entry.
func NewWriter(dir string, key []byte, segmentSize int) (*Writer, error) {
	return NewWriterFS(dir, key, segmentSize, fsx.OS)
}

// NewWriterFS is NewWriter over an injected filesystem: the write path
// (segment opens, appends, the torn-tail truncation at resume) goes
// through fs so fault tests can fail or tear it, while verification
// reads stay on the real filesystem they share with the Reader.
func NewWriterFS(dir string, key []byte, segmentSize int, fs fsx.FS) (*Writer, error) {
	if len(key) == 0 {
		return nil, fmt.Errorf("audit: empty trail key")
	}
	if segmentSize <= 0 {
		segmentSize = DefaultSegmentSize
	}
	if err := fs.MkdirAll(dir, 0o700); err != nil {
		return nil, fmt.Errorf("audit: create trail dir: %w", err)
	}
	w := &Writer{dir: dir, key: append([]byte(nil), key...), segSize: segmentSize, fs: fs, lastMAC: genesisMAC(key)}

	segs, err := Segments(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) > 0 {
		// Resume: verify the newest segment to find the chain head. The
		// chain seed of segment k is the last MAC of segment k-1, so full
		// resumption verifies from genesis; we verify all segments to
		// guarantee a consistent restart (cost measured in E5/E9).
		r := &Reader{dir: dir, key: w.key}
		events, tail, torn, err := r.verifyAllDetail()
		if err != nil {
			return nil, err
		}
		if torn != nil {
			// A crash tore the final entry mid-write. The chain up to the
			// last complete entry verified, so drop the partial bytes and
			// resume from there (the paper's §5.2 reconstruction point).
			path := filepath.Join(dir, torn.seg)
			if err := fs.Truncate(path, torn.off); err != nil {
				return nil, fmt.Errorf("audit: discard torn entry in %s: %w", torn.seg, err)
			}
		}
		w.lastMAC = tail
		if n := len(events); n > 0 {
			w.seq = events[n-1].Seq
		}
		w.segIdx = segmentIndex(segs[len(segs)-1])
		n, err := countLines(filepath.Join(dir, segs[len(segs)-1]))
		if err != nil {
			return nil, err
		}
		w.inSeg = n
	}
	return w, nil
}

// Append logs one event, assigning it the next sequence number (the
// caller's Seq field is overwritten). The entry is flushed to the OS
// before Append returns.
func (w *Writer) Append(ev Event) (uint64, error) {
	return w.append(context.Background(), ev)
}

// AppendCtx is Append carrying a context: when the context holds an
// obsv.Trace and this append crosses the segment boundary, the
// rotation (close, fsync, reopen) is recorded as a SpanAuditRotate
// span nested inside the pipeline's audit span — rotation is the rare
// slow case of an otherwise cheap append, and a retained trace should
// say so. Untraced contexts pay a single nil check.
func (w *Writer) AppendCtx(ctx context.Context, ev Event) (uint64, error) {
	return w.append(ctx, ev)
}

func (w *Writer) append(ctx context.Context, ev Event) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.ensureSegmentLocked(); err != nil {
		return 0, err
	}
	w.seq++
	ev.Seq = w.seq
	mac, err := chainMAC(w.key, w.lastMAC, ev)
	if err != nil {
		return 0, err
	}
	line, err := json.Marshal(entry{Event: ev, MAC: encodeMAC(mac)})
	if err != nil {
		return 0, fmt.Errorf("audit: marshal entry: %w", err)
	}
	if _, err := w.w.Write(append(line, '\n')); err != nil {
		return 0, fmt.Errorf("audit: write entry: %w", err)
	}
	if err := w.w.Flush(); err != nil {
		return 0, fmt.Errorf("audit: flush entry: %w", err)
	}
	w.lastMAC = mac
	w.inSeg++
	if w.inSeg >= w.segSize {
		endRotate := obsv.StartSpan(ctx, obsv.SpanAuditRotate)
		err := w.rotateLocked()
		endRotate()
		if err != nil {
			return 0, err
		}
	}
	return ev.Seq, nil
}

// Rotate closes the current segment so the next Append opens a new one.
func (w *Writer) Rotate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.rotateLocked()
}

// Close flushes and closes the current segment.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.closeSegmentLocked()
}

// Seq returns the last sequence number written.
func (w *Writer) Seq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

func (w *Writer) ensureSegmentLocked() error {
	if w.f != nil {
		return nil
	}
	// Reopen a resumed, partially filled segment; otherwise start fresh.
	if w.segIdx == 0 || w.inSeg == 0 || w.inSeg >= w.segSize {
		w.segIdx++
		w.inSeg = 0
	}
	name := segmentName(w.segIdx)
	f, err := w.fs.OpenFile(filepath.Join(w.dir, name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		return fmt.Errorf("audit: open segment %s: %w", name, err)
	}
	w.f = f
	w.w = bufio.NewWriter(f)
	return nil
}

func (w *Writer) rotateLocked() error {
	if err := w.closeSegmentLocked(); err != nil {
		return err
	}
	w.inSeg = 0
	return nil
}

func (w *Writer) closeSegmentLocked() error {
	if w.f == nil {
		return nil
	}
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("audit: flush segment: %w", err)
	}
	// Sealing is a durability point: once the writer moves on to the
	// next segment, this one is never appended to again, and a power
	// loss that tore its un-fsynced tail would read as tampering (an
	// unrepairable chain break) instead of a truncated live segment.
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("audit: sync segment: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("audit: close segment: %w", err)
	}
	w.f, w.w = nil, nil
	return nil
}

// segmentName formats the segment file name for a 1-based index.
func segmentName(idx int) string { return fmt.Sprintf("trail-%06d.log", idx) }

// segmentIndex parses a segment file name back to its index (0 if the
// name is not a segment).
func segmentIndex(name string) int {
	var idx int
	if _, err := fmt.Sscanf(name, "trail-%06d.log", &idx); err != nil {
		return 0
	}
	return idx
}

// Segments lists the trail segment file names in a directory, oldest
// first.
func Segments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("audit: list trail dir: %w", err)
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), "trail-") && strings.HasSuffix(e.Name(), ".log") {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

func countLines(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("audit: open segment: %w", err)
	}
	defer f.Close()
	n := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		if len(sc.Bytes()) > 0 {
			n++
		}
	}
	return n, sc.Err()
}
