package audit

import (
	"testing"
)

func TestRotateAndSeq(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, testKey, 100)
	if err != nil {
		t.Fatal(err)
	}
	if w.Seq() != 0 {
		t.Errorf("initial Seq = %d", w.Seq())
	}
	for i := 0; i < 3; i++ {
		if _, err := w.Append(ev("u", "R", "op", EffectGrant, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if w.Seq() != 3 {
		t.Errorf("Seq = %d", w.Seq())
	}
	// Explicit rotation: the next append lands in a new segment.
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(ev("u", "R", "op", EffectDeny, 0)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Fatalf("segments after Rotate = %v", segs)
	}
	// The chain must still verify across the explicit rotation.
	r, _ := NewReader(dir, testKey)
	if n, err := r.Verify(); err != nil || n != 4 {
		t.Fatalf("verify = %d, %v", n, err)
	}
}

func TestRotateIdempotentWhenClosed(t *testing.T) {
	w, err := NewWriter(t.TempDir(), testKey, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Rotate before any append: no segment open, nothing to do.
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(ev("u", "R", "op", EffectGrant, 1)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Close twice is fine.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentNameParsing(t *testing.T) {
	if got := segmentIndex(segmentName(42)); got != 42 {
		t.Errorf("round trip = %d", got)
	}
	if got := segmentIndex("not-a-segment"); got != 0 {
		t.Errorf("bogus name = %d", got)
	}
}
