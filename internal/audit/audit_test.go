package audit

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var testKey = []byte("trail-key-for-tests")

func ev(user, role, op, effect string, matched int) Event {
	return Event{
		Time:            time.Date(2006, 7, 1, 12, 0, 0, 0, time.UTC),
		User:            user,
		Roles:           []string{role},
		Operation:       op,
		Target:          "t",
		Context:         "Branch=York, Period=2006",
		Effect:          effect,
		MatchedPolicies: matched,
	}
}

func TestWriteVerifyRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, testKey, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		seq, err := w.Append(ev(fmt.Sprintf("u%d", i), "Teller", "op", EffectGrant, 1))
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(dir, testKey)
	if err != nil {
		t.Fatal(err)
	}
	n, err := r.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("verified %d entries", n)
	}
	events, err := r.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 10 || events[0].User != "u0" || events[9].User != "u9" {
		t.Fatalf("events = %d (%v...)", len(events), events[0])
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, testKey, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := w.Append(ev("u", "R", "op", EffectGrant, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 4 { // 3+3+3+1
		t.Fatalf("segments = %v", segs)
	}
	r, _ := NewReader(dir, testKey)
	if n, err := r.Verify(); err != nil || n != 10 {
		t.Fatalf("verify across segments: %d, %v", n, err)
	}
}

func TestWriterResumesChain(t *testing.T) {
	dir := t.TempDir()
	w1, err := NewWriter(dir, testKey, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := w1.Append(ev("a", "R", "op", EffectGrant, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the chain and sequence must continue seamlessly.
	w2, err := NewWriter(dir, testKey, 4)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := w2.Append(ev("b", "R", "op", EffectDeny, 1))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 7 {
		t.Fatalf("resumed seq = %d, want 7", seq)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	r, _ := NewReader(dir, testKey)
	events, err := r.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 7 || events[6].User != "b" || events[6].Effect != EffectDeny {
		t.Fatalf("events after resume = %v", events)
	}
}

func TestTamperDetection(t *testing.T) {
	dir := t.TempDir()
	w, _ := NewWriter(dir, testKey, 0)
	for i := 0; i < 5; i++ {
		if _, err := w.Append(ev("u", "R", "op", EffectGrant, 1)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	segs, _ := Segments(dir)
	path := filepath.Join(dir, segs[0])
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("modified entry", func(t *testing.T) {
		mod := strings.Replace(string(raw), `"user":"u"`, `"user":"x"`, 1)
		if err := os.WriteFile(path, []byte(mod), 0o600); err != nil {
			t.Fatal(err)
		}
		r, _ := NewReader(dir, testKey)
		if _, err := r.Verify(); !errors.Is(err, ErrTampered) {
			t.Errorf("modified entry: %v", err)
		}
	})

	t.Run("deleted entry", func(t *testing.T) {
		lines := strings.SplitN(string(raw), "\n", 3)
		trunc := lines[0] + "\n" + lines[2] // drop the second entry
		if err := os.WriteFile(path, []byte(trunc), 0o600); err != nil {
			t.Fatal(err)
		}
		r, _ := NewReader(dir, testKey)
		if _, err := r.Verify(); err == nil {
			t.Error("deleted entry went undetected")
		}
	})

	t.Run("wrong key", func(t *testing.T) {
		if err := os.WriteFile(path, raw, 0o600); err != nil {
			t.Fatal(err)
		}
		r, _ := NewReader(dir, []byte("other-key"))
		if _, err := r.Verify(); !errors.Is(err, ErrTampered) {
			t.Errorf("wrong key: %v", err)
		}
	})

	t.Run("garbage line", func(t *testing.T) {
		if err := os.WriteFile(path, append(raw, []byte("not json\n")...), 0o600); err != nil {
			t.Fatal(err)
		}
		r, _ := NewReader(dir, testKey)
		if _, err := r.Verify(); !errors.Is(err, ErrTampered) {
			t.Errorf("garbage line: %v", err)
		}
	})
}

func TestWriterRejectsTamperedResume(t *testing.T) {
	dir := t.TempDir()
	w, _ := NewWriter(dir, testKey, 0)
	if _, err := w.Append(ev("u", "R", "op", EffectGrant, 1)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	segs, _ := Segments(dir)
	path := filepath.Join(dir, segs[0])
	raw, _ := os.ReadFile(path)
	mod := strings.Replace(string(raw), `"user":"u"`, `"user":"x"`, 1)
	os.WriteFile(path, []byte(mod), 0o600)
	if _, err := NewWriter(dir, testKey, 0); !errors.Is(err, ErrTampered) {
		t.Errorf("resume over tampered trail: %v", err)
	}
}

func TestSince(t *testing.T) {
	dir := t.TempDir()
	w, _ := NewWriter(dir, testKey, 2)
	base := time.Date(2006, 7, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 6; i++ {
		e := ev("u", "R", fmt.Sprintf("op%d", i), EffectGrant, 1)
		e.Time = base.Add(time.Duration(i) * time.Hour)
		if _, err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	r, _ := NewReader(dir, testKey)

	// Last 1 segment of 3 (2 entries each): entries 5,6 (ops 4,5).
	got, err := r.Since(time.Time{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Operation != "op4" {
		t.Fatalf("Since last-1 = %v", got)
	}

	// Time filter: from hour 3 onwards.
	got, err = r.Since(base.Add(3*time.Hour), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Operation != "op3" {
		t.Fatalf("Since t=+3h = %v", got)
	}

	// Combined: last 2 segments (ops 2..5) from hour 5.
	got, err = r.Since(base.Add(5*time.Hour), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Operation != "op5" {
		t.Fatalf("combined = %v", got)
	}
}

func TestEmptyTrailDir(t *testing.T) {
	r, err := NewReader(filepath.Join(t.TempDir(), "missing"), testKey)
	if err != nil {
		t.Fatal(err)
	}
	n, err := r.Verify()
	if err != nil || n != 0 {
		t.Errorf("empty dir verify = %d, %v", n, err)
	}
}

func TestNewWriterValidation(t *testing.T) {
	if _, err := NewWriter(t.TempDir(), nil, 0); err == nil {
		t.Error("empty key accepted")
	}
	if _, err := NewReader(t.TempDir(), nil); err == nil {
		t.Error("empty reader key accepted")
	}
}
