package audit

import (
	"fmt"
	"time"

	"msod/internal/adi"
	"msod/internal/bctx"
	"msod/internal/core"
	"msod/internal/rbac"
)

// ReplayStats summarises a retained-ADI reconstruction.
type ReplayStats struct {
	// Events is how many verified events were considered.
	Events int
	// Replayed is how many granted MSoD-relevant events were re-applied.
	Replayed int
	// Diverged counts events that the trail recorded as Grant but the
	// current policy set denies on re-evaluation (this happens when
	// policies changed between runs; the stricter current policy wins).
	Diverged int
	// Records is the size of the rebuilt retained ADI.
	Records int
}

// Replay reconstructs a retained ADI from verified trail events by
// re-evaluating every granted MSoD-relevant decision against the current
// policy set, in order, into the given store (§5.2: the PDP "extracts
// the retained ADI from these according to its current set of MSoD
// policies"). Re-evaluation reproduces the recording *and* last-step
// purging behaviour exactly, so the rebuilt store matches what the live
// engine held at the moment the trail ended.
//
// The store should be empty; records already present are treated as
// pre-existing history.
func Replay(events []Event, policies []core.Policy, store adi.Recorder) (ReplayStats, error) {
	// The engine clock tracks the event being replayed so rebuilt records
	// carry their historical timestamps.
	var evTime time.Time
	eng, err := core.NewEngine(store, policies, core.WithClock(func() time.Time { return evTime }))
	if err != nil {
		return ReplayStats{}, err
	}
	stats := ReplayStats{Events: len(events)}
	for _, ev := range events {
		if ev.Effect != EffectGrant || ev.MatchedPolicies == 0 {
			continue
		}
		req, err := eventRequest(ev)
		if err != nil {
			return stats, fmt.Errorf("audit: replay seq %d: %w", ev.Seq, err)
		}
		evTime = ev.Time
		dec, err := eng.Evaluate(req)
		if err != nil {
			return stats, fmt.Errorf("audit: replay seq %d: %w", ev.Seq, err)
		}
		if dec.Effect == core.Deny {
			stats.Diverged++
			continue
		}
		stats.Replayed++
	}
	stats.Records = store.Len()
	return stats, nil
}

// eventRequest converts a logged event back into an engine request.
func eventRequest(ev Event) (core.Request, error) {
	ctx, err := bctx.Parse(ev.Context)
	if err != nil {
		return core.Request{}, err
	}
	roles := make([]rbac.RoleName, len(ev.Roles))
	for i, r := range ev.Roles {
		roles[i] = rbac.RoleName(r)
	}
	return core.Request{
		User:      rbac.UserID(ev.User),
		Roles:     roles,
		Operation: rbac.Operation(ev.Operation),
		Target:    rbac.Object(ev.Target),
		Context:   ctx,
	}, nil
}

// NewEvent builds a trail event from an engine request and decision.
func NewEvent(req core.Request, dec core.Decision, at time.Time) Event {
	roles := make([]string, len(req.Roles))
	for i, r := range req.Roles {
		roles[i] = string(r)
	}
	effect := EffectGrant
	if dec.Effect == core.Deny {
		effect = EffectDeny
	}
	return Event{
		Time:            at,
		User:            string(req.User),
		Roles:           roles,
		Operation:       string(req.Operation),
		Target:          string(req.Target),
		Context:         req.Context.String(),
		Effect:          effect,
		MatchedPolicies: dec.MatchedPolicies,
	}
}
