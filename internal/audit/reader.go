package audit

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// Reader verifies and iterates trail segments.
type Reader struct {
	dir string
	key []byte
}

// NewReader opens a trail directory for verification and replay.
func NewReader(dir string, key []byte) (*Reader, error) {
	if len(key) == 0 {
		return nil, fmt.Errorf("audit: empty trail key")
	}
	return &Reader{dir: dir, key: append([]byte(nil), key...)}, nil
}

// Verify checks the full MAC chain across every segment and returns the
// number of entries verified. It fails with ErrTampered on any chain
// break, ErrBadSequence on sequence gaps, and ErrTruncated when the
// newest segment ends in a partial entry (a torn crash write — the
// chain up to it is intact).
func (r *Reader) Verify() (int, error) {
	events, _, torn, err := r.verifyAllDetail()
	if err != nil {
		return 0, err
	}
	if torn != nil {
		return len(events), fmt.Errorf("%w: %s: partial final entry at byte %d (%d complete entries verified)",
			ErrTruncated, torn.seg, torn.off, len(events))
	}
	return len(events), nil
}

// All verifies the full chain and returns every event, oldest first. A
// torn final entry (crash mid-write) is dropped: reconstruction resumes
// from the last complete entry, per §5.2 recovery.
func (r *Reader) All() ([]Event, error) {
	events, _, _, err := r.verifyAllDetail()
	return events, err
}

// Since verifies the full chain and returns the events from the last n
// segments (n <= 0 means all) whose time is not before t — the "last n
// audit trails starting from time t" recovery parameters of §5.2. Like
// All, it tolerates a torn final entry.
func (r *Reader) Since(t time.Time, n int) ([]Event, error) {
	segs, err := Segments(r.dir)
	if err != nil {
		return nil, err
	}
	// The chain must be verified from genesis regardless of the window.
	events, _, _, err := r.verifyAllDetail()
	if err != nil {
		return nil, err
	}
	if n > 0 && n < len(segs) {
		// Count entries in the excluded older segments to find the cut.
		cut := 0
		for _, seg := range segs[:len(segs)-n] {
			c, err := countLines(filepath.Join(r.dir, seg))
			if err != nil {
				return nil, err
			}
			cut += c
		}
		if cut > len(events) {
			cut = len(events)
		}
		events = events[cut:]
	}
	out := events[:0]
	for _, ev := range events {
		if !ev.Time.Before(t) {
			out = append(out, ev)
		}
	}
	return out, nil
}

// tornTail locates a partial final entry: the newest segment's trailing
// bytes past the last newline, which a crashed writer left behind.
type tornTail struct {
	seg string // segment file name
	off int64  // byte offset where the torn bytes begin
}

// verifyAllDetail walks every segment in order, verifying the chain,
// and returns the complete events, the final MAC (the chain head for a
// resuming Writer), and the location of a torn final entry if the
// newest segment does not end in a newline. Unterminated bytes inside a
// sealed (non-final) segment are tampering — the writer only ever
// leaves a partial line at the very end of the trail.
func (r *Reader) verifyAllDetail() ([]Event, []byte, *tornTail, error) {
	segs, err := Segments(r.dir)
	if err != nil {
		return nil, nil, nil, err
	}
	prev := genesisMAC(r.key)
	var (
		events  []Event
		lastSeq uint64
		torn    *tornTail
	)
	for si, seg := range segs {
		path := filepath.Join(r.dir, seg)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("audit: read segment %s: %w", seg, err)
		}
		final := si == len(segs)-1
		var off int64
		line := 0
		for len(data) > 0 {
			nl := bytes.IndexByte(data, '\n')
			if nl < 0 {
				// Unterminated trailing bytes. Whitespace is ignorable;
				// content is a torn write if this is the newest segment,
				// tampering otherwise.
				if len(bytes.TrimSpace(data)) == 0 {
					break
				}
				if !final {
					return nil, nil, nil, fmt.Errorf("%w: %s: unterminated entry at byte %d inside sealed segment", ErrTampered, seg, off)
				}
				torn = &tornTail{seg: seg, off: off}
				break
			}
			raw := data[:nl]
			data = data[nl+1:]
			lineLen := int64(nl + 1)
			if len(bytes.TrimSpace(raw)) == 0 {
				off += lineLen
				continue
			}
			line++
			var e entry
			if err := json.Unmarshal(raw, &e); err != nil {
				return nil, nil, nil, fmt.Errorf("%w: %s line %d: %v", ErrTampered, seg, line, err)
			}
			want, err := chainMAC(r.key, prev, e.Event)
			if err != nil {
				return nil, nil, nil, err
			}
			got, err := decodeMAC(e.MAC)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("%w: %s line %d: bad mac encoding", ErrTampered, seg, line)
			}
			if !macEqual(want, got) {
				return nil, nil, nil, fmt.Errorf("%w: %s line %d (seq %d)", ErrTampered, seg, line, e.Event.Seq)
			}
			if e.Event.Seq != lastSeq+1 {
				return nil, nil, nil, fmt.Errorf("%w: %s line %d: seq %d after %d", ErrBadSequence, seg, line, e.Event.Seq, lastSeq)
			}
			lastSeq = e.Event.Seq
			prev = want
			events = append(events, e.Event)
			off += lineLen
		}
	}
	return events, prev, torn, nil
}

func macEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	var diff byte
	for i := range a {
		diff |= a[i] ^ b[i]
	}
	return diff == 0
}
