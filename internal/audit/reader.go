package audit

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// Reader verifies and iterates trail segments.
type Reader struct {
	dir string
	key []byte
}

// NewReader opens a trail directory for verification and replay.
func NewReader(dir string, key []byte) (*Reader, error) {
	if len(key) == 0 {
		return nil, fmt.Errorf("audit: empty trail key")
	}
	return &Reader{dir: dir, key: append([]byte(nil), key...)}, nil
}

// Verify checks the full MAC chain across every segment and returns the
// number of entries verified. It fails with ErrTampered on any chain
// break and ErrBadSequence on sequence gaps.
func (r *Reader) Verify() (int, error) {
	events, _, err := r.verifyAll()
	if err != nil {
		return 0, err
	}
	return len(events), nil
}

// All verifies the full chain and returns every event, oldest first.
func (r *Reader) All() ([]Event, error) {
	events, _, err := r.verifyAll()
	return events, err
}

// Since verifies the full chain and returns the events from the last n
// segments (n <= 0 means all) whose time is not before t — the "last n
// audit trails starting from time t" recovery parameters of §5.2.
func (r *Reader) Since(t time.Time, n int) ([]Event, error) {
	segs, err := Segments(r.dir)
	if err != nil {
		return nil, err
	}
	// The chain must be verified from genesis regardless of the window.
	events, _, err := r.verifyAll()
	if err != nil {
		return nil, err
	}
	if n > 0 && n < len(segs) {
		// Count entries in the excluded older segments to find the cut.
		cut := 0
		for _, seg := range segs[:len(segs)-n] {
			c, err := countLines(filepath.Join(r.dir, seg))
			if err != nil {
				return nil, err
			}
			cut += c
		}
		if cut > len(events) {
			cut = len(events)
		}
		events = events[cut:]
	}
	out := events[:0]
	for _, ev := range events {
		if !ev.Time.Before(t) {
			out = append(out, ev)
		}
	}
	return out, nil
}

// verifyAll walks every segment in order, verifying the chain, and
// returns the events and the final MAC (the chain head for a resuming
// Writer).
func (r *Reader) verifyAll() ([]Event, []byte, error) {
	segs, err := Segments(r.dir)
	if err != nil {
		return nil, nil, err
	}
	prev := genesisMAC(r.key)
	var (
		events  []Event
		lastSeq uint64
	)
	for _, seg := range segs {
		path := filepath.Join(r.dir, seg)
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, fmt.Errorf("audit: open segment %s: %w", seg, err)
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		line := 0
		for sc.Scan() {
			if len(sc.Bytes()) == 0 {
				continue
			}
			line++
			var e entry
			if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
				f.Close()
				return nil, nil, fmt.Errorf("%w: %s line %d: %v", ErrTampered, seg, line, err)
			}
			want, err := chainMAC(r.key, prev, e.Event)
			if err != nil {
				f.Close()
				return nil, nil, err
			}
			got, err := decodeMAC(e.MAC)
			if err != nil {
				f.Close()
				return nil, nil, fmt.Errorf("%w: %s line %d: bad mac encoding", ErrTampered, seg, line)
			}
			if !macEqual(want, got) {
				f.Close()
				return nil, nil, fmt.Errorf("%w: %s line %d (seq %d)", ErrTampered, seg, line, e.Event.Seq)
			}
			if e.Event.Seq != lastSeq+1 {
				f.Close()
				return nil, nil, fmt.Errorf("%w: %s line %d: seq %d after %d", ErrBadSequence, seg, line, e.Event.Seq, lastSeq)
			}
			lastSeq = e.Event.Seq
			prev = want
			events = append(events, e.Event)
		}
		if err := sc.Err(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("audit: read segment %s: %w", seg, err)
		}
		f.Close()
	}
	return events, prev, nil
}

func macEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	var diff byte
	for i := range a {
		diff |= a[i] ^ b[i]
	}
	return diff == 0
}
