// Package audit implements the tamper-evident secure audit trail of
// §5.2: every access control decision request and response is logged to
// append-only, HMAC-chained trail segments in stable storage, and at
// start-up the PDP replays the last n trails from time t to reconstruct
// its retained ADI according to its current MSoD policy set.
//
// The paper uses the PKI-based secure audit web service of [5]; this
// package substitutes a local SHA-256/HMAC hash chain with the same
// property the PDP relies on: any modification, reordering, truncation
// or deletion inside a segment is detected at read time.
package audit

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"time"
)

// Effect mirrors the decision outcome in a log entry.
const (
	EffectGrant = "grant"
	EffectDeny  = "deny"
)

// Event is one logged decision: the full request quintuple (§4.1) plus
// the outcome. String fields keep the wire format self-contained.
type Event struct {
	// Seq is the global sequence number across all segments (1-based).
	Seq uint64 `json:"seq"`
	// Time is the decision time.
	Time time.Time `json:"time"`
	// User, Roles, Operation, Target and Context echo the request.
	User      string   `json:"user"`
	Roles     []string `json:"roles,omitempty"`
	Operation string   `json:"op"`
	Target    string   `json:"target"`
	Context   string   `json:"ctx"`
	// Effect is EffectGrant or EffectDeny.
	Effect string `json:"effect"`
	// MatchedPolicies is how many MSoD policies matched the request; 0
	// means the decision did not involve MSoD.
	MatchedPolicies int `json:"matched,omitempty"`
	// TraceID correlates this record with the gateway log line and
	// DecisionResponse of the request that produced it (empty for
	// untraced decisions). It is part of the event JSON, so the HMAC
	// chain covers it: a tampered correlation fails verification like
	// any other field.
	TraceID string `json:"trace,omitempty"`
}

// entry is the on-disk line: the event plus its chain MAC.
type entry struct {
	Event Event  `json:"event"`
	MAC   string `json:"mac"`
}

// Errors returned by verification.
var (
	// ErrTampered is returned when a segment fails chain verification.
	ErrTampered = errors.New("audit: trail tampered")
	// ErrBadSequence is returned when entries are not contiguous.
	ErrBadSequence = errors.New("audit: sequence gap")
	// ErrTruncated is returned when the newest segment ends with a
	// partial entry (no terminating newline): a torn write from a crash,
	// reported distinctly from deliberate tampering because the chain up
	// to the last complete entry is intact and recovery can resume from
	// there (NewWriter does so automatically).
	ErrTruncated = errors.New("audit: trail truncated mid-entry")
)

// chainMAC computes the entry MAC: HMAC-SHA256(key, prevMAC || canonical
// event JSON). The previous MAC links entries into a chain; the first
// entry of a trail chains from the genesis value.
func chainMAC(key, prevMAC []byte, ev Event) ([]byte, error) {
	payload, err := json.Marshal(ev)
	if err != nil {
		return nil, fmt.Errorf("audit: marshal event: %w", err)
	}
	mac := hmac.New(sha256.New, key)
	mac.Write(prevMAC)
	mac.Write(payload)
	return mac.Sum(nil), nil
}

// genesisMAC is the chain seed for sequence 1, derived from the key so
// two trails with different keys cannot be spliced.
func genesisMAC(key []byte) []byte {
	mac := hmac.New(sha256.New, key)
	mac.Write([]byte("msod-audit-genesis"))
	return mac.Sum(nil)
}

func encodeMAC(mac []byte) string { return hex.EncodeToString(mac) }
func decodeMAC(s string) ([]byte, error) {
	return hex.DecodeString(s)
}
