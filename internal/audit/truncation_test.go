package audit

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTrail appends n grant events and closes the writer.
func writeTrail(t *testing.T, dir string, n, segSize int) {
	t.Helper()
	w, err := NewWriter(dir, testKey, segSize)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := w.Append(ev(fmt.Sprintf("u%d", i), "Teller", "op", EffectGrant, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// tearTail simulates a crash mid-append: the final line of the newest
// segment loses its trailing bytes (including the newline).
func tearTail(t *testing.T, dir string, drop int64) string {
	t.Helper()
	segs, err := Segments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v (%d)", err, len(segs))
	}
	path := filepath.Join(dir, segs[len(segs)-1])
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-drop); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestVerifyReportsTruncationDistinctFromTamper(t *testing.T) {
	dir := t.TempDir()
	writeTrail(t, dir, 5, 0)
	tearTail(t, dir, 10)

	r, err := NewReader(dir, testKey)
	if err != nil {
		t.Fatal(err)
	}
	n, err := r.Verify()
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("Verify on torn tail = %v, want ErrTruncated", err)
	}
	if errors.Is(err, ErrTampered) {
		t.Fatal("torn tail misreported as tampering")
	}
	if n != 4 {
		t.Errorf("verified %d complete entries, want 4", n)
	}
	if !strings.Contains(err.Error(), "partial final entry") {
		t.Errorf("error lacks diagnostics: %v", err)
	}
}

func TestVerifyStillReportsTamperOnContentChange(t *testing.T) {
	dir := t.TempDir()
	writeTrail(t, dir, 5, 0)
	segs, _ := Segments(dir)
	path := filepath.Join(dir, segs[0])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mutated := strings.Replace(string(data), `"user":"u2"`, `"user":"ux"`, 1)
	if mutated == string(data) {
		t.Fatal("tamper target missing")
	}
	if err := os.WriteFile(path, []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}
	r, _ := NewReader(dir, testKey)
	if _, err := r.Verify(); !errors.Is(err, ErrTampered) {
		t.Fatalf("Verify on edited content = %v, want ErrTampered", err)
	}
}

func TestUnterminatedSealedSegmentIsTamper(t *testing.T) {
	dir := t.TempDir()
	// Two entries per segment: 5 entries → segments 1,2 sealed, 3 open.
	writeTrail(t, dir, 5, 2)
	segs, _ := Segments(dir)
	if len(segs) < 2 {
		t.Fatalf("want multiple segments, got %v", segs)
	}
	// A torn line inside a SEALED segment cannot be a crash artefact —
	// the writer only ever appends to the newest segment.
	sealed := filepath.Join(dir, segs[0])
	info, _ := os.Stat(sealed)
	if err := os.Truncate(sealed, info.Size()-5); err != nil {
		t.Fatal(err)
	}
	r, _ := NewReader(dir, testKey)
	if _, err := r.Verify(); !errors.Is(err, ErrTampered) {
		t.Fatalf("torn sealed segment = %v, want ErrTampered", err)
	}
}

func TestAllTolerantOfTornTail(t *testing.T) {
	dir := t.TempDir()
	writeTrail(t, dir, 5, 0)
	tearTail(t, dir, 10)
	r, _ := NewReader(dir, testKey)
	events, err := r.All()
	if err != nil {
		t.Fatalf("All on torn tail: %v", err)
	}
	if len(events) != 4 {
		t.Fatalf("All returned %d events, want the 4 complete ones", len(events))
	}
	if events[3].User != "u3" {
		t.Errorf("last complete entry = %q, want u3", events[3].User)
	}
}

func TestWriterResumesFromLastCompleteEntry(t *testing.T) {
	dir := t.TempDir()
	writeTrail(t, dir, 5, 0)
	tearTail(t, dir, 10)

	// Reopening simulates a daemon restart after the crash: the torn
	// entry is discarded and the chain resumes after the last complete
	// one.
	w, err := NewWriter(dir, testKey, 0)
	if err != nil {
		t.Fatalf("resume over torn tail: %v", err)
	}
	seq, err := w.Append(ev("u9", "Teller", "op", EffectGrant, 1))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 5 {
		t.Errorf("resumed seq = %d, want 5 (entry 5 was torn and dropped)", seq)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// The repaired trail verifies cleanly end to end.
	r, _ := NewReader(dir, testKey)
	n, err := r.Verify()
	if err != nil {
		t.Fatalf("Verify after resume: %v", err)
	}
	if n != 5 {
		t.Errorf("verified %d entries, want 5", n)
	}
	events, _ := r.All()
	if events[4].User != "u9" || events[3].User != "u3" {
		t.Errorf("resumed history wrong: %q then %q", events[3].User, events[4].User)
	}
}

func TestIncrementalVerifierToleratesInFlightTail(t *testing.T) {
	dir := t.TempDir()
	writeTrail(t, dir, 3, 0)
	// An unterminated line on the newest segment looks exactly like an
	// append in progress; the incremental verifier must not flag it.
	segs, _ := Segments(dir)
	f, err := os.OpenFile(filepath.Join(dir, segs[len(segs)-1]), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"event":{"seq":4`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	iv, err := NewIncrementalVerifier(dir, testKey)
	if err != nil {
		t.Fatal(err)
	}
	n, err := iv.Advance()
	if err != nil {
		t.Fatalf("Advance over in-flight tail: %v", err)
	}
	if n != 3 || iv.VerifiedSeq() != 3 {
		t.Errorf("verified %d/seq %d, want 3/3", n, iv.VerifiedSeq())
	}
	// Re-advancing re-examines the same partial line without error.
	if _, err := iv.Advance(); err != nil {
		t.Fatalf("second Advance: %v", err)
	}
}
