package audit

import (
	"testing"
	"time"

	"msod/internal/adi"
	"msod/internal/bctx"
	"msod/internal/core"
	"msod/internal/rbac"
)

func bankPolicies() []core.Policy {
	return []core.Policy{{
		Context:  bctx.MustParse("Branch=*, Period=!"),
		LastStep: &core.Step{Operation: "CommitAudit", Target: "audit"},
		MMER: []core.MMERRule{{
			Roles:       []rbac.RoleName{"Teller", "Auditor"},
			Cardinality: 2,
		}},
	}}
}

func req(user, role, op, branch, period string) core.Request {
	target := rbac.Object("till")
	if op == "CommitAudit" {
		target = "audit"
	}
	return core.Request{
		User:      rbac.UserID(user),
		Roles:     []rbac.RoleName{rbac.RoleName(role)},
		Operation: rbac.Operation(op),
		Target:    target,
		Context:   bctx.MustParse("Branch=" + branch + ", Period=" + period),
	}
}

// runAndLog drives requests through a live engine, logging each decision
// to the trail exactly as the PDP does (§5.2).
func runAndLog(t *testing.T, w *Writer, eng *core.Engine, reqs []core.Request) {
	t.Helper()
	at := time.Date(2006, 7, 1, 9, 0, 0, 0, time.UTC)
	for _, r := range reqs {
		dec, err := eng.Evaluate(r)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Append(NewEvent(r, dec, at)); err != nil {
			t.Fatal(err)
		}
		at = at.Add(time.Minute)
	}
}

// TestReplayReconstructsLiveState runs a workload, replays the trail
// into a fresh store and checks the rebuilt retained ADI equals the live
// engine's store.
func TestReplayReconstructsLiveState(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, testKey, 4)
	if err != nil {
		t.Fatal(err)
	}
	liveStore := adi.NewStore()
	eng, err := core.NewEngine(liveStore, bankPolicies())
	if err != nil {
		t.Fatal(err)
	}

	runAndLog(t, w, eng, []core.Request{
		req("alice", "Teller", "HandleCash", "York", "2006"),
		req("alice", "Auditor", "Audit", "York", "2006"), // denied
		req("bob", "Auditor", "Audit", "Leeds", "2006"),
		req("carol", "Teller", "HandleCash", "York", "2007"),
		req("dave", "Auditor", "CommitAudit", "Leeds", "2006"), // purges 2006
		req("alice", "Auditor", "Audit", "York", "2006"),       // granted post-purge
	})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, _ := NewReader(dir, testKey)
	events, err := r.All()
	if err != nil {
		t.Fatal(err)
	}
	rebuilt := adi.NewStore()
	stats, err := Replay(events, bankPolicies(), rebuilt)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Diverged != 0 {
		t.Errorf("diverged = %d", stats.Diverged)
	}
	if stats.Records != liveStore.Len() {
		t.Fatalf("rebuilt %d records, live store has %d", stats.Records, liveStore.Len())
	}

	// Spot-check semantic equivalence: same answers to history queries.
	p2006 := bctx.MustParse("Branch=*, Period=2006")
	p2007 := bctx.MustParse("Branch=*, Period=2007")
	for _, c := range []struct {
		user rbac.UserID
		pat  bctx.Name
		role rbac.RoleName
	}{
		{"alice", p2006, "Teller"},
		{"alice", p2006, "Auditor"},
		{"bob", p2006, "Auditor"},
		{"carol", p2007, "Teller"},
	} {
		a, _ := liveStore.UserHasRole(c.user, c.pat, c.role)
		b, _ := rebuilt.UserHasRole(c.user, c.pat, c.role)
		if a != b {
			t.Errorf("query (%s, %s, %s): live=%v rebuilt=%v", c.user, c.pat, c.role, a, b)
		}
	}

	// The rebuilt engine must behave identically going forward: alice
	// audited 2006 after the purge, so she cannot tell in 2006 now.
	eng2, err := core.NewEngine(rebuilt, bankPolicies())
	if err != nil {
		t.Fatal(err)
	}
	dec, err := eng2.Evaluate(req("alice", "Teller", "HandleCash", "York", "2006"))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Effect != core.Deny {
		t.Error("rebuilt engine lost alice's post-purge Auditor history")
	}
}

// TestReplaySkipsIrrelevantEvents: denials and non-MSoD decisions do not
// contribute records.
func TestReplaySkipsIrrelevantEvents(t *testing.T) {
	events := []Event{
		{Seq: 1, User: "u", Roles: []string{"Teller"}, Operation: "op", Target: "till",
			Context: "Branch=York, Period=2006", Effect: EffectDeny, MatchedPolicies: 1},
		{Seq: 2, User: "u", Roles: []string{"Teller"}, Operation: "op", Target: "till",
			Context: "Warehouse=1", Effect: EffectGrant, MatchedPolicies: 0},
	}
	store := adi.NewStore()
	stats, err := Replay(events, bankPolicies(), store)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Replayed != 0 || store.Len() != 0 {
		t.Errorf("stats=%+v len=%d", stats, store.Len())
	}
}

// TestReplayWithStricterPolicyDiverges: a policy change between runs can
// deny a previously granted event; the replay reports the divergence and
// applies the current (stricter) policy.
func TestReplayWithStricterPolicyDiverges(t *testing.T) {
	// Original policy: only Teller/Auditor conflict. The user acted as
	// Teller then Clerk — both granted.
	events := []Event{
		{Seq: 1, User: "u", Roles: []string{"Teller"}, Operation: "op", Target: "till",
			Context: "Branch=York, Period=2006", Effect: EffectGrant, MatchedPolicies: 1,
			Time: time.Date(2006, 7, 1, 9, 0, 0, 0, time.UTC)},
		{Seq: 2, User: "u", Roles: []string{"Clerk"}, Operation: "op", Target: "till",
			Context: "Branch=York, Period=2006", Effect: EffectGrant, MatchedPolicies: 1,
			Time: time.Date(2006, 7, 1, 9, 1, 0, 0, time.UTC)},
	}
	// Current policy adds Clerk to the conflicting set.
	stricter := []core.Policy{{
		Context: bctx.MustParse("Branch=*, Period=!"),
		MMER: []core.MMERRule{{
			Roles:       []rbac.RoleName{"Teller", "Auditor", "Clerk"},
			Cardinality: 2,
		}},
	}}
	store := adi.NewStore()
	stats, err := Replay(events, stricter, store)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Diverged != 1 || stats.Replayed != 1 {
		t.Errorf("stats = %+v", stats)
	}
	// Only the Teller record survives under the stricter policy.
	ok, _ := store.UserHasRole("u", bctx.Universal, "Clerk")
	if ok {
		t.Error("diverged grant was recorded")
	}
}

// TestReplayPreservesTimestamps: rebuilt records carry the original
// decision times, which §4.2 requires for administrative purposes.
func TestReplayPreservesTimestamps(t *testing.T) {
	when := time.Date(2006, 3, 14, 15, 9, 26, 0, time.UTC)
	events := []Event{{
		Seq: 1, User: "u", Roles: []string{"Teller"}, Operation: "op", Target: "till",
		Context: "Branch=York, Period=2006", Effect: EffectGrant, MatchedPolicies: 1,
		Time: when,
	}}
	store := adi.NewStore()
	if _, err := Replay(events, bankPolicies(), store); err != nil {
		t.Fatal(err)
	}
	recs := store.UserRecords("u", bctx.Universal)
	if len(recs) != 1 || !recs[0].Time.Equal(when) {
		t.Fatalf("recs = %v", recs)
	}
}
