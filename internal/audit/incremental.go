package audit

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// IncrementalVerifier extends chain verification to a *running* trail:
// it remembers a checkpoint (segment, byte offset, chain MAC, sequence)
// and each Advance verifies only the entries appended since, so a
// sentinel can re-check a busy trail on a short interval without paying
// the full from-genesis scan the paper performs at reconstruction.
//
// The incremental pass guards the append-only contract going forward:
// new entries must extend the existing MAC chain, checkpointed segments
// must not shrink or disappear, and sealed segments must not grow
// unterminated bytes. Byte flips inside the already-verified prefix are
// the startup (from-genesis) verifier's job — once a MAC has been
// checked the chain head commits to it, so any later splice shows up as
// a chain break at the first new entry.
//
// IncrementalVerifier is not safe for concurrent use; the sentinel
// serialises calls.
type IncrementalVerifier struct {
	dir string
	key []byte

	segIdx  int   // segment holding the checkpoint (0 = nothing verified)
	off     int64 // verified byte offset within that segment
	lastMAC []byte
	lastSeq uint64
}

// NewIncrementalVerifier starts a verifier at the genesis of the trail
// in dir. The directory may be empty or not yet exist; entries are
// picked up as they appear.
func NewIncrementalVerifier(dir string, key []byte) (*IncrementalVerifier, error) {
	if len(key) == 0 {
		return nil, fmt.Errorf("audit: empty trail key")
	}
	key = append([]byte(nil), key...)
	return &IncrementalVerifier{dir: dir, key: key, lastMAC: genesisMAC(key)}, nil
}

// VerifiedSeq returns the sequence number of the last entry the chain
// has been verified through (0 before any entry verified).
func (v *IncrementalVerifier) VerifiedSeq() uint64 { return v.lastSeq }

// Advance verifies every complete entry appended since the previous
// call and moves the checkpoint past them, returning how many new
// entries were verified. An unterminated final line in the newest
// segment is an in-flight write: it is left unconsumed and re-examined
// on the next call. Failures wrap ErrTampered or ErrBadSequence; after
// a failure the verifier's checkpoint is undefined and it should not be
// advanced again.
func (v *IncrementalVerifier) Advance() (int, error) {
	segs, err := Segments(v.dir)
	if err != nil {
		return 0, err
	}
	if len(segs) == 0 {
		if v.segIdx != 0 {
			return 0, fmt.Errorf("%w: checkpointed segment %s disappeared", ErrTampered, segmentName(v.segIdx))
		}
		return 0, nil
	}
	verified := 0
	seenCheckpoint := v.segIdx == 0
	for i, seg := range segs {
		idx := segmentIndex(seg)
		if v.segIdx != 0 && idx < v.segIdx {
			continue
		}
		var startOff int64
		if idx == v.segIdx {
			startOff = v.off
			seenCheckpoint = true
		}
		n, err := v.advanceSegment(seg, idx, startOff, i == len(segs)-1)
		verified += n
		if err != nil {
			return verified, err
		}
	}
	if !seenCheckpoint {
		return verified, fmt.Errorf("%w: checkpointed segment %s disappeared", ErrTampered, segmentName(v.segIdx))
	}
	return verified, nil
}

// advanceSegment verifies the segment's bytes from startOff on and, on
// success, moves the checkpoint to its end (or to the start of an
// in-flight partial line when final).
func (v *IncrementalVerifier) advanceSegment(seg string, idx int, startOff int64, final bool) (int, error) {
	path := filepath.Join(v.dir, seg)
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, fmt.Errorf("%w: segment %s disappeared", ErrTampered, seg)
		}
		return 0, fmt.Errorf("audit: open segment %s: %w", seg, err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, fmt.Errorf("audit: stat segment %s: %w", seg, err)
	}
	if st.Size() < startOff {
		return 0, fmt.Errorf("%w: segment %s shrank below verified offset %d", ErrTampered, seg, startOff)
	}
	if _, err := f.Seek(startOff, io.SeekStart); err != nil {
		return 0, fmt.Errorf("audit: seek segment %s: %w", seg, err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		return 0, fmt.Errorf("audit: read segment %s: %w", seg, err)
	}
	off := startOff
	count := 0
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			if len(bytes.TrimSpace(data)) == 0 {
				break
			}
			if final {
				// In-flight append: the writer has not finished this
				// line. Leave the checkpoint before it.
				break
			}
			return count, fmt.Errorf("%w: %s: unterminated entry at byte %d inside sealed segment", ErrTampered, seg, off)
		}
		raw := data[:nl]
		data = data[nl+1:]
		lineLen := int64(nl + 1)
		if len(bytes.TrimSpace(raw)) == 0 {
			off += lineLen
			continue
		}
		var e entry
		if err := json.Unmarshal(raw, &e); err != nil {
			return count, fmt.Errorf("%w: %s at byte %d: %v", ErrTampered, seg, off, err)
		}
		want, err := chainMAC(v.key, v.lastMAC, e.Event)
		if err != nil {
			return count, err
		}
		got, err := decodeMAC(e.MAC)
		if err != nil {
			return count, fmt.Errorf("%w: %s at byte %d: bad mac encoding", ErrTampered, seg, off)
		}
		if !macEqual(want, got) {
			return count, fmt.Errorf("%w: %s at byte %d (seq %d)", ErrTampered, seg, off, e.Event.Seq)
		}
		if e.Event.Seq != v.lastSeq+1 {
			return count, fmt.Errorf("%w: %s at byte %d: seq %d after %d", ErrBadSequence, seg, off, e.Event.Seq, v.lastSeq)
		}
		v.lastMAC = want
		v.lastSeq = e.Event.Seq
		off += lineLen
		count++
	}
	v.segIdx = idx
	v.off = off
	return count, nil
}
