package directory

import (
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"msod/internal/bctx"
	"msod/internal/credential"
	"msod/internal/pdp"
	"msod/internal/policy"
	"msod/internal/rbac"
)

var (
	dNow    = time.Date(2006, 7, 1, 12, 0, 0, 0, time.UTC)
	dBefore = dNow.Add(-24 * time.Hour)
	dAfter  = dNow.Add(24 * time.Hour)
)

func newAuthority(t *testing.T, name string) *credential.Authority {
	t.Helper()
	a, err := credential.NewAuthority(name)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestPublishFetchRevoke(t *testing.T) {
	repo := NewRepository()
	hr := newAuthority(t, "hr")
	c1, _ := hr.IssueRole("alice", "Teller", dBefore, dAfter)
	c2, _ := hr.IssueRole("alice", "Clerk", dBefore, dAfter)
	c3, _ := hr.IssueRole("bob", "Auditor", dBefore, dAfter)

	id1, err := repo.Publish(c1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repo.Publish(c2); err != nil {
		t.Fatal(err)
	}
	if _, err := repo.Publish(c3); err != nil {
		t.Fatal(err)
	}
	// Idempotent republish.
	id1b, err := repo.Publish(c1)
	if err != nil || id1b != id1 {
		t.Fatalf("republish = %s, %v (want %s)", id1b, err, id1)
	}
	if repo.Len() != 3 {
		t.Fatalf("Len = %d", repo.Len())
	}
	if got := repo.Holders(); len(got) != 2 || got[0] != "alice" || got[1] != "bob" {
		t.Fatalf("Holders = %v", got)
	}

	entries := repo.Fetch("alice", dNow)
	if len(entries) != 2 {
		t.Fatalf("alice entries = %v", entries)
	}
	if err := repo.Revoke("alice", id1); err != nil {
		t.Fatal(err)
	}
	if len(repo.Fetch("alice", dNow)) != 1 {
		t.Error("revocation did not take effect")
	}
	if err := repo.Revoke("alice", id1); !errors.Is(err, ErrNotFound) {
		t.Errorf("double revoke: %v", err)
	}
	if err := repo.Revoke("ghost", "x"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown holder: %v", err)
	}
}

func TestFetchFiltersExpired(t *testing.T) {
	repo := NewRepository()
	hr := newAuthority(t, "hr")
	old, _ := hr.IssueRole("alice", "Teller", dBefore.Add(-48*time.Hour), dBefore)
	cur, _ := hr.IssueRole("alice", "Clerk", dBefore, dAfter)
	repo.Publish(old)
	repo.Publish(cur)
	got := repo.Fetch("alice", dNow)
	if len(got) != 1 || got[0].Credential.Attributes[0].Value != "Clerk" {
		t.Fatalf("Fetch = %v", got)
	}
	// At an earlier time the old one is valid instead.
	got = repo.Fetch("alice", dBefore.Add(-time.Hour))
	if len(got) != 1 || got[0].Credential.Attributes[0].Value != "Teller" {
		t.Fatalf("Fetch(past) = %v", got)
	}
}

func TestPublishValidation(t *testing.T) {
	repo := NewRepository()
	if _, err := repo.Publish(credential.Credential{}); err == nil {
		t.Error("holderless credential accepted")
	}
}

func TestAllocator(t *testing.T) {
	repo := NewRepository()
	hr := newAuthority(t, "hr")
	al, err := NewAllocator(hr, repo)
	if err != nil {
		t.Fatal(err)
	}
	id, err := al.Allocate("alice", "Teller", dBefore, dAfter)
	if err != nil {
		t.Fatal(err)
	}
	if repo.Len() != 1 {
		t.Error("allocation not published")
	}
	if err := al.Revoke("alice", id); err != nil {
		t.Fatal(err)
	}
	if repo.Len() != 0 {
		t.Error("revocation failed")
	}
	if _, err := NewAllocator(nil, repo); err == nil {
		t.Error("nil authority accepted")
	}
	if _, err := NewAllocator(hr, nil); err == nil {
		t.Error("nil repository accepted")
	}
}

const dirPolicyXML = `
<RBACPolicy id="dir-test">
  <RoleList><Role value="Teller"/></RoleList>
  <RoleAssignmentPolicy><Assignment soa="hr" role="Teller"/></RoleAssignmentPolicy>
  <TargetAccessPolicy><Grant role="Teller" operation="HandleCash" target="till"/></TargetAccessPolicy>
</RBACPolicy>`

// TestEndToEndThroughDirectory is the full Figure 4 pipeline: the PA
// sub-system allocates into the directory, a PEP fetches the user's
// credentials over HTTP and presents them to the PDP, whose CVS
// validates signatures and trust.
func TestEndToEndThroughDirectory(t *testing.T) {
	repo := NewRepository()
	hr := newAuthority(t, "hr")
	al, _ := NewAllocator(hr, repo)
	if _, err := al.Allocate("alice", "Teller", dBefore, dAfter); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(repo))
	t.Cleanup(ts.Close)
	dirClient := NewClient(ts.URL, nil)

	creds, err := dirClient.Fetch("alice", dNow)
	if err != nil || len(creds) != 1 {
		t.Fatalf("Fetch = %v, %v", creds, err)
	}

	pol, err := policy.ParseRBACPolicy([]byte(dirPolicyXML))
	if err != nil {
		t.Fatal(err)
	}
	p, err := pdp.New(pdp.Config{Policy: pol, Clock: func() time.Time { return dNow }})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.TrustAuthority(hr); err != nil {
		t.Fatal(err)
	}
	dec, err := p.Decide(pdp.Request{
		Credentials: creds,
		Operation:   "HandleCash", Target: "till",
		Context: bctx.MustParse("Branch=York, Period=2006"),
	})
	if err != nil || !dec.Allowed || dec.User != "alice" {
		t.Fatalf("decision = %+v, %v", dec, err)
	}

	// A tampered credential published by anyone is still rejected at the
	// PDP — the repository is untrusted storage.
	forged := creds[0]
	forged.Attributes = []credential.Attribute{{Type: "role", Value: "Auditor"}}
	if _, err := dirClient.Publish(forged); err != nil {
		t.Fatal(err)
	}
	creds2, err := dirClient.Fetch("alice", dNow)
	if err != nil || len(creds2) != 2 {
		t.Fatalf("Fetch after forge = %v, %v", creds2, err)
	}
	dec, err = p.Decide(pdp.Request{
		Credentials: creds2,
		Operation:   "HandleCash", Target: "till",
		Context: bctx.MustParse("Branch=York, Period=2006"),
	})
	if err != nil {
		t.Fatal(err)
	}
	// The genuine Teller credential still validates; the forged one is
	// simply rejected by the CVS.
	if !dec.Allowed || len(dec.Roles) != 1 || dec.Roles[0] != rbac.RoleName("Teller") {
		t.Fatalf("decision with forged extra = %+v", dec)
	}
}

func TestHTTPErrors(t *testing.T) {
	ts := httptest.NewServer(NewServer(NewRepository()))
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL, nil)

	// Missing holder.
	resp, err := ts.Client().Get(ts.URL + FetchPath)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("missing holder = %d", resp.StatusCode)
	}
	// Bad at parameter.
	resp, err = ts.Client().Get(ts.URL + FetchPath + "?holder=x&at=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("bad at = %d", resp.StatusCode)
	}
	// Publish with GET.
	resp, err = ts.Client().Get(ts.URL + PublishPath)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Errorf("publish GET = %d", resp.StatusCode)
	}
	// Holderless publish through the client.
	if _, err := c.Publish(credential.Credential{}); err == nil {
		t.Error("holderless publish accepted")
	}
	// Fetch for unknown holder: empty, no error.
	creds, err := c.Fetch("nobody", dNow)
	if err != nil || len(creds) != 0 {
		t.Errorf("unknown holder = %v, %v", creds, err)
	}
}
