// Package directory implements the remaining pieces of the PERMIS
// infrastructure of Figure 4: the privilege allocation (PA) sub-system
// that issues role credentials, and the attribute repository those
// credentials are published to (the paper's LDAP directories, §5.1:
// "User's roles and attributes are typically stored in one or more LDAP
// directories"). PEPs fetch a user's credentials from the repository and
// present them to the PDP, whose CVS revalidates everything — the
// repository is untrusted storage, exactly like an LDAP server in
// PERMIS.
//
// An HTTP front end and client make the repository reachable from other
// processes in the virtual organisation.
package directory

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"msod/internal/credential"
	"msod/internal/rbac"
)

// ErrNotFound is returned when revoking an unknown credential.
var ErrNotFound = errors.New("directory: credential not found")

// ID identifies a published credential: the hex SHA-256 of its
// canonical JSON (content-addressed, so duplicates collapse).
type ID string

// CredentialID computes the content address of a credential.
func CredentialID(c credential.Credential) (ID, error) {
	payload, err := json.Marshal(c)
	if err != nil {
		return "", fmt.Errorf("directory: marshal credential: %w", err)
	}
	sum := sha256.Sum256(payload)
	return ID(hex.EncodeToString(sum[:])), nil
}

// Entry is a stored credential with its content address.
type Entry struct {
	ID         ID                    `json:"id"`
	Credential credential.Credential `json:"credential"`
}

// Repository is the in-memory attribute directory: credentials indexed
// by holder. It performs no validation — like LDAP, it stores what
// authorities publish and relying parties verify signatures themselves.
// Repository is safe for concurrent use.
type Repository struct {
	mu       sync.RWMutex
	byHolder map[string]map[ID]credential.Credential
}

// NewRepository returns an empty repository.
func NewRepository() *Repository {
	return &Repository{byHolder: make(map[string]map[ID]credential.Credential)}
}

// Publish stores a credential and returns its content address.
// Publishing the same credential twice is idempotent.
func (r *Repository) Publish(c credential.Credential) (ID, error) {
	if c.Holder == "" {
		return "", fmt.Errorf("directory: credential has no holder")
	}
	id, err := CredentialID(c)
	if err != nil {
		return "", err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.byHolder[c.Holder]
	if m == nil {
		m = make(map[ID]credential.Credential)
		r.byHolder[c.Holder] = m
	}
	m[id] = c
	return id, nil
}

// Revoke removes a credential by content address (the PA sub-system's
// revocation; PERMIS would publish a revocation list — content removal
// has the same effect against a repository-fetching PEP).
func (r *Repository) Revoke(holder string, id ID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.byHolder[holder]
	if _, ok := m[id]; !ok {
		return fmt.Errorf("%w: holder %q id %s", ErrNotFound, holder, id)
	}
	delete(m, id)
	if len(m) == 0 {
		delete(r.byHolder, holder)
	}
	return nil
}

// Fetch returns the holder's credentials that are valid at the given
// time, sorted by content address for determinism. Expired ones are
// filtered (the repository-side analogue of an LDAP search filter); the
// PDP still revalidates.
func (r *Repository) Fetch(holder string, at time.Time) []Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []Entry
	for id, c := range r.byHolder[holder] {
		if at.Before(c.NotBefore) || at.After(c.NotAfter) {
			continue
		}
		out = append(out, Entry{ID: id, Credential: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Holders returns all holders with stored credentials, sorted.
func (r *Repository) Holders() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.byHolder))
	for h := range r.byHolder {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of stored credentials.
func (r *Repository) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, m := range r.byHolder {
		n += len(m)
	}
	return n
}

// Allocator is the PA sub-system: an authority bound to a repository,
// issuing and publishing role credentials in one step.
type Allocator struct {
	authority *credential.Authority
	repo      *Repository
}

// NewAllocator binds an authority to a repository.
func NewAllocator(a *credential.Authority, repo *Repository) (*Allocator, error) {
	if a == nil || repo == nil {
		return nil, fmt.Errorf("directory: allocator needs an authority and a repository")
	}
	return &Allocator{authority: a, repo: repo}, nil
}

// Allocate issues a role credential for the holder and publishes it,
// returning its content address.
func (al *Allocator) Allocate(holder string, role rbac.RoleName, notBefore, notAfter time.Time) (ID, error) {
	cred, err := al.authority.IssueRole(holder, role, notBefore, notAfter)
	if err != nil {
		return "", err
	}
	return al.repo.Publish(cred)
}

// Revoke removes a previously allocated credential.
func (al *Allocator) Revoke(holder string, id ID) error {
	return al.repo.Revoke(holder, id)
}

// HTTP front end -------------------------------------------------------

// API paths of the directory service.
const (
	// FetchPath serves GET ?holder=...&at=RFC3339 (at optional).
	FetchPath = "/v1/credentials"
	// PublishPath serves POST with a JSON credential body.
	PublishPath = "/v1/publish"
)

// Server exposes a repository over HTTP.
type Server struct {
	repo *Repository
	mux  *http.ServeMux
}

// NewServer wraps a repository.
func NewServer(repo *Repository) *Server {
	s := &Server{repo: repo, mux: http.NewServeMux()}
	s.mux.HandleFunc(FetchPath, s.handleFetch)
	s.mux.HandleFunc(PublishPath, s.handlePublish)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handleFetch(w http.ResponseWriter, r *http.Request) {
	holder := r.URL.Query().Get("holder")
	if holder == "" {
		http.Error(w, `missing "holder" query parameter`, http.StatusBadRequest)
		return
	}
	at := time.Now()
	if raw := r.URL.Query().Get("at"); raw != "" {
		t, err := time.Parse(time.RFC3339, raw)
		if err != nil {
			http.Error(w, "bad \"at\" parameter: "+err.Error(), http.StatusBadRequest)
			return
		}
		at = t
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.repo.Fetch(holder, at))
}

func (s *Server) handlePublish(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var c credential.Credential
	if err := json.NewDecoder(r.Body).Decode(&c); err != nil {
		http.Error(w, "decode: "+err.Error(), http.StatusBadRequest)
		return
	}
	id, err := s.repo.Publish(c)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]string{"id": string(id)})
}

// Client fetches credentials from a remote directory, as a PEP would
// query an LDAP directory.
type Client struct {
	base string
	http *http.Client
}

// NewClient builds a directory client; nil httpClient uses the default.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: base, http: httpClient}
}

// Fetch returns the holder's currently valid credentials.
func (c *Client) Fetch(holder string, at time.Time) ([]credential.Credential, error) {
	url := fmt.Sprintf("%s%s?holder=%s&at=%s", c.base, FetchPath, holder, at.UTC().Format(time.RFC3339))
	resp, err := c.http.Get(url)
	if err != nil {
		return nil, fmt.Errorf("directory: fetch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("directory: fetch: status %d", resp.StatusCode)
	}
	var entries []Entry
	if err := json.NewDecoder(resp.Body).Decode(&entries); err != nil {
		return nil, fmt.Errorf("directory: fetch decode: %w", err)
	}
	out := make([]credential.Credential, len(entries))
	for i, e := range entries {
		out[i] = e.Credential
	}
	return out, nil
}

// Publish uploads a credential and returns its content address.
func (c *Client) Publish(cred credential.Credential) (ID, error) {
	body, err := json.Marshal(cred)
	if err != nil {
		return "", fmt.Errorf("directory: marshal: %w", err)
	}
	resp, err := c.http.Post(c.base+PublishPath, "application/json", bytes.NewReader(body))
	if err != nil {
		return "", fmt.Errorf("directory: publish: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("directory: publish: status %d", resp.StatusCode)
	}
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", fmt.Errorf("directory: publish decode: %w", err)
	}
	return ID(out["id"]), nil
}
