package integration

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"msod"
	"msod/internal/cluster"
	"msod/internal/server"
)

var traceAuditKey = []byte("trace-audit-secret")

// TestClusterTraceAssembly is the tracing acceptance run: three
// audited, trace-retaining shards behind a gateway, the paper's tax
// workflow driven through it, and then — for every decision — the
// assembled span tree fetched back by the trace ID the decision
// response echoed. The assembled trace must carry the same trace ID
// the HMAC-chained audit trail attests, every refusal must be
// retrievable (tail sampling keeps 100% of refusals), the merged tree
// must name the pipeline stages with shard attribution, and with a
// shard down the fan-out must fail closed with 503 rather than
// misreport a partial tree.
func TestClusterTraceAssembly(t *testing.T) {
	pol, err := msod.ParsePolicy([]byte(voPolicyXML))
	if err != nil {
		t.Fatal(err)
	}
	type tracedShard struct {
		id    string
		dir   string
		trail *msod.AuditWriter
		srv   *httptest.Server
	}
	shards := make([]*tracedShard, 3)
	topo := make([]cluster.Shard, 0, len(shards))
	for i := range shards {
		id := fmt.Sprintf("shard-%c", 'a'+i)
		dir := filepath.Join(t.TempDir(), id)
		trail, err := msod.NewAuditWriter(dir, traceAuditKey, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		p, err := msod.NewPDP(msod.PDPConfig{Policy: pol, Trail: trail})
		if err != nil {
			t.Fatal(err)
		}
		// SampleEvery 1 retains every fast grant too, so each decision in
		// the workflow has a retrievable trace; refusals would be kept
		// regardless.
		st := msod.NewTraceStore(msod.TraceStoreConfig{SampleEvery: 1})
		s := &tracedShard{id: id, dir: dir, trail: trail,
			srv: httptest.NewServer(msod.NewServer(p, msod.WithServerTraceStore(st)))}
		t.Cleanup(s.srv.Close)
		shards[i] = s
		topo = append(topo, cluster.Shard{ID: id, BaseURL: s.srv.URL})
	}
	gw, err := cluster.New(cluster.Config{Shards: topo, FailAfter: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	gw.Checker().CheckNow()
	gwSrv := httptest.NewServer(gw)
	t.Cleanup(gwSrv.Close)
	c := server.NewClient(gwSrv.URL, nil)

	const taxCtx = "TaxOffice=Leeds, taxRefundProcess=p1"
	steps := []struct {
		user, role, op, target string
		ok                     bool
	}{
		{"c1", "Clerk", "prepareCheck", "http://www.myTaxOffice.com/Check", true},
		{"m1", "Manager", "approve/disapproveCheck", "http://www.myTaxOffice.com/Check", true},
		{"m1", "Manager", "approve/disapproveCheck", "http://www.myTaxOffice.com/Check", false},
		{"m2", "Manager", "approve/disapproveCheck", "http://www.myTaxOffice.com/Check", true},
		{"c1", "Clerk", "confirmCheck", "http://secret.location.com/audit", false},
		{"c2", "Clerk", "confirmCheck", "http://secret.location.com/audit", true},
	}
	traceIDs := make([]string, len(steps))
	var refusalTraces []string
	for i, st := range steps {
		resp, err := c.Decision(server.DecisionRequest{
			User: st.user, Roles: []string{st.role},
			Operation: st.op, Target: st.target, Context: taxCtx,
			RequestID: fmt.Sprintf("trace-step-%02d", i),
		})
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if resp.Allowed != st.ok {
			t.Fatalf("step %d: allowed=%v, want %v (%s)", i, resp.Allowed, st.ok, resp.Reason)
		}
		if resp.TraceID == "" {
			t.Fatalf("step %d: decision response carries no trace ID", i)
		}
		traceIDs[i] = resp.TraceID
		if !st.ok {
			refusalTraces = append(refusalTraces, resp.TraceID)
		}

		// The assembled trace must be retrievable through the gateway by
		// the ID the response echoed, and must agree on the envelope.
		rec, err := c.Trace(resp.TraceID)
		if err != nil {
			t.Fatalf("step %d: trace %s through gateway: %v", i, resp.TraceID, err)
		}
		if rec.TraceID != resp.TraceID {
			t.Fatalf("step %d: assembled trace ID %q, want %q", i, rec.TraceID, resp.TraceID)
		}
		wantOutcome := "deny"
		wantSampled := "refusal"
		if st.ok {
			wantOutcome, wantSampled = "grant", "sampled"
		}
		if rec.Outcome != wantOutcome || rec.SampledFor != wantSampled {
			t.Fatalf("step %d: outcome/sampledFor = %q/%q, want %q/%q",
				i, rec.Outcome, rec.SampledFor, wantOutcome, wantSampled)
		}
		if rec.User != st.user || rec.Operation != st.op || rec.Target != st.target || rec.Context != taxCtx {
			t.Fatalf("step %d: trace envelope %+v does not match the request", i, rec)
		}

		// Exactly one shard decided, every span is attributed to it, and
		// the stage spans carry the msod_stage_duration_seconds names.
		if len(rec.Shards) != 1 {
			t.Fatalf("step %d: assembled shards %v, want exactly one", i, rec.Shards)
		}
		got := map[string]bool{}
		for _, sp := range rec.Spans {
			if sp.Shard != rec.Shards[0] {
				t.Fatalf("step %d: span %q attributed to %q, want %q", i, sp.Name, sp.Shard, rec.Shards[0])
			}
			got[sp.Name] = true
		}
		for _, stage := range []string{"cvs", "rbac", "msod", "audit"} {
			if !got[stage] {
				t.Fatalf("step %d: assembled trace lacks stage span %q (has %v)", i, stage, got)
			}
		}

		// The raw HTTP response attributes the answer to the deciding
		// shard via X-Msod-Shard, like the other fan-out endpoints.
		raw, err := http.Get(gwSrv.URL + server.TracesPath + resp.TraceID)
		if err != nil {
			t.Fatalf("step %d: raw trace fetch: %v", i, err)
		}
		raw.Body.Close()
		if hdr := raw.Header.Get("X-Msod-Shard"); hdr != strings.Join(rec.Shards, ",") {
			t.Fatalf("step %d: X-Msod-Shard %q, want %q", i, hdr, strings.Join(rec.Shards, ","))
		}
	}
	if len(refusalTraces) == 0 {
		t.Fatal("workflow produced no refusals; the retention assertion proved nothing")
	}

	// The trail cross-check: every trace ID the server echoed (and under
	// which the span tree is retrievable) is the same ID the HMAC chain
	// attests for that decision.
	attested := map[string]bool{}
	for _, s := range shards {
		if err := s.trail.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := msod.NewAuditReader(s.dir, traceAuditKey)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Verify(); err != nil {
			t.Fatalf("shard %s trail fails verification: %v", s.id, err)
		}
		evs, err := r.All()
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range evs {
			attested[ev.TraceID] = true
		}
	}
	for i, tid := range traceIDs {
		if !attested[tid] {
			t.Fatalf("step %d: trace %s is retrievable but not attested by any shard's audit chain", i, tid)
		}
	}

	// Fail-closed: with one shard down, part of a tree could live on the
	// unreachable shard, so the gateway must refuse trace assembly with
	// 503 — even for traces whose spans all live on healthy shards.
	shards[2].srv.Close()
	gw.Checker().CheckNow()
	_, err = c.Trace(refusalTraces[0])
	var apiErr *server.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("trace with a shard down: err = %v, want APIError 503", err)
	}
}
