package integration

import (
	"errors"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"msod"
	"msod/internal/adi"
	"msod/internal/cluster"
	"msod/internal/server"
)

// clusterShard is one in-process PDP backend with a durable retained
// ADI: an httptest server the gateway can kill and a WAL directory a
// restart recovers from.
type clusterShard struct {
	id    string
	dir   string
	store *adi.DurableStore
	srv   *httptest.Server
}

var clusterShardKey = []byte("cluster-shard-secret")

// startShard opens (or reopens) the durable store in dir and serves a
// fresh PDP on it. Reopening replays the WAL, so by the time the
// server is listening — and can answer a health probe — the retained
// ADI already holds the full pre-crash history.
func startShard(t *testing.T, pol *msod.Policy, id, dir string) *clusterShard {
	t.Helper()
	store, err := adi.OpenDurable(dir, clusterShardKey, false)
	if err != nil {
		t.Fatal(err)
	}
	p, err := msod.NewPDP(msod.PDPConfig{Policy: pol, Store: store})
	if err != nil {
		store.Close()
		t.Fatal(err)
	}
	return &clusterShard{id: id, dir: dir, store: store, srv: httptest.NewServer(msod.NewServer(p))}
}

// kill simulates a crash: the HTTP listener and the WAL handle go away
// but the directory — the durable state — survives.
func (s *clusterShard) kill() {
	s.srv.Close()
	s.store.Close()
}

// newCluster builds n durable shards behind a gateway and returns the
// gateway's own httptest server plus the shards by ID.
func newCluster(t *testing.T, n int) (*cluster.Gateway, *httptest.Server, map[string]*clusterShard) {
	t.Helper()
	pol, err := msod.ParsePolicy([]byte(voPolicyXML))
	if err != nil {
		t.Fatal(err)
	}
	shards := make(map[string]*clusterShard, n)
	topo := make([]cluster.Shard, 0, n)
	for i := 0; i < n; i++ {
		id := []string{"shard-a", "shard-b", "shard-c", "shard-d"}[i]
		s := startShard(t, pol, id, filepath.Join(t.TempDir(), id))
		shards[id] = s
		topo = append(topo, cluster.Shard{ID: id, BaseURL: s.srv.URL})
	}
	gw, err := cluster.New(cluster.Config{Shards: topo, Retries: -1, FailAfter: 1})
	if err != nil {
		t.Fatal(err)
	}
	gw.Checker().CheckNow()
	gwSrv := httptest.NewServer(gw)
	t.Cleanup(func() {
		gwSrv.Close()
		gw.Close()
		for _, s := range shards {
			s.srv.Close()
			s.store.Close()
		}
	})
	return gw, gwSrv, shards
}

// TestClusterScenariosAcrossShards replays the paper's Example 1 (bank)
// and Example 2 (tax) scenarios through the gateway against three
// shards. Every per-user MSoD verdict must be identical to the
// single-PDP runs: sharding by user keeps each user's whole retained
// ADI on one shard, so history-dependent denials survive distribution.
func TestClusterScenariosAcrossShards(t *testing.T) {
	gw, gwSrv, shards := newCluster(t, 3)
	c := server.NewClient(gwSrv.URL, nil)

	decide := func(user string, roles []string, op, target, ctx string) server.DecisionResponse {
		t.Helper()
		resp, err := c.Decision(server.DecisionRequest{
			User: user, Roles: roles, Operation: op, Target: target, Context: ctx,
		})
		if err != nil {
			t.Fatalf("%s %s by %s: %v", op, target, user, err)
		}
		return resp
	}

	// --- Example 1: banking MMER across sessions ---
	if r := decide("alice", []string{"Teller"}, "HandleCash", "till", "Branch=York, Period=2006"); !r.Allowed {
		t.Fatalf("teller = %+v", r)
	}
	if r := decide("alice", []string{"Auditor"}, "Audit", "ledger", "Branch=Leeds, Period=2006"); r.Allowed || r.Phase != "msod" {
		t.Fatalf("alice audit should hit MSoD, got %+v", r)
	}
	if r := decide("bob", []string{"Auditor"}, "Audit", "ledger", "Branch=York, Period=2006"); !r.Allowed {
		t.Fatalf("bob audit = %+v", r)
	}
	if r := decide("bob", []string{"Auditor"}, "CommitAudit", "audit", "Branch=York, Period=2006"); !r.Allowed || r.Purged == 0 {
		t.Fatalf("commit = %+v", r)
	}
	// Distribution subtlety, deliberately fail-safe: bob's LastStep
	// purged the 2006 context on HIS shard only. If alice lives on a
	// different shard, her Teller record survives there and she stays
	// denied — the skew can only add denials, never false grants
	// (cluster-wide closure is the administrative purge below, which
	// the gateway fans out to every shard). If the hash colocates
	// alice with bob, the purge removed her record too and the cluster
	// matches single-PDP semantics exactly: allowed.
	aliceShard, _ := gw.ShardFor("alice")
	bobShard, _ := gw.ShardFor("bob")
	colocated := aliceShard == bobShard
	if r := decide("alice", []string{"Auditor"}, "Audit", "ledger", "Branch=York, Period=2006"); r.Allowed != colocated {
		t.Fatalf("post-laststep audit = %+v, want allowed=%v (alice on %s, bob on %s)",
			r, colocated, aliceShard, bobShard)
	}
	if _, err := c.Manage(server.ManagementWireRequest{
		User: "root", Roles: []string{"RetainedADIController"},
		Operation: "purgeContext", ContextPattern: "Branch=York, Period=2006",
	}); err != nil {
		t.Fatal(err)
	}
	if r := decide("alice", []string{"Auditor"}, "Audit", "ledger", "Branch=York, Period=2006"); !r.Allowed {
		t.Fatalf("post-fanout audit = %+v", r)
	}

	// --- Example 2: tax-refund MMEPs, canonical step order ---
	const taxCtx = "TaxOffice=Leeds, taxRefundProcess=p1"
	steps := []struct {
		user, role, op, target string
		ok                     bool
	}{
		{"c1", "Clerk", "prepareCheck", "http://www.myTaxOffice.com/Check", true},
		{"m1", "Manager", "approve/disapproveCheck", "http://www.myTaxOffice.com/Check", true},
		{"m1", "Manager", "approve/disapproveCheck", "http://www.myTaxOffice.com/Check", false},
		{"m2", "Manager", "approve/disapproveCheck", "http://www.myTaxOffice.com/Check", true},
		{"m1", "Manager", "combineResults", "http://secret.location.com/results", false},
		{"m3", "Manager", "combineResults", "http://secret.location.com/results", true},
		{"c1", "Clerk", "confirmCheck", "http://secret.location.com/audit", false},
		{"c2", "Clerk", "confirmCheck", "http://secret.location.com/audit", true},
	}
	for i, st := range steps {
		r := decide(st.user, []string{st.role}, st.op, st.target, taxCtx)
		if r.Allowed != st.ok {
			t.Fatalf("step %d: %s by %s allowed=%v, want %v (%s)", i, st.op, st.user, r.Allowed, st.ok, r.Reason)
		}
	}

	// The last step purged the tax context cluster-wide; only the bank
	// records alice and bob wrote post-commit remain. Management stats
	// fan out and sum across shards.
	res, err := c.Manage(server.ManagementWireRequest{
		User: "root", Roles: []string{"RetainedADIController"}, Operation: "stats",
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range shards {
		total += s.store.Len()
	}
	if res.Records != total {
		t.Errorf("fanout stats = %d, shard sum = %d", res.Records, total)
	}

	// The hard invariant behind fail-closed routing: no user's history
	// is ever split across shards, and each user's records sit on the
	// shard the ring names as owner. The activation sentinel is exempt
	// by design: every shard keeps its own marker set (that is the
	// point — FirstStep activation must be visible cluster-wide).
	owners := map[string]string{}
	for id, s := range shards {
		for _, rec := range s.store.All() {
			user := string(rec.User)
			if user == string(adi.ActivationUser) {
				continue
			}
			if prev, ok := owners[user]; ok && prev != id {
				t.Fatalf("user %s has retained ADI on both %s and %s", user, prev, id)
			}
			owners[user] = id
			if want, _ := gw.ShardFor(user); want != id {
				t.Errorf("user %s's records on %s but ring owner is %s", user, id, want)
			}
		}
	}
}

// TestClusterShardKillRestartNoFalseGrants is the acceptance check for
// durable-ADI failover: kill a shard mid-scenario, observe fail-closed
// 503s for exactly its users, restart it from the same WAL at a new
// address, and verify the recovered history still denies what it must
// — zero MSoD false grants across the crash.
func TestClusterShardKillRestartNoFalseGrants(t *testing.T) {
	gw, gwSrv, shards := newCluster(t, 3)
	c := server.NewClient(gwSrv.URL, nil)

	decide := func(user string, roles []string, op, target, ctx string) (server.DecisionResponse, error) {
		return c.Decision(server.DecisionRequest{
			User: user, Roles: roles, Operation: op, Target: target, Context: ctx,
		})
	}

	// alice handles cash: her shard records Teller history in its WAL.
	if r, err := decide("alice", []string{"Teller"}, "HandleCash", "till", "Branch=York, Period=2006"); err != nil || !r.Allowed {
		t.Fatalf("teller = %+v, %v", r, err)
	}
	owner, _ := gw.ShardFor("alice")

	// Find a user owned by a DIFFERENT shard to prove the rest of the
	// cluster keeps serving.
	other := ""
	for _, cand := range []string{"bob", "carol", "dave", "erin", "frank", "grace"} {
		if s, _ := gw.ShardFor(cand); s != owner {
			other = cand
			break
		}
	}
	if other == "" {
		t.Fatal("no user found on a different shard")
	}

	// Crash alice's shard. The gateway notices on the next probe round.
	shards[owner].kill()
	gw.Checker().CheckNow()

	// Decisions for alice fail closed — never re-routed to a live shard
	// whose (empty) view of her history would grant her Audit request.
	_, err := decide("alice", []string{"Auditor"}, "Audit", "ledger", "Branch=Leeds, Period=2006")
	var apiErr *server.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 503 {
		t.Fatalf("decision on dead shard: err = %v, want 503 APIError", err)
	}
	// Users of live shards are untouched.
	if r, err := decide(other, []string{"Auditor"}, "Audit", "ledger", "Branch=York, Period=2006"); err != nil || !r.Allowed {
		t.Fatalf("%s on live shard = %+v, %v", other, r, err)
	}
	// Management requires the whole cluster: a purge that skipped the
	// dead shard would silently keep records.
	if _, err := c.Manage(server.ManagementWireRequest{
		User: "root", Roles: []string{"RetainedADIController"}, Operation: "stats",
	}); !errors.As(err, &apiErr) || apiErr.Status != 503 {
		t.Fatalf("management with dead shard: err = %v, want 503", err)
	}

	// Restart the shard from its surviving WAL directory on a NEW
	// address. OpenDurable replays the log before the listener exists,
	// so a reachable shard is by construction a recovered shard.
	pol, err := msod.ParsePolicy([]byte(voPolicyXML))
	if err != nil {
		t.Fatal(err)
	}
	reborn := startShard(t, pol, owner, shards[owner].dir)
	t.Cleanup(func() { reborn.srv.Close(); reborn.store.Close() })
	if err := gw.SetShardAddr(owner, reborn.srv.URL); err != nil {
		t.Fatal(err)
	}

	// Until a probe succeeds the shard stays Down: reachable is not
	// enough, the gateway re-admits only on observed health.
	if _, err := decide("alice", []string{"Auditor"}, "Audit", "ledger", "Branch=Leeds, Period=2006"); !errors.As(err, &apiErr) || apiErr.Status != 503 {
		t.Fatalf("pre-probe decision: err = %v, want 503", err)
	}
	gw.Checker().CheckNow()

	// The moment of truth: alice's Teller history crossed the crash, so
	// the MMER must still deny her the Auditor step. A grant here would
	// be the false grant the durable ADI exists to prevent.
	r, err := decide("alice", []string{"Auditor"}, "Audit", "ledger", "Branch=Leeds, Period=2006")
	if err != nil {
		t.Fatal(err)
	}
	if r.Allowed {
		t.Fatal("FALSE GRANT: restarted shard lost alice's retained ADI")
	}
	if r.Phase != "msod" {
		t.Errorf("denial phase = %q, want msod", r.Phase)
	}
	// Her permitted operation still works on the reborn shard.
	if r, err := decide("alice", []string{"Teller"}, "HandleCash", "till", "Branch=York, Period=2006"); err != nil || !r.Allowed {
		t.Fatalf("post-restart teller = %+v, %v", r, err)
	}
}
