package integration

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"msod"
	"msod/internal/adi"
	"msod/internal/cluster"
	"msod/internal/server"
)

// replicaShard is one owning shard plus its advisory tier: a durable
// PDP publishing decision events through a broker, and a replica
// follower serving the mirror over HTTP.
type replicaShard struct {
	id     string
	store  *adi.DurableStore
	pdp    *msod.PDP
	broker *msod.EventBroker
	srv    *httptest.Server // owner
	fol    *msod.ReplicaFollower
	rsrv   *httptest.Server // replica
}

// newReplicaCluster builds n owner shards, one event-fed replica each,
// and a gateway configured to read advisory state replica-first.
func newReplicaCluster(t *testing.T, n int) (*cluster.Gateway, *httptest.Server, map[string]*replicaShard) {
	t.Helper()
	pol, err := msod.ParsePolicy([]byte(voPolicyXML))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	shards := make(map[string]*replicaShard, n)
	topo := make([]cluster.Shard, 0, n)
	replicas := make(map[string][]string, n)
	for i := 0; i < n; i++ {
		id := []string{"shard-a", "shard-b", "shard-c"}[i]
		store, err := adi.OpenDurable(filepath.Join(t.TempDir(), id), clusterShardKey, false)
		if err != nil {
			t.Fatal(err)
		}
		broker := msod.NewEventBroker(256)
		p, err := msod.NewPDP(msod.PDPConfig{
			Policy: pol, Store: store,
			Observer: func(ev msod.DecisionEvent) { broker.Publish(ev) },
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(msod.NewServer(p, msod.WithServerEventBroker(broker)))
		fol, err := msod.NewReplicaFollower(msod.ReplicaConfig{
			Owner: srv.URL, Policy: pol,
			ReconnectBackoff: 10 * time.Millisecond, ResyncBackoff: 10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		go func() { _ = fol.Run(ctx) }()
		rsrv := httptest.NewServer(msod.NewReplicaServer(fol))
		s := &replicaShard{id: id, store: store, pdp: p, broker: broker, srv: srv, fol: fol, rsrv: rsrv}
		shards[id] = s
		topo = append(topo, cluster.Shard{ID: id, BaseURL: srv.URL})
		replicas[id] = []string{rsrv.URL}
		t.Cleanup(func() { rsrv.Close(); srv.Close(); store.Close() })
	}
	gw, err := cluster.New(cluster.Config{Shards: topo, Retries: -1, FailAfter: 1, Replicas: replicas})
	if err != nil {
		t.Fatal(err)
	}
	gw.Checker().CheckNow()
	gwSrv := httptest.NewServer(gw)
	t.Cleanup(func() { gwSrv.Close(); gw.Close() })
	// Registered last so it runs FIRST at teardown (cleanups are LIFO):
	// the followers' SSE streams must end before the owner servers
	// close, or srv.Close blocks on the live event connections.
	t.Cleanup(cancel)
	return gw, gwSrv, shards
}

// drainLag waits until every replica has applied its owner's full
// event history and can prove freshness.
func drainLag(t *testing.T, shards map[string]*replicaShard) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for _, s := range shards {
		for s.fol.Mirror().AppliedSeq() < s.broker.Seq() || !s.fol.Fresh() {
			if time.Now().After(deadline) {
				t.Fatalf("replica of %s never converged: %+v", s.id, s.fol.Status())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// rawAdvice posts an advice request straight at the gateway so the
// response headers are visible.
func rawAdvice(t *testing.T, gwURL, user, role, op, target, bc string) (*http.Response, server.DecisionResponse) {
	t.Helper()
	body, _ := json.Marshal(server.DecisionRequest{
		User: user, Roles: []string{role}, Operation: op, Target: target, Context: bc,
	})
	resp, err := http.Post(gwURL+server.AdvicePath, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var dec server.DecisionResponse
	if err := json.NewDecoder(resp.Body).Decode(&dec); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp, dec
}

// TestClusterReplicaTierServesConvergedAdvice is the acceptance test
// for the advisory read-replica tier: once lag drains, replica-served
// advisory answers equal the owners' for every probe (seq-stamped so
// the caller can see which mirror state answered), and at no point —
// syncing, converged, or dead — does the tier produce a false grant.
func TestClusterReplicaTierServesConvergedAdvice(t *testing.T) {
	gw, gwSrv, shards := newReplicaCluster(t, 3)
	c := server.NewClient(gwSrv.URL, nil)

	// Seed the paper's bank scenario through the gateway (decisions
	// route to owners; replicas only ever see the event stream).
	decide := func(user, role, op, target, bc string, want bool) {
		t.Helper()
		r, err := c.Decision(server.DecisionRequest{
			User: user, Roles: []string{role}, Operation: op, Target: target, Context: bc,
		})
		if err != nil {
			t.Fatal(err)
		}
		if r.Allowed != want {
			t.Fatalf("%s by %s: allowed=%v want %v (%s)", op, user, r.Allowed, want, r.Reason)
		}
	}
	decide("alice", "Teller", "HandleCash", "till", "Branch=York, Period=2006", true)
	decide("bob", "Auditor", "Audit", "ledger", "Branch=York, Period=2006", true)
	decide("carol", "Teller", "HandleCash", "till", "Branch=Leeds, Period=2006", true)

	drainLag(t, shards)

	// Every advisory probe: the gateway's (replica-served) answer must
	// equal the owning shard's own advisory verdict.
	probes := []struct {
		user, role, op, target string
	}{
		{"alice", "Auditor", "Audit", "ledger"},   // MMER: must deny
		{"alice", "Teller", "HandleCash", "till"}, // repeat: grant
		{"bob", "Teller", "HandleCash", "till"},   // MMER: must deny
		{"carol", "Auditor", "Audit", "ledger"},   // MMER: must deny
		{"dave", "Auditor", "Audit", "ledger"},    // clean history: grant
	}
	for _, pr := range probes {
		resp, gwDec := rawAdvice(t, gwSrv.URL, pr.user, pr.role, pr.op, pr.target, "Branch=York, Period=2006")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("advice %s/%s = %d", pr.user, pr.op, resp.StatusCode)
		}
		if resp.Header.Get(msod.ReplicaSeqHeader) == "" {
			t.Errorf("advice %s/%s not replica-served (no seq stamp) — replicas are converged, owner answered", pr.user, pr.op)
		}
		owner, _ := gw.ShardFor(pr.user)
		oc := server.NewClient(shards[owner].srv.URL, nil)
		ownerDec, err := oc.AdviceCtx(context.Background(), server.DecisionRequest{
			User: pr.user, Roles: []string{pr.role}, Operation: pr.op, Target: pr.target,
			Context: "Branch=York, Period=2006",
		})
		if err != nil {
			t.Fatal(err)
		}
		if gwDec.Allowed != ownerDec.Allowed {
			t.Errorf("DIVERGED: %s %s via replica allowed=%v, owner says %v",
				pr.user, pr.op, gwDec.Allowed, ownerDec.Allowed)
		}
	}

	// User-state reads are replica-served too, and identical in content.
	for _, user := range []string{"alice", "bob", "carol"} {
		resp, err := http.Get(gwSrv.URL + server.StateUsersPath + user)
		if err != nil {
			t.Fatal(err)
		}
		var viaReplica msod.UserStateView
		if err := json.NewDecoder(resp.Body).Decode(&viaReplica); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.Header.Get(msod.ReplicaSeqHeader) == "" {
			t.Errorf("state read for %s not replica-served", user)
		}
		owner, _ := gw.ShardFor(user)
		ownerState, err := server.NewClient(shards[owner].srv.URL, nil).UserState(user)
		if err != nil {
			t.Fatal(err)
		}
		if len(viaReplica.Records) != len(ownerState.Records) {
			t.Errorf("state for %s: replica %d records, owner %d",
				user, len(viaReplica.Records), len(ownerState.Records))
		}
	}
}

// TestClusterReplicaNeverFalseGrants drives the tier through its
// degraded modes: a replica answering while its owner races ahead, a
// killed replica, and direct authoritative traffic at a replica. In
// every mode the MMER denial holds and authority stays with owners.
func TestClusterReplicaNeverFalseGrants(t *testing.T) {
	gw, gwSrv, shards := newReplicaCluster(t, 3)
	c := server.NewClient(gwSrv.URL, nil)

	// alice's Teller grant bars her Auditor step. Immediately after the
	// grant — before lag has provably drained — hammer the advisory
	// path: whether a replica or the owner answers each read, none may
	// say "would grant".
	if _, err := c.Decision(server.DecisionRequest{
		User: "alice", Roles: []string{"Teller"}, Operation: "HandleCash", Target: "till",
		Context: "Branch=York, Period=2006",
	}); err != nil {
		t.Fatal(err)
	}
	ownerID, _ := gw.ShardFor("alice")
	for i := 0; i < 50; i++ {
		resp, dec := rawAdvice(t, gwSrv.URL, "alice", "Auditor", "Audit", "ledger", "Branch=York, Period=2006")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("read %d: advice = %d", i, resp.StatusCode)
		}
		if dec.Allowed {
			t.Fatalf("FALSE GRANT on read %d (replica-served=%v): %+v",
				i, resp.Header.Get(msod.ReplicaSeqHeader) != "", dec)
		}
	}

	// Authoritative traffic aimed straight at a replica is refused 421,
	// and the refusal changes nothing: the owner still decides.
	body, _ := json.Marshal(server.DecisionRequest{
		User: "alice", Roles: []string{"Auditor"}, Operation: "Audit", Target: "ledger",
		Context: "Branch=York, Period=2006",
	})
	resp, err := http.Post(shards[ownerID].rsrv.URL+server.DecisionPath, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("decision at replica = %d, want 421", resp.StatusCode)
	}

	// Kill alice's replica outright: advisory reads silently fall back
	// to the owner — correct answers, no replica stamps, no errors.
	drainLag(t, shards)
	shards[ownerID].rsrv.Close()
	for i := 0; i < 5; i++ {
		resp, dec := rawAdvice(t, gwSrv.URL, "alice", "Auditor", "Audit", "ledger", "Branch=York, Period=2006")
		if resp.StatusCode != http.StatusOK || dec.Allowed {
			t.Fatalf("post-kill read %d = %d allowed=%v", i, resp.StatusCode, dec.Allowed)
		}
		if resp.Header.Get(msod.ReplicaSeqHeader) != "" {
			t.Errorf("post-kill read %d carries a replica stamp", i)
		}
	}
	// Decisions were never the replica's to make; they still commit.
	r, err := c.Decision(server.DecisionRequest{
		User: "alice", Roles: []string{"Auditor"}, Operation: "Audit", Target: "ledger",
		Context: "Branch=York, Period=2006",
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Allowed {
		t.Fatal("FALSE GRANT at the commit point after replica death")
	}
	if r.Phase != "msod" {
		t.Errorf("denial phase = %q, want msod (reason %s)", r.Phase, r.Reason)
	}
}
