package integration

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"msod"
	"msod/internal/cluster"
	"msod/internal/server"
)

// startElasticShard is startShard plus the two capabilities live
// resharding needs: the handoff surface and the event broker backing
// subtree-scoped snapshots. This is exactly what `msodd -handoff` runs.
func startElasticShard(t *testing.T, pol *msod.Policy, id, dir string) *clusterShard {
	t.Helper()
	store, err := msod.OpenDurableADI(dir, clusterShardKey, false)
	if err != nil {
		t.Fatal(err)
	}
	broker := msod.NewEventBroker(64)
	p, err := msod.NewPDP(msod.PDPConfig{
		Policy:   pol,
		Store:    store,
		Observer: func(ev msod.DecisionEvent) { broker.Publish(ev) },
	})
	if err != nil {
		store.Close()
		t.Fatal(err)
	}
	srv := httptest.NewServer(msod.NewServer(p,
		msod.WithServerHandoff(), msod.WithServerEventBroker(broker)))
	return &clusterShard{id: id, dir: dir, store: store, srv: srv}
}

// newElasticCluster builds n handoff-capable durable shards behind a
// gateway.
func newElasticCluster(t *testing.T, n int) (*cluster.Gateway, *httptest.Server, map[string]*clusterShard) {
	t.Helper()
	pol, err := msod.ParsePolicy([]byte(voPolicyXML))
	if err != nil {
		t.Fatal(err)
	}
	shards := make(map[string]*clusterShard, n)
	topo := make([]cluster.Shard, 0, n)
	for i := 0; i < n; i++ {
		id := []string{"shard-a", "shard-b", "shard-c", "shard-d"}[i]
		s := startElasticShard(t, pol, id, filepath.Join(t.TempDir(), id))
		shards[id] = s
		topo = append(topo, cluster.Shard{ID: id, BaseURL: s.srv.URL})
	}
	gw, err := cluster.New(cluster.Config{Shards: topo, Retries: -1, FailAfter: 1})
	if err != nil {
		t.Fatal(err)
	}
	gw.Checker().CheckNow()
	gwSrv := httptest.NewServer(gw)
	t.Cleanup(func() {
		gwSrv.Close()
		gw.Close()
		for _, s := range shards {
			s.srv.Close()
			s.store.Close()
		}
	})
	return gw, gwSrv, shards
}

// changeMembership POSTs one join/drain and waits the async handoff
// out through the public status endpoint, exactly as msodctl -wait
// does. Returns the finished handoff.
func changeMembership(t *testing.T, gwURL, path string, req cluster.ClusterMemberRequest) *cluster.HandoffStatus {
	t.Helper()
	payload, _ := json.Marshal(req)
	resp, err := http.Post(gwURL+path, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	var change cluster.ClusterChangeResponse
	if err := json.NewDecoder(resp.Body).Decode(&change); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("%s: status %d (%+v)", path, resp.StatusCode, change)
	}
	if change.Handoff == nil {
		t.Fatalf("%s: no handoff started", path)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		st := clusterStatusOf(t, gwURL)
		if st.Handoff == nil || st.Handoff.ID != change.Handoff.ID {
			if st.LastHandoff == nil || st.LastHandoff.ID != change.Handoff.ID {
				t.Fatalf("handoff %s vanished", change.Handoff.ID)
			}
			return st.LastHandoff
		}
		if time.Now().After(deadline) {
			t.Fatalf("handoff stuck in %s", st.Handoff.Phase)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func clusterStatusOf(t *testing.T, gwURL string) cluster.ClusterStatusResponse {
	t.Helper()
	resp, err := http.Get(gwURL + cluster.ClusterStatusPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st cluster.ClusterStatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// assertNoSplitHistory re-checks the cluster's hard invariant: every
// user's retained ADI lives whole on the shard the ring names owner.
func assertNoSplitHistory(t *testing.T, gw *cluster.Gateway, shards map[string]*clusterShard) {
	t.Helper()
	owners := map[string]string{}
	for id, s := range shards {
		for _, rec := range s.store.All() {
			user := string(rec.User)
			if prev, ok := owners[user]; ok && prev != id {
				t.Fatalf("user %s has retained ADI on both %s and %s", user, prev, id)
			}
			owners[user] = id
			if want, _ := gw.ShardFor(user); want != id {
				t.Errorf("user %s's records on %s but ring owner is %s", user, id, want)
			}
		}
	}
}

// TestElasticScaleOutAndDrainNoFalseGrants is the acceptance check for
// live resharding: seed MSoD history on a 2-shard cluster, scale out
// to 3 (moving real retained-ADI subtrees between real durable PDPs),
// then drain back to 2 — and at every stage each seeded user's MMER
// denial must hold. One grant that the pre-reshard cluster would have
// denied is the false grant the fail-closed handoff exists to prevent.
func TestElasticScaleOutAndDrainNoFalseGrants(t *testing.T) {
	gw, gwSrv, shards := newElasticCluster(t, 2)
	c := server.NewClient(gwSrv.URL, nil)

	// Seed: 24 tellers handle cash in Period=2006, binding each to the
	// MMER that forbids them auditing that period.
	users := make([]string, 0, 24)
	for i := 0; i < 24; i++ {
		users = append(users, fmt.Sprintf("teller-%02d", i))
	}
	for _, u := range users {
		r, err := c.Decision(server.DecisionRequest{
			User: u, Roles: []string{"Teller"},
			Operation: "HandleCash", Target: "till", Context: "Branch=York, Period=2006",
		})
		if err != nil || !r.Allowed {
			t.Fatalf("seed %s = %+v, %v", u, r, err)
		}
	}
	// The shadow expectation, verified against the pre-reshard cluster:
	// every seeded teller is denied the Auditor step; a fresh user is
	// not.
	audit := func(u string) (bool, string) {
		r, err := c.Decision(server.DecisionRequest{
			User: u, Roles: []string{"Auditor"},
			Operation: "Audit", Target: "ledger", Context: "Branch=Leeds, Period=2006",
		})
		if err != nil {
			t.Fatalf("audit %s: %v", u, err)
		}
		return r.Allowed, r.Phase
	}
	checkGrants := func(stage string) {
		t.Helper()
		for _, u := range users {
			if allowed, phase := audit(u); allowed || phase != "msod" {
				t.Fatalf("FALSE GRANT after %s: %s audit allowed=%v phase=%s", stage, u, allowed, phase)
			}
		}
	}
	checkGrants("seed")

	// Scale out: shard-c joins live and the gateway streams the moving
	// users' subtrees into it.
	pol, err := msod.ParsePolicy([]byte(voPolicyXML))
	if err != nil {
		t.Fatal(err)
	}
	joiner := startElasticShard(t, pol, "shard-c", filepath.Join(t.TempDir(), "shard-c"))
	t.Cleanup(func() { joiner.srv.Close(); joiner.store.Close() })
	shards["shard-c"] = joiner

	h := changeMembership(t, gwSrv.URL, cluster.ClusterJoinPath,
		cluster.ClusterMemberRequest{ID: "shard-c", URL: joiner.srv.URL})
	if h.Phase != cluster.PhaseDone {
		t.Fatalf("join handoff = %+v", h)
	}
	if h.Moved == 0 || joiner.store.Len() == 0 {
		t.Fatalf("join moved %d users, joiner holds %d records — nothing actually moved", h.Moved, joiner.store.Len())
	}
	// Audit checks above appended Auditor denials nowhere (denied ops
	// record nothing), so the histories are exactly the seeds; the MMER
	// must survive the move wherever each user now lives.
	checkGrants("scale-out")
	assertNoSplitHistory(t, gw, shards)

	// Scale back in: drain shard-c; its subtrees stream back to the
	// survivors and the MMER must survive the return trip too.
	h = changeMembership(t, gwSrv.URL, cluster.ClusterDrainPath,
		cluster.ClusterMemberRequest{ID: "shard-c"})
	if h.Phase != cluster.PhaseDone {
		t.Fatalf("drain handoff = %+v", h)
	}
	if joiner.store.Len() != 0 {
		t.Fatalf("drained shard still holds %d records", joiner.store.Len())
	}
	checkGrants("drain")
	delete(shards, "shard-c")
	assertNoSplitHistory(t, gw, shards)

	st := clusterStatusOf(t, gwSrv.URL)
	if len(st.Members) != 2 || st.Shards["shard-c"].Lifecycle != "gone" {
		t.Fatalf("post-drain status = %+v", st)
	}
}

// crashableProxy fronts a shard; when armed it "dies" on the first
// import — that request and every later one abort at the TCP level,
// the wire behavior of a process that crashed mid-RPC — until the
// test "restarts" the shard by clearing crashed.
type crashableProxy struct {
	armed   atomic.Bool
	crashed atomic.Bool
	inner   http.Handler
}

func (p *crashableProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == server.HandoffImportPath && p.armed.CompareAndSwap(true, false) {
		p.crashed.Store(true) // dies while the import is on the wire
	}
	if p.crashed.Load() {
		panic(http.ErrAbortHandler)
	}
	p.inner.ServeHTTP(w, r)
}

// TestElasticJoinerCrashMidHandoffDonorAuthoritative kills the joining
// shard at the worst moment — while the first subtree import is in
// flight — and verifies the failed handoff leaves the donors
// authoritative (no user's history lost or split), the cluster
// serving, and a later retry able to finish the move.
func TestElasticJoinerCrashMidHandoffDonorAuthoritative(t *testing.T) {
	gw, gwSrv, shards := newElasticCluster(t, 2)
	c := server.NewClient(gwSrv.URL, nil)

	users := make([]string, 0, 16)
	for i := 0; i < 16; i++ {
		users = append(users, fmt.Sprintf("teller-%02d", i))
	}
	for _, u := range users {
		r, err := c.Decision(server.DecisionRequest{
			User: u, Roles: []string{"Teller"},
			Operation: "HandleCash", Target: "till", Context: "Branch=York, Period=2006",
		})
		if err != nil || !r.Allowed {
			t.Fatalf("seed %s = %+v, %v", u, r, err)
		}
	}

	pol, err := msod.ParsePolicy([]byte(voPolicyXML))
	if err != nil {
		t.Fatal(err)
	}
	joiner := startElasticShard(t, pol, "shard-c", filepath.Join(t.TempDir(), "shard-c"))
	t.Cleanup(func() { joiner.srv.Close(); joiner.store.Close() })
	proxy := &crashableProxy{inner: joiner.srv.Config.Handler}
	proxy.armed.Store(true)
	proxySrv := httptest.NewServer(proxy)
	t.Cleanup(proxySrv.Close)

	// The join passes its health probe (the proxy is transparent until
	// the first import), then the joiner "crashes" mid-stream.
	h := changeMembership(t, gwSrv.URL, cluster.ClusterJoinPath,
		cluster.ClusterMemberRequest{ID: "shard-c", URL: proxySrv.URL})
	if h.Phase != cluster.PhaseFailed {
		t.Fatalf("handoff against crashed joiner = %+v", h)
	}

	// The donors never cut over: the ring still names them owner, every
	// seeded denial holds, and no history was lost or split.
	st := clusterStatusOf(t, gwSrv.URL)
	if len(st.Members) != 2 {
		t.Fatalf("ring grew despite failed handoff: %+v", st.Members)
	}
	if st.Shards["shard-c"].Lifecycle != "joining" {
		t.Fatalf("failed joiner lifecycle = %q, want joining", st.Shards["shard-c"].Lifecycle)
	}
	for _, u := range users {
		r, err := c.Decision(server.DecisionRequest{
			User: u, Roles: []string{"Auditor"},
			Operation: "Audit", Target: "ledger", Context: "Branch=Leeds, Period=2006",
		})
		if err != nil {
			t.Fatalf("audit %s after failed handoff: %v", u, err)
		}
		if r.Allowed {
			t.Fatalf("FALSE GRANT: %s granted Audit after joiner crash", u)
		}
	}
	assertNoSplitHistory(t, gw, shards)

	// Recovery: the joiner comes back (same durable state, same
	// address) and a retried join completes the move.
	proxy.crashed.Store(false)
	h = changeMembership(t, gwSrv.URL, cluster.ClusterJoinPath,
		cluster.ClusterMemberRequest{ID: "shard-c", URL: proxySrv.URL})
	if h.Phase != cluster.PhaseDone {
		t.Fatalf("retried join = %+v", h)
	}
	shards["shard-c"] = joiner
	for _, u := range users {
		r, err := c.Decision(server.DecisionRequest{
			User: u, Roles: []string{"Auditor"},
			Operation: "Audit", Target: "ledger", Context: "Branch=Leeds, Period=2006",
		})
		if err != nil {
			t.Fatalf("audit %s after recovery: %v", u, err)
		}
		if r.Allowed {
			t.Fatalf("FALSE GRANT: %s granted Audit after recovered join", u)
		}
	}
	assertNoSplitHistory(t, gw, shards)
}
