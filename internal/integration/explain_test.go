package integration

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"msod"
	"msod/internal/cluster"
	"msod/internal/server"
)

var explainAuditKey = []byte("explain-audit-secret")

// TestClusterExplainMatchesAuditTrail is the provenance acceptance
// run: three audited shards behind a gateway, the paper's tax workflow
// driven through it with explicit request IDs, and then — for every
// decision — the explain record fetched back through the gateway
// fan-out and compared against the HMAC-chained audit record of the
// same trace. The shared fields must agree byte-for-byte, every MSoD
// denial must name its governing rule with the k-of-m counters, and
// the trail itself must still verify.
func TestClusterExplainMatchesAuditTrail(t *testing.T) {
	pol, err := msod.ParsePolicy([]byte(voPolicyXML))
	if err != nil {
		t.Fatal(err)
	}
	type auditedShard struct {
		id    string
		dir   string
		trail *msod.AuditWriter
		srv   *httptest.Server
	}
	shards := make([]*auditedShard, 3)
	topo := make([]cluster.Shard, 0, len(shards))
	for i := range shards {
		id := fmt.Sprintf("shard-%c", 'a'+i)
		dir := filepath.Join(t.TempDir(), id)
		trail, err := msod.NewAuditWriter(dir, explainAuditKey, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		p, err := msod.NewPDP(msod.PDPConfig{Policy: pol, Trail: trail})
		if err != nil {
			t.Fatal(err)
		}
		s := &auditedShard{id: id, dir: dir, trail: trail, srv: httptest.NewServer(msod.NewServer(p))}
		t.Cleanup(s.srv.Close)
		shards[i] = s
		topo = append(topo, cluster.Shard{ID: id, BaseURL: s.srv.URL})
	}
	gw, err := cluster.New(cluster.Config{Shards: topo, FailAfter: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	gw.Checker().CheckNow()
	gwSrv := httptest.NewServer(gw)
	t.Cleanup(gwSrv.Close)
	c := server.NewClient(gwSrv.URL, nil)

	const taxCtx = "TaxOffice=Leeds, taxRefundProcess=p1"
	steps := []struct {
		user, role, op, target string
		ok                     bool
	}{
		{"c1", "Clerk", "prepareCheck", "http://www.myTaxOffice.com/Check", true},
		{"m1", "Manager", "approve/disapproveCheck", "http://www.myTaxOffice.com/Check", true},
		{"m1", "Manager", "approve/disapproveCheck", "http://www.myTaxOffice.com/Check", false},
		{"m2", "Manager", "approve/disapproveCheck", "http://www.myTaxOffice.com/Check", true},
		{"c1", "Clerk", "confirmCheck", "http://secret.location.com/audit", false},
		{"c2", "Clerk", "confirmCheck", "http://secret.location.com/audit", true},
	}
	records := make([]msod.ExplainRecord, len(steps))
	for i, st := range steps {
		rid := fmt.Sprintf("step-%02d", i)
		resp, err := c.Decision(server.DecisionRequest{
			User: st.user, Roles: []string{st.role},
			Operation: st.op, Target: st.target, Context: taxCtx,
			RequestID: rid,
		})
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if resp.Allowed != st.ok {
			t.Fatalf("step %d: allowed=%v, want %v (%s)", i, resp.Allowed, st.ok, resp.Reason)
		}
		if resp.RequestID != rid {
			t.Fatalf("step %d: response requestID %q, want %q", i, resp.RequestID, rid)
		}

		// The explain fan-out must find the record wherever the user
		// hashed to, and it must cross-link to the same trace.
		rec, err := c.Explain(rid)
		if err != nil {
			t.Fatalf("step %d: explain through gateway: %v", i, err)
		}
		if rec.RequestID != rid || rec.TraceID != resp.TraceID || rec.TraceID == "" {
			t.Fatalf("step %d: record ids = %q/%q, response trace %q", i, rec.RequestID, rec.TraceID, resp.TraceID)
		}
		wantOutcome := "deny"
		if st.ok {
			wantOutcome = "grant"
		}
		if rec.Outcome != wantOutcome {
			t.Fatalf("step %d: outcome %q, want %q", i, rec.Outcome, wantOutcome)
		}
		// Every decision in this scenario consults at least one MSoD
		// constraint, so each explains its governing rule and counters.
		if rec.Governing == nil || rec.Governing.Rule == "" || rec.Governing.M == 0 {
			t.Fatalf("step %d: no governing constraint in %+v", i, rec)
		}
		if !st.ok {
			g := rec.Governing
			if !g.Denied || g.K < g.M-1 || g.KAfter != g.K {
				t.Fatalf("step %d: denial counters %+v (want denied at k >= m-1, k unchanged)", i, g)
			}
		}
		records[i] = rec
	}

	// Close the trails and verify + load every shard's chain.
	type auditProjection struct {
		User    string   `json:"user"`
		Roles   []string `json:"roles"`
		Op      string   `json:"op"`
		Target  string   `json:"target"`
		Ctx     string   `json:"ctx"`
		Effect  string   `json:"effect"`
		Matched int      `json:"matched"`
		Trace   string   `json:"trace"`
	}
	byTrace := make(map[string]auditProjection)
	for _, s := range shards {
		if err := s.trail.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := msod.NewAuditReader(s.dir, explainAuditKey)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Verify(); err != nil {
			t.Fatalf("shard %s trail fails verification: %v", s.id, err)
		}
		evs, err := r.All()
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range evs {
			byTrace[ev.TraceID] = auditProjection{
				User: ev.User, Roles: ev.Roles, Op: ev.Operation, Target: ev.Target,
				Ctx: ev.Context, Effect: ev.Effect, Matched: ev.MatchedPolicies, Trace: ev.TraceID,
			}
		}
	}

	for i, rec := range records {
		audit, ok := byTrace[rec.TraceID]
		if !ok {
			t.Fatalf("step %d: no audit record for trace %s", i, rec.TraceID)
		}
		fromExplain := auditProjection{
			User: rec.User, Roles: rec.Roles, Op: rec.Operation, Target: rec.Target,
			Ctx: rec.Context, Effect: rec.Outcome, Matched: rec.MatchedPolicies, Trace: rec.TraceID,
		}
		// Byte-level agreement of the shared projection: what msodctl
		// explain renders and what the tamper-evident chain attests are
		// the same decision.
		a, err := json.Marshal(fromExplain)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(audit)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("step %d: explain projection %s\n      != audit projection %s", i, a, b)
		}
	}
}
