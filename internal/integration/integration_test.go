// Package integration wires every subsystem together the way a real
// deployment would — privilege allocation into a directory, a trail-
// backed PDP behind HTTP, PEP-side enforcement, workflow-driven
// processes, restart recovery, and the management port — and drives
// multi-day scenarios across the full stack. Each test is an end-to-end
// statement of a property the paper promises.
package integration

import (
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"msod"
	"msod/internal/rbac"
)

const voPolicyXML = `
<RBACPolicy id="integration-vo">
  <RoleList>
    <Role value="Teller"/>
    <Role value="Auditor"/>
    <Role value="Clerk"/>
    <Role value="Manager"/>
    <Role value="RetainedADIController"/>
  </RoleList>
  <RoleAssignmentPolicy>
    <Assignment soa="hr.bankA" role="Teller"/>
    <Assignment soa="audit.bankB" role="Auditor"/>
    <Assignment soa="gov.tax" role="Clerk"/>
    <Assignment soa="gov.tax" role="Manager"/>
    <Assignment soa="ops" role="RetainedADIController"/>
  </RoleAssignmentPolicy>
  <TargetAccessPolicy>
    <Grant role="Teller" operation="HandleCash" target="till"/>
    <Grant role="Auditor" operation="Audit" target="ledger"/>
    <Grant role="Auditor" operation="CommitAudit" target="audit"/>
    <Grant role="Clerk" operation="prepareCheck" target="http://www.myTaxOffice.com/Check"/>
    <Grant role="Clerk" operation="confirmCheck" target="http://secret.location.com/audit"/>
    <Grant role="Manager" operation="approve/disapproveCheck" target="http://www.myTaxOffice.com/Check"/>
    <Grant role="Manager" operation="combineResults" target="http://secret.location.com/results"/>
    <Grant role="RetainedADIController" operation="stats" target="msod:retainedADI"/>
    <Grant role="RetainedADIController" operation="purgeContext" target="msod:retainedADI"/>
  </TargetAccessPolicy>
  <MSoDPolicySet>
    <MSoDPolicy BusinessContext="Branch=*, Period=!">
      <LastStep operation="CommitAudit" targetURI="audit"/>
      <MMER ForbiddenCardinality="2">
        <Role type="e" value="Teller"/>
        <Role type="e" value="Auditor"/>
      </MMER>
    </MSoDPolicy>
    <MSoDPolicy BusinessContext="TaxOffice=!, taxRefundProcess=!">
      <FirstStep operation="prepareCheck" targetURI="http://www.myTaxOffice.com/Check"/>
      <LastStep operation="confirmCheck" targetURI="http://secret.location.com/audit"/>
      <MMEP ForbiddenCardinality="2">
        <Operation value="prepareCheck" target="http://www.myTaxOffice.com/Check"/>
        <Operation value="confirmCheck" target="http://secret.location.com/audit"/>
      </MMEP>
      <MMEP ForbiddenCardinality="2">
        <Operation value="approve/disapproveCheck" target="http://www.myTaxOffice.com/Check"/>
        <Operation value="approve/disapproveCheck" target="http://www.myTaxOffice.com/Check"/>
        <Operation value="combineResults" target="http://secret.location.com/results"/>
      </MMEP>
    </MSoDPolicy>
  </MSoDPolicySet>
</RBACPolicy>`

// stack is one fully wired deployment.
type stack struct {
	t         *testing.T
	pdp       *msod.PDP
	pdpURL    string
	dirURL    string
	repo      *msod.Directory
	trailDir  string
	trailKey  []byte
	pol       *msod.Policy
	issuers   map[string]*msod.Authority
	allocator map[string]*msod.Allocator
	closeAll  func()
}

// newStack builds: three authorities with allocators into one shared
// directory, a trail-backed PDP trusting all three, both behind HTTP.
func newStack(t *testing.T, trailDir string) *stack {
	t.Helper()
	pol, err := msod.ParsePolicy([]byte(voPolicyXML))
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("integration-trail-key")
	w, err := msod.NewAuditWriter(trailDir, key, 64)
	if err != nil {
		t.Fatal(err)
	}
	linker := msod.NewLinker()
	p, err := msod.NewPDP(msod.PDPConfig{Policy: pol, Trail: w, Linker: linker})
	if err != nil {
		t.Fatal(err)
	}

	repo := msod.NewDirectory()
	s := &stack{
		t: t, pdp: p, repo: repo, trailDir: trailDir, trailKey: key, pol: pol,
		issuers:   map[string]*msod.Authority{},
		allocator: map[string]*msod.Allocator{},
	}
	for _, name := range []string{"hr.bankA", "audit.bankB", "gov.tax", "ops"} {
		a, err := msod.NewAuthority(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.TrustAuthority(a); err != nil {
			t.Fatal(err)
		}
		al, err := msod.NewAllocator(a, repo)
		if err != nil {
			t.Fatal(err)
		}
		s.issuers[name] = a
		s.allocator[name] = al
	}

	pdpSrv := httptest.NewServer(msod.NewServer(p))
	dirSrv := httptest.NewServer(msod.NewDirectoryServer(repo))
	s.pdpURL, s.dirURL = pdpSrv.URL, dirSrv.URL
	s.closeAll = func() {
		pdpSrv.Close()
		dirSrv.Close()
		w.Close()
	}
	t.Cleanup(s.closeAll)
	return s
}

// decideWithDirectory fetches the holder's credentials from the
// directory over HTTP and submits a decision over HTTP — the full
// distributed round trip.
func (s *stack) decideWithDirectory(holder, op, target, ctx string) msod.DecisionResponse {
	s.t.Helper()
	creds, err := msod.NewDirectoryClient(s.dirURL).Fetch(holder, time.Now())
	if err != nil {
		s.t.Fatal(err)
	}
	resp, err := msod.NewClient(s.pdpURL).Decision(msod.DecisionRequest{
		Credentials: creds,
		Operation:   op, Target: target, Context: ctx,
	})
	if err != nil {
		s.t.Fatal(err)
	}
	return resp
}

// TestFullStackBankScenario: multi-authority allocation, directory
// fetch, HTTP decisions, MSoD across sessions, audit commit, and
// restart recovery from the trail.
func TestFullStackBankScenario(t *testing.T) {
	trailDir := filepath.Join(t.TempDir(), "trail")
	s := newStack(t, trailDir)
	now := time.Now()
	week := now.Add(7 * 24 * time.Hour)

	// Bank A's HR makes alice a Teller; Bank B's audit office makes her
	// an Auditor. Neither knows about the other.
	if _, err := s.allocator["hr.bankA"].Allocate("alice", "Teller", now.Add(-time.Hour), week); err != nil {
		t.Fatal(err)
	}
	if _, err := s.allocator["audit.bankB"].Allocate("alice", "Auditor", now.Add(-time.Hour), week); err != nil {
		t.Fatal(err)
	}
	if _, err := s.allocator["audit.bankB"].Allocate("bob", "Auditor", now.Add(-time.Hour), week); err != nil {
		t.Fatal(err)
	}

	// Session 1: alice handles cash. The directory returns BOTH of her
	// credentials; the PDP validates both but MSoD is what stops misuse.
	resp := s.decideWithDirectory("alice", "HandleCash", "till", "Branch=York, Period=2006")
	if !resp.Allowed {
		t.Fatalf("teller decision = %+v", resp)
	}
	// Session 2 (later): alice audits — denied by MSoD over HTTP.
	resp = s.decideWithDirectory("alice", "Audit", "ledger", "Branch=Leeds, Period=2006")
	if resp.Allowed || resp.Phase != "msod" {
		t.Fatalf("audit decision = %+v", resp)
	}
	// Bob audits and commits the period.
	if resp = s.decideWithDirectory("bob", "Audit", "ledger", "Branch=York, Period=2006"); !resp.Allowed {
		t.Fatalf("bob audit = %+v", resp)
	}
	if resp = s.decideWithDirectory("bob", "CommitAudit", "audit", "Branch=York, Period=2006"); !resp.Allowed || resp.Purged == 0 {
		t.Fatalf("commit = %+v", resp)
	}
	// Post-commit alice may audit.
	if resp = s.decideWithDirectory("alice", "Audit", "ledger", "Branch=York, Period=2006"); !resp.Allowed {
		t.Fatalf("post-commit audit = %+v", resp)
	}

	// Management port over HTTP: count and then purge the remainder.
	mgr, err := msod.NewClient(s.pdpURL).Manage(msod.ManagementWireRequest{
		User: "root", Roles: []string{"RetainedADIController"}, Operation: "stats",
	})
	if err != nil {
		t.Fatal(err)
	}
	liveRecords := mgr.Records

	// Simulated crash: a brand-new PDP recovers from the trail and keeps
	// behaving identically.
	s.closeAll()
	store, stats, err := msod.Recover(s.pol, msod.RecoveryConfig{
		Mode: msod.RecoverFromTrail, TrailDir: trailDir, TrailKey: s.trailKey,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != liveRecords {
		t.Fatalf("recovered %d records, live had %d", stats.Records, liveRecords)
	}
	p2, err := msod.NewPDP(msod.PDPConfig{Policy: s.pol, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := p2.Decide(msod.Request{
		User: "alice", Roles: []msod.RoleName{"Teller"},
		Operation: "HandleCash", Target: "till",
		Context: msod.MustContext("Branch=York, Period=2006"),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Alice audited 2006 post-commit, so cash handling is now barred.
	if dec.Allowed {
		t.Fatal("recovered PDP lost alice's post-commit auditor history")
	}
}

// TestFullStackTaxWorkflow drives Example 2 through the workflow engine
// against the HTTP PDP with directory-backed credentials for every
// actor, for several process instances in a row.
func TestFullStackTaxWorkflow(t *testing.T) {
	s := newStack(t, filepath.Join(t.TempDir(), "trail"))
	now := time.Now()
	week := now.Add(7 * 24 * time.Hour)
	for i := 1; i <= 3; i++ {
		if _, err := s.allocator["gov.tax"].Allocate(fmt.Sprintf("c%d", i), "Clerk", now.Add(-time.Hour), week); err != nil {
			t.Fatal(err)
		}
		if _, err := s.allocator["gov.tax"].Allocate(fmt.Sprintf("m%d", i), "Manager", now.Add(-time.Hour), week); err != nil {
			t.Fatal(err)
		}
	}

	dirClient := msod.NewDirectoryClient(s.dirURL)
	pdpClient := msod.NewClient(s.pdpURL)
	// A Decider that fetches the executing user's credentials from the
	// directory for every step — the PEP of a real workflow system.
	decider := deciderFunc(func(user rbac.UserID, roles []rbac.RoleName, op rbac.Operation, target rbac.Object, ctx msod.Context) (bool, string, error) {
		creds, err := dirClient.Fetch(string(user), time.Now())
		if err != nil {
			return false, "", err
		}
		resp, err := pdpClient.Decision(msod.DecisionRequest{
			Credentials: creds,
			Operation:   string(op), Target: string(target), Context: ctx.String(),
		})
		if err != nil {
			return false, "", err
		}
		return resp.Allowed, resp.Reason, nil
	})

	for proc := 1; proc <= 2; proc++ {
		inst, err := msod.NewWorkflowInstance(msod.TaxRefundWorkflow(),
			msod.MustContext(fmt.Sprintf("TaxOffice=Leeds, taxRefundProcess=i%d", proc)))
		if err != nil {
			t.Fatal(err)
		}
		steps := []struct {
			task, user string
			ok         bool
		}{
			{"T1", "c1", true},
			{"T2", "m1", true},
			{"T2", "m1", false},
			{"T2", "m2", true},
			{"T3", "m1", false},
			{"T3", "m3", true},
			{"T4", "c1", false},
			{"T4", "c2", true},
		}
		for _, st := range steps {
			err := inst.Execute(st.task, rbac.UserID(st.user), decider)
			if st.ok && err != nil {
				t.Fatalf("process %d %s by %s: %v", proc, st.task, st.user, err)
			}
			if !st.ok && err == nil {
				t.Fatalf("process %d %s by %s unexpectedly granted", proc, st.task, st.user)
			}
		}
		if !inst.Complete() {
			t.Fatalf("process %d incomplete", proc)
		}
	}
	// Every instance completed with its last step: the retained ADI for
	// the tax contexts must be clean.
	res, err := msod.NewClient(s.pdpURL).Manage(msod.ManagementWireRequest{
		User: "root", Roles: []string{"RetainedADIController"}, Operation: "stats",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 0 {
		t.Errorf("retained records after complete processes: %d", res.Records)
	}
}

// deciderFunc adapts a function to workflow.Decider.
type deciderFunc func(rbac.UserID, []rbac.RoleName, rbac.Operation, rbac.Object, msod.Context) (bool, string, error)

func (f deciderFunc) Decide(u rbac.UserID, r []rbac.RoleName, op rbac.Operation, tgt rbac.Object, ctx msod.Context) (bool, string, error) {
	return f(u, r, op, tgt, ctx)
}
