// Package msod is a Go implementation of Multi-session Separation of
// Duties (MSoD) for RBAC, after Chadwick, Xu, Otenko, Laborde and Nasser
// (ICDE 2007): history-based separation-of-duty constraints — mutually
// exclusive roles (MMER) and mutually exclusive privileges (MMEP) —
// scoped by hierarchically named business contexts and enforced at
// access-decision time against a retained-ADI store of previous grants.
//
// The package is a facade over the implementation packages; the exported
// names below are the supported surface.
//
// # Layers
//
// Most applications use the PDP layer: parse an XML policy (roles,
// target-access grants, issuer trust and the embedded MSoDPolicySet of
// the paper's Appendix A), build a PDP, and submit decision requests:
//
//	pol, err := msod.ParsePolicy(xmlBytes)
//	p, err := msod.NewPDP(msod.PDPConfig{Policy: pol})
//	dec, err := p.Decide(msod.Request{
//	    User:      "alice",
//	    Roles:     []msod.RoleName{"Teller"},
//	    Operation: "HandleCash",
//	    Target:    "till",
//	    Context:   msod.MustContext("Branch=York, Period=2006"),
//	})
//
// Systems that already have their own RBAC evaluation can embed just the
// MSoD engine (NewEngine) over a retained-ADI store, and distributed
// deployments can front the PDP with the HTTP server (NewServer /
// NewClient).
//
// See DESIGN.md for the paper-to-code mapping and EXPERIMENTS.md for the
// reproduction results.
package msod

import (
	"log/slog"
	"time"

	"msod/internal/adi"
	"msod/internal/audit"
	"msod/internal/bctx"
	"msod/internal/core"
	"msod/internal/credential"
	"msod/internal/directory"
	"msod/internal/explain"
	"msod/internal/inspect"
	"msod/internal/obsv"
	"msod/internal/pdp"
	"msod/internal/pep"
	"msod/internal/policy"
	"msod/internal/policycheck"
	"msod/internal/rbac"
	"msod/internal/replica"
	"msod/internal/server"
	"msod/internal/trace"
	"msod/internal/workflow"
)

// Identifier and privilege types of the RBAC substrate.
type (
	// UserID is a stable user identifier; MSoD requires it to be the
	// same across all of a user's sessions.
	UserID = rbac.UserID
	// RoleName names a role.
	RoleName = rbac.RoleName
	// Operation names an action.
	Operation = rbac.Operation
	// Object identifies a protected target.
	Object = rbac.Object
	// Permission is the right to perform an Operation on an Object.
	Permission = rbac.Permission
	// RBACModel is the ANSI RBAC model (users, roles, sessions, SSD/DSD).
	RBACModel = rbac.Model
	// SoDSet is an ANSI m-out-of-n mutually exclusive role set.
	SoDSet = rbac.SoDSet
)

// NewRBACModel returns an empty ANSI RBAC model.
func NewRBACModel() *RBACModel { return rbac.NewModel() }

// Business context types.
type (
	// Context is a hierarchical business context name.
	Context = bctx.Name
	// ContextComponent is one Type=Value element of a context name.
	ContextComponent = bctx.Component
	// ContextHierarchy tracks active context instances (Figure 2).
	ContextHierarchy = bctx.Hierarchy
)

// Context wildcard values.
const (
	// AnyInstance ("*"): the constraint aggregates across all instances.
	AnyInstance = bctx.AnyInstance
	// PerInstance ("!"): the constraint is scoped per instance.
	PerInstance = bctx.PerInstance
)

// ParseContext parses "Type1=Value1, Type2=Value2"; the empty string is
// the universal context.
func ParseContext(s string) (Context, error) { return bctx.Parse(s) }

// MustContext is ParseContext panicking on error, for literals.
func MustContext(s string) Context { return bctx.MustParse(s) }

// NewContextHierarchy returns an empty active-instance tracker.
func NewContextHierarchy() *ContextHierarchy { return bctx.NewHierarchy() }

// MSoD engine types (the paper's contribution).
type (
	// Engine evaluates the §4.2 enforcement algorithm.
	Engine = core.Engine
	// EnginePolicy is one compiled MSoD policy.
	EnginePolicy = core.Policy
	// MMERRule is a multi-session mutually exclusive roles constraint.
	MMERRule = core.MMERRule
	// MMEPRule is a multi-session mutually exclusive privileges
	// constraint.
	MMEPRule = core.MMEPRule
	// Step delimits a business context (first/last step).
	Step = core.Step
	// EngineRequest is the engine-level request.
	EngineRequest = core.Request
	// EngineDecision is the engine-level decision.
	EngineDecision = core.Decision
	// Denial explains an MSoD denial.
	Denial = core.Denial
	// Effect is Grant or Deny.
	Effect = core.Effect
)

// Engine effects.
const (
	Grant = core.Grant
	Deny  = core.Deny
)

// NewEngine builds an MSoD engine over a retained-ADI store.
func NewEngine(store ADIRecorder, policies []EnginePolicy, opts ...core.Option) (*Engine, error) {
	return core.NewEngine(store, policies, opts...)
}

// WithClock overrides the engine time source.
func WithClock(now func() time.Time) core.Option { return core.WithClock(now) }

// WithRoleExpander makes MMER constraints hierarchy-aware (extension;
// see EnginePolicy docs and DESIGN.md). Typically passed
// model.Closure from an RBACModel.
func WithRoleExpander(expand func([]RoleName) []RoleName) core.Option {
	return core.WithRoleExpander(expand)
}

// WithNaiveMMEPCounting selects the literal any-record counting of §4.2
// step 6.iii instead of the default multiset counting (ablation; see
// experiment E11).
func WithNaiveMMEPCounting() core.Option { return core.WithNaiveMMEPCounting() }

// WithStriping enables per-user lock striping in the engine (extension;
// pair with NewShardedADIStore for full effect — see experiment E14 and
// the WithStriping docs for the serialisability argument).
func WithStriping(n int) core.Option { return core.WithStriping(n) }

// CompileMSoD compiles a parsed MSoDPolicySet into engine policies.
func CompileMSoD(set *MSoDPolicySet) ([]EnginePolicy, error) { return core.Compile(set) }

// Retained-ADI types.
type (
	// ADIRecord is the §4.2 six-tuple of a granted decision.
	ADIRecord = adi.Record
	// ADIRecorder is the retained-ADI store interface.
	ADIRecorder = adi.Recorder
	// ADIStore is the indexed in-memory store.
	ADIStore = adi.Store
	// ADISecureStore is the sealed persistent snapshot store.
	ADISecureStore = adi.SecureStore
	// ADIDurableStore is the WAL-backed durable retained ADI (the §6
	// "secure relational database" successor design): mutations are
	// sealed to a write-ahead log and folded into snapshots by Compact,
	// so a restarting PDP recovers without replaying audit trails.
	ADIDurableStore = adi.DurableStore
	// ADIShardedStore partitions the retained ADI by user, the storage
	// companion of WithStriping.
	ADIShardedStore = adi.ShardedStore
)

// NewShardedADIStore returns a retained-ADI store with n user shards.
func NewShardedADIStore(n int) *ADIShardedStore { return adi.NewShardedStore(n) }

// OpenDurableADI opens (creating if necessary) a durable retained-ADI
// store in dir. With syncEveryWrite, each mutation is fsynced.
func OpenDurableADI(dir string, secret []byte, syncEveryWrite bool) (*ADIDurableStore, error) {
	return adi.OpenDurable(dir, secret, syncEveryWrite)
}

// NewADIStore returns an empty indexed retained-ADI store.
func NewADIStore() *ADIStore { return adi.NewStore() }

// NewADISecureStore opens an encrypted snapshot store at path.
func NewADISecureStore(path string, secret []byte) (*ADISecureStore, error) {
	return adi.NewSecureStore(path, secret)
}

// Policy types (XML formats).
type (
	// Policy is the PERMIS-style policy envelope.
	Policy = policy.RBACPolicy
	// MSoDPolicySet is the Appendix A policy set.
	MSoDPolicySet = policy.MSoDPolicySet
	// MSoDPolicy is one MSoD policy.
	MSoDPolicy = policy.MSoDPolicy
)

// ParsePolicy parses and validates an RBACPolicy XML document.
func ParsePolicy(data []byte) (*Policy, error) { return policy.ParseRBACPolicy(data) }

// LintFinding is one policy-lint diagnostic.
type LintFinding = policy.Finding

// Lint severities.
const (
	// LintError marks provable defects (unsatisfiable or unfinishable
	// business methods, unpurgeable contexts); deployment gates refuse
	// policies carrying them.
	LintError = policy.Error
	LintWarn  = policy.Warn
	LintInfo  = policy.Info
)

// LintPolicy reports probable policy-authoring mistakes beyond hard
// validation: constraints that can never fire, dead roles, unstartable
// or unterminable contexts, unbounded-history notes. Because this
// package links internal/policycheck, the result also carries the
// model checker's semantic findings (satisfiability, finishability,
// shadowing, purge safety).
func LintPolicy(p *Policy) ([]LintFinding, error) { return policy.Lint(p) }

// PolicyCheckResult is VerifyPolicySource's outcome: the parsed
// policy, its unsuppressed findings, and the suppression count.
type PolicyCheckResult = policycheck.CheckResult

// VerifyPolicy runs only the semantic model checker — bounded
// exploration of the k-of-m constraint state space — without the
// declaration lint. Most callers want LintPolicy (both passes) or
// VerifyPolicySource (both passes plus suppression directives).
func VerifyPolicy(p *Policy) ([]LintFinding, error) { return policycheck.Check(p) }

// VerifyPolicySource parses a policy XML document, runs the
// declaration lint and the semantic model checker, and applies the
// document's msod:ignore suppression comments — the same verification
// msodvet -policies and the msodd -verify-policies boot gate perform.
func VerifyPolicySource(data []byte) (*PolicyCheckResult, error) {
	return policycheck.CheckSource(data, policycheck.Config{})
}

// ParseMSoDPolicySet parses and validates an MSoDPolicySet XML document.
func ParseMSoDPolicySet(data []byte) (*MSoDPolicySet, error) {
	return policy.ParseMSoDPolicySet(data)
}

// Credential types.
type (
	// Credential is a signed attribute credential.
	Credential = credential.Credential
	// Attribute is one typed attribute in a credential.
	Attribute = credential.Attribute
	// Authority is a source of authority (credential issuer).
	Authority = credential.Authority
	// CVS is the credential validation service.
	CVS = credential.CVS
	// Linker resolves multi-authority identities to a local user ID.
	Linker = credential.Linker
)

// NewAuthority generates a named Ed25519 credential issuer.
func NewAuthority(name string) (*Authority, error) { return credential.NewAuthority(name) }

// NewLinker returns an empty identity linker.
func NewLinker() *Linker { return credential.NewLinker() }

// Directory types (the Figure 4 privilege-allocation sub-system and the
// LDAP-style attribute repository).
type (
	// Directory is the untrusted credential repository.
	Directory = directory.Repository
	// DirectoryEntry is a stored credential with its content address.
	DirectoryEntry = directory.Entry
	// DirectoryServer exposes a Directory over HTTP.
	DirectoryServer = directory.Server
	// DirectoryClient fetches credentials from a remote Directory.
	DirectoryClient = directory.Client
	// Allocator is the privilege-allocation sub-system: an Authority
	// bound to a Directory.
	Allocator = directory.Allocator
)

// NewDirectory returns an empty credential repository.
func NewDirectory() *Directory { return directory.NewRepository() }

// NewDirectoryServer wraps a repository in an http.Handler.
func NewDirectoryServer(repo *Directory) *DirectoryServer { return directory.NewServer(repo) }

// NewDirectoryClient builds a client for the directory at base URL.
func NewDirectoryClient(base string) *DirectoryClient { return directory.NewClient(base, nil) }

// NewAllocator binds an authority to a repository.
func NewAllocator(a *Authority, repo *Directory) (*Allocator, error) {
	return directory.NewAllocator(a, repo)
}

// PDP types.
type (
	// PDP is the full decision point: CVS -> RBAC -> MSoD -> audit.
	PDP = pdp.PDP
	// PDPConfig assembles a PDP.
	PDPConfig = pdp.Config
	// Request is a PDP decision request.
	Request = pdp.Request
	// Decision is a PDP decision.
	Decision = pdp.Decision
	// ManagementRequest is a §4.3 retained-ADI management operation.
	ManagementRequest = pdp.ManagementRequest
	// RecoveryConfig parameterises start-up recovery.
	RecoveryConfig = pdp.RecoveryConfig
)

// Decision phases.
const (
	PhaseRBAC    = pdp.PhaseRBAC
	PhaseMSoD    = pdp.PhaseMSoD
	PhaseGranted = pdp.PhaseGranted
)

// Recovery modes.
const (
	RecoverNone         = pdp.RecoverNone
	RecoverFromTrail    = pdp.RecoverFromTrail
	RecoverFromSnapshot = pdp.RecoverFromSnapshot
)

// NewPDP builds a PDP from a configuration.
func NewPDP(cfg PDPConfig) (*PDP, error) { return pdp.New(cfg) }

// Recover rebuilds a retained ADI per the recovery configuration.
func Recover(pol *Policy, rc RecoveryConfig) (*ADIStore, audit.ReplayStats, error) {
	return pdp.Recover(pol, rc)
}

// Audit trail types.
type (
	// AuditWriter appends decision events to HMAC-chained segments.
	AuditWriter = audit.Writer
	// AuditReader verifies and reads trail segments.
	AuditReader = audit.Reader
	// AuditEvent is one logged decision.
	AuditEvent = audit.Event
)

// NewAuditWriter opens (or resumes) a trail directory.
func NewAuditWriter(dir string, key []byte, segmentSize int) (*AuditWriter, error) {
	return audit.NewWriter(dir, key, segmentSize)
}

// NewAuditReader opens a trail directory for verification and replay.
func NewAuditReader(dir string, key []byte) (*AuditReader, error) {
	return audit.NewReader(dir, key)
}

// Remote deployment types.
type (
	// Server exposes a PDP over HTTP+JSON.
	Server = server.Server
	// Client is a remote PEP's PDP client; it satisfies the workflow
	// engine's Decider interface.
	Client = server.Client
	// DecisionRequest is the wire form of a decision request.
	DecisionRequest = server.DecisionRequest
	// DecisionResponse is the wire form of a decision.
	DecisionResponse = server.DecisionResponse
	// ManagementWireRequest is the wire form of a management operation.
	ManagementWireRequest = server.ManagementWireRequest
	// ManagementWireResponse is the wire form of a management result.
	ManagementWireResponse = server.ManagementWireResponse
	// ClientOption configures a Client at construction.
	ClientOption = server.ClientOption
	// APIError is a deliberate non-2xx answer from a PDP (or gateway),
	// carrying the HTTP status and server-reported message; transport
	// failures are never APIErrors.
	APIError = server.APIError
	// ServerOption configures a Server at construction (decision
	// slow-logging, extra metrics gauges).
	ServerOption = server.Option
)

// NewServer wraps a PDP in an http.Handler.
func NewServer(p *PDP, opts ...ServerOption) *Server { return server.New(p, opts...) }

// PolicyVerificationStatus carries a -verify-policies boot-gate
// outcome into the server's health and metrics surfaces; the daemon
// republishes it on every successful policy reload.
type PolicyVerificationStatus = server.VerificationStatus

// WithServerPolicyVerification surfaces the policy boot gate on
// /v1/health ("policyVerification") and /v1/metrics (the
// msod_policy_verification_* gauges).
func WithServerPolicyVerification(v *PolicyVerificationStatus) ServerOption {
	return server.WithPolicyVerification(v)
}

// WithDecisionLog makes the server emit one structured log line per
// decision at least threshold slow (zero logs every decision), each
// carrying the trace ID and per-stage span breakdown.
func WithDecisionLog(logger *slog.Logger, threshold time.Duration) ServerOption {
	return server.WithDecisionLog(logger, threshold)
}

// WithServerGauge adds an operator-defined gauge to the server's
// /v1/metrics endpoint, read at scrape time.
func WithServerGauge(name, help string, fn func() float64) ServerOption {
	return server.WithGauge(name, help, fn)
}

// WithServerAdmissionLimit bounds concurrent decision, advisory and
// management requests: excess load is shed with 503 + Retry-After of
// retryAfter instead of queueing until everything times out. Shed
// requests never touch the PDP, and Client transparently retries them
// after the hinted delay. maxInFlight <= 0 leaves admission unbounded.
func WithServerAdmissionLimit(maxInFlight int, retryAfter time.Duration) ServerOption {
	return server.WithAdmissionLimit(maxInFlight, retryAfter)
}

// WithServerHandoff enables the resharding handoff endpoints
// (/v1/handoff/users|import|release), letting an msodgw gateway stream
// this shard's retained-ADI subtrees during elastic membership changes.
// Off by default: the import endpoint replaces per-user history
// wholesale, so only shards actually run behind a gateway should
// expose it.
func WithServerHandoff() ServerOption { return server.WithHandoff() }

// NewClient builds a client for the PDP (or msodgw gateway) at base URL.
func NewClient(base string, opts ...ClientOption) *Client {
	return server.NewClient(base, nil, opts...)
}

// WithClientTimeout bounds every request the client makes; zero or
// negative means no deadline.
func WithClientTimeout(d time.Duration) ClientOption { return server.WithTimeout(d) }

// Introspection, event-streaming and audit-sentinel types (live MSoD
// state: who is how close to which constraint limit, streamed decision
// events, and continuous audit-chain verification).
type (
	// UserStateView is one user's retained-ADI records and per-constraint
	// progress (k of m roles/privileges consumed), as served by
	// /v1/state/users/{user}.
	UserStateView = inspect.UserState
	// ContextStateView is the per-context view: every matching instance
	// and every participating user's progress, as served by
	// /v1/state/contexts/{bc}.
	ContextStateView = inspect.ContextState
	// ConstraintProgress is one (policy, bound context, rule) tuple's
	// consumption state for one user.
	ConstraintProgress = inspect.ConstraintProgress
	// DecisionEvent is one decision outcome on the event stream.
	DecisionEvent = inspect.DecisionEvent
	// EventBroker fans decision events out to subscribers over a bounded
	// ring buffer; wire it as PDPConfig.Observer and into the server with
	// WithServerEventBroker.
	EventBroker = inspect.Broker
	// EventFilter selects a subset of decision events by user, context
	// pattern and outcome.
	EventFilter = inspect.Filter
	// AuditSentinel continuously verifies the audit trail's HMAC chain in
	// the background and latches on tampering.
	AuditSentinel = inspect.Sentinel
	// AuditSentinelConfig parameterises an AuditSentinel.
	AuditSentinelConfig = inspect.SentinelConfig
	// StreamEventsOptions filter a Client.StreamEvents subscription.
	StreamEventsOptions = server.StreamEventsOptions
)

// Decision event outcomes (EventFilter / /v1/events outcome parameter).
const (
	EventOutcomeGrant = inspect.OutcomeGrant
	EventOutcomeDeny  = inspect.OutcomeDeny
)

// NewEventBroker returns a decision event broker retaining up to
// capacity recent events (<=0 uses a default).
func NewEventBroker(capacity int) *EventBroker { return inspect.NewBroker(capacity) }

// NewEventFilter builds an event filter; empty strings mean "any".
func NewEventFilter(user, ctxPattern, outcome string) (EventFilter, error) {
	return inspect.NewFilter(user, ctxPattern, outcome)
}

// NewAuditSentinel builds (but does not start) an audit-chain integrity
// sentinel over a trail directory.
func NewAuditSentinel(cfg AuditSentinelConfig) (*AuditSentinel, error) {
	return inspect.NewSentinel(cfg)
}

// WithServerEventBroker attaches a decision event broker to a server:
// /v1/events streams it and state answers gain last-trace correlation.
func WithServerEventBroker(b *EventBroker) ServerOption { return server.WithEventBroker(b) }

// WithServerSentinel attaches an audit sentinel to a server: its metric
// families join /v1/metrics and, with failClosed, a latched tamper alarm
// makes the server refuse decisions (503).
func WithServerSentinel(s *AuditSentinel, failClosed bool) ServerOption {
	return server.WithSentinel(s, failClosed)
}

// Decision provenance (explain) and SLO types: every authoritative
// decision leaves a structured evaluation trace — which policies and
// MSoD rules applied, the k-of-m counter state before and after, and
// the constraint that governed the outcome — queryable at
// /v1/explain/{requestID} (msodctl explain renders it); the SLO
// tracker scores every request against declared availability and
// latency objectives and exposes the msod_slo_* metric families.
type (
	// ExplainRecord is one decision's full provenance trace.
	ExplainRecord = explain.Record
	// ExplainRuleEval is one MSoD rule evaluation within a record.
	ExplainRuleEval = explain.RuleEval
	// ExplainRecorder is the bounded per-server ring retaining records.
	ExplainRecorder = explain.Recorder
	// SLO tracks request outcomes against declared objectives.
	SLO = obsv.SLO
	// SLOConfig declares the objectives an SLO tracker enforces.
	SLOConfig = obsv.SLOConfig
)

// ExplainPath is the provenance endpoint prefix
// (GET /v1/explain/{requestID}).
const ExplainPath = server.ExplainPath

// NewSLO builds an SLO tracker; it returns nil (a valid, disabled
// tracker) when the config declares no latency objective.
func NewSLO(cfg SLOConfig) *SLO { return obsv.NewSLO(cfg) }

// WithServerExplainCapacity sizes the server's explain ring (0 keeps
// the default; negative disables explain recording).
func WithServerExplainCapacity(n int) ServerOption { return server.WithExplainCapacity(n) }

// WithServerSLO attaches an SLO tracker to a server; its msod_slo_*
// families join /v1/metrics.
func WithServerSLO(s *SLO) ServerOption { return server.WithSLO(s) }

// Tail-sampled span retention: after a decision completes, its full
// span tree is kept if the decision was refused, errored, or slow,
// plus a deterministic 1-in-N sample of fast grants — queryable at
// GET /v1/traces/{traceID} and assembled cluster-wide by the gateway.
type (
	// TraceStore is the bounded per-server ring retaining span trees.
	TraceStore = trace.Store
	// TraceStoreConfig sizes the store and sets its sampling policy.
	TraceStoreConfig = trace.Config
	// TraceRecord is one retained span tree with its decision envelope.
	TraceRecord = trace.Record
	// TraceSpan is one timed step of a retained trace.
	TraceSpan = trace.Span
)

// TracesPath is the retained-trace endpoint prefix
// (GET /v1/traces/{traceID}).
const TracesPath = server.TracesPath

// NewTraceStore builds a tail-sampled span store. Build it once per
// process (not per policy reload) so retained traces survive SIGHUP.
func NewTraceStore(cfg TraceStoreConfig) *TraceStore { return trace.NewStore(cfg) }

// WithServerTraceStore attaches a trace store to a server, enabling
// retention and /v1/traces. A nil store leaves tracing retention off
// at zero per-decision cost.
func WithServerTraceStore(st *TraceStore) ServerOption { return server.WithTraceStore(st) }

// Advisory read-replica types: event-fed retained-ADI mirrors serving
// the advisory and state surfaces under a bounded-staleness contract.
// Authoritative decisions stay single-writer on the owning shard; a
// replica that cannot prove freshness refuses rather than answering
// stale. See docs/OPERATIONS.md for the deployment runbook.
type (
	// ReplicaConfig assembles a ReplicaFollower.
	ReplicaConfig = replica.Config
	// ReplicaFollower keeps a local retained-ADI mirror converged with
	// its owning shard (snapshot bootstrap, then resumable event
	// tailing) and answers advisory decisions from it.
	ReplicaFollower = replica.Follower
	// ReplicaStatus is a follower's health snapshot (applied sequence,
	// staleness, resync/divergence counters).
	ReplicaStatus = replica.Status
	// ReplicaServer is the replica's HTTP surface: the shard's advisory
	// and state paths with staleness stamps, plus explicit refusals for
	// everything authoritative.
	ReplicaServer = replica.Server
	// ReplicaSnapshotView is the wire form of an owner's consistent
	// (seq, retained-ADI) snapshot, served at ReplicaSnapshotPath.
	ReplicaSnapshotView = server.ReplicaSnapshot
	// FollowEventsOptions configure Client.FollowEvents: a resumable,
	// auto-reconnecting /v1/events subscription.
	FollowEventsOptions = server.FollowEventsOptions
	// AdvisoryMirror embeds a replica follower in a PEP process so
	// Enforcer.Preflight answers from local memory.
	AdvisoryMirror = pep.AdvisoryMirror
	// AdvisoryMirrorConfig assembles an AdvisoryMirror.
	AdvisoryMirrorConfig = pep.AdvisoryMirrorConfig
)

// Replica wire constants: the owner's snapshot endpoint and the
// staleness-contract headers every replica answer carries.
const (
	ReplicaSnapshotPath = server.ReplicaSnapshotPath
	ReplicaSeqHeader    = replica.ReplicaSeqHeader
	ReplicaLagHeader    = replica.ReplicaLagHeader
)

// Replica sentinel errors (test with errors.Is).
var (
	// ErrReplicaStale is a replica's refusal to answer beyond its
	// staleness bound ("ask the owner").
	ErrReplicaStale = replica.ErrStale
	// ErrReplicaDiverged reports a mirror whose replay stopped matching
	// the owner's echoes; the follower resyncs automatically.
	ErrReplicaDiverged = replica.ErrDiverged
	// ErrEventGap reports a /v1/events resume past the owner's retained
	// ring: the missed events are unrecoverable over the stream.
	ErrEventGap = server.ErrEventGap
)

// NewReplicaFollower builds (but does not start) a replica follower;
// call Run to bootstrap and tail the owner.
func NewReplicaFollower(cfg ReplicaConfig) (*ReplicaFollower, error) { return replica.New(cfg) }

// NewReplicaServer wraps a follower in the replica HTTP surface.
func NewReplicaServer(f *ReplicaFollower) *ReplicaServer { return replica.NewServer(f) }

// NewAdvisoryMirror builds an embedded advisory mirror and starts its
// follower; attach it with Enforcer.WithAdvisory and call Preflight.
func NewAdvisoryMirror(cfg AdvisoryMirrorConfig) (*AdvisoryMirror, error) {
	return pep.NewAdvisoryMirror(cfg)
}

// PEP types (the application-side enforcement function of Figure 3).
type (
	// Enforcer guards application actions with PDP decisions for one
	// subject within one business context instance.
	Enforcer = pep.Enforcer
	// Subject is the initiator an Enforcer acts for.
	Subject = pep.Subject
	// PEPMiddleware protects an http.Handler with PDP decisions.
	PEPMiddleware = pep.Middleware
)

// ErrDenied is returned by Enforcer.Do on a PDP denial.
var ErrDenied = pep.ErrDenied

// NewEnforcer builds a PEP enforcer over any decider (*PDP directly, or
// an adapter over a remote Client).
func NewEnforcer(d pep.Decider, subject Subject, ctx Context) (*Enforcer, error) {
	return pep.New(d, subject, ctx)
}

// Workflow types (the process substrate driving Example 2).
type (
	// WorkflowDefinition is an ordered set of tasks forming a process.
	WorkflowDefinition = workflow.Definition
	// WorkflowTask is one step of a process.
	WorkflowTask = workflow.Task
	// WorkflowInstance is a live run bound to a business context.
	WorkflowInstance = workflow.Instance
	// WorkflowDecider is the access control hook the workflow engine
	// consults; *Client satisfies it against a remote PDP.
	WorkflowDecider = workflow.Decider
)

// NewWorkflowInstance starts an instance of the definition in the given
// business context instance.
func NewWorkflowInstance(def *WorkflowDefinition, ctx Context) (*WorkflowInstance, error) {
	return workflow.NewInstance(def, ctx)
}

// ParseWorkflowDefinition parses and validates an XML workflow
// definition.
func ParseWorkflowDefinition(data []byte) (*WorkflowDefinition, error) {
	return workflow.ParseDefinition(data)
}

// TaxRefundWorkflow returns the paper's Example 2 process definition.
func TaxRefundWorkflow() *WorkflowDefinition { return workflow.TaxRefundDefinition() }
