package msod_test

import (
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"msod"
)

// TestFacadeSurface exercises every facade constructor and helper so the
// supported public surface cannot silently rot: RBAC model, MSoD set
// parsing/compilation, engine options, secure/durable stores, linker,
// directory, audit reader.
func TestFacadeSurface(t *testing.T) {
	// RBAC model construction.
	m := msod.NewRBACModel()
	for _, r := range []msod.RoleName{"Teller", "Auditor", "Head"} {
		if err := m.AddRole(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.AddInheritance("Head", "Teller"); err != nil {
		t.Fatal(err)
	}
	if err := m.AddSSD(msod.SoDSet{Name: "s", Roles: []msod.RoleName{"Teller", "Auditor"}, Cardinality: 2}); err != nil {
		t.Fatal(err)
	}

	// Standalone MSoD policy set parsing + compilation.
	set, err := msod.ParseMSoDPolicySet([]byte(`
<MSoDPolicySet>
  <MSoDPolicy BusinessContext="Branch=*, Period=!">
    <MMER ForbiddenCardinality="2">
      <Role type="e" value="Teller"/>
      <Role type="e" value="Auditor"/>
    </MMER>
  </MSoDPolicy>
</MSoDPolicySet>`))
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := msod.CompileMSoD(set)
	if err != nil || len(compiled) != 1 {
		t.Fatalf("compile = %v, %v", compiled, err)
	}

	// Engine with hierarchy expansion and naive counting options.
	eng, err := msod.NewEngine(msod.NewADIStore(), compiled,
		msod.WithRoleExpander(m.Closure), msod.WithNaiveMMEPCounting())
	if err != nil {
		t.Fatal(err)
	}
	ctx := msod.MustContext("Branch=York, Period=2006")
	if dec, err := eng.Evaluate(msod.EngineRequest{
		User: "u", Roles: []msod.RoleName{"Head"}, // expands to Teller
		Operation: "op", Target: "t", Context: ctx,
	}); err != nil || dec.Effect != msod.Grant {
		t.Fatalf("head eval = %+v, %v", dec, err)
	}
	if dec, err := eng.Evaluate(msod.EngineRequest{
		User: "u", Roles: []msod.RoleName{"Auditor"},
		Operation: "op", Target: "t", Context: ctx,
	}); err != nil || dec.Effect != msod.Deny {
		t.Fatalf("hierarchy expansion through facade broken: %+v, %v", dec, err)
	}
	// Peek through the facade.
	if dec, err := eng.Peek(msod.EngineRequest{
		User: "v", Roles: []msod.RoleName{"Teller"},
		Operation: "op", Target: "t", Context: ctx,
	}); err != nil || dec.Effect != msod.Grant {
		t.Fatalf("peek = %+v, %v", dec, err)
	}

	// Secure snapshot store.
	dir := t.TempDir()
	snap, err := msod.NewADISecureStore(filepath.Join(dir, "snap.sealed"), []byte("s"))
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.Save(nil); err != nil {
		t.Fatal(err)
	}

	// Durable store.
	ds, err := msod.OpenDurableADI(filepath.Join(dir, "durable"), []byte("d"), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Append(msod.ADIRecord{
		User: "u", Operation: "op", Target: "t",
		Context: msod.MustContext("P=1"), Time: time.Now(),
	}); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	// Linker.
	lk := msod.NewLinker()
	lk.Link("issuer", "alias", "local")
	if got := lk.Resolve("issuer", "alias"); got != "local" {
		t.Errorf("Resolve = %q", got)
	}

	// Directory + allocator + HTTP server/client.
	repo := msod.NewDirectory()
	auth, err := msod.NewAuthority("soa")
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := msod.NewAllocator(auth, repo)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	if _, err := alloc.Allocate("alice", "Teller", now.Add(-time.Hour), now.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(msod.NewDirectoryServer(repo))
	defer ts.Close()
	creds, err := msod.NewDirectoryClient(ts.URL).Fetch("alice", now)
	if err != nil || len(creds) != 1 {
		t.Fatalf("directory fetch = %v, %v", creds, err)
	}

	// Audit writer/reader round trip through the facade.
	trailDir := filepath.Join(dir, "trail")
	w, err := msod.NewAuditWriter(trailDir, []byte("k"), 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := w.Append(msod.AuditEvent{User: "u", Operation: "op", Target: "t",
			Context: "P=1", Effect: "grant"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	if w.Seq() != 3 {
		t.Errorf("Seq = %d", w.Seq())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := msod.NewAuditReader(trailDir, []byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := r.Verify(); err != nil || n != 3 {
		t.Fatalf("verify = %d, %v", n, err)
	}
}

// TestFacadeVerifySurface exercises the policy-verification facade: the
// model checker via VerifyPolicy/VerifyPolicySource, the error
// severity, and the suppression accounting msodd's boot gate relies on.
func TestFacadeVerifySurface(t *testing.T) {
	// A provably broken policy: the LastStep is granted to nobody.
	broken := []byte(`
<RBACPolicy id="broken">
  <RoleList><Role value="Clerk"/></RoleList>
  <TargetAccessPolicy><Grant role="Clerk" operation="prepare" target="check"/></TargetAccessPolicy>
  <MSoDPolicySet>
    <MSoDPolicy BusinessContext="P=!">
      <LastStep operation="confirm" targetURI="audit"/>
      <MMEP ForbiddenCardinality="2">
        <Privilege operation="prepare" target="check"/>
        <Privilege operation="confirm" target="audit"/>
      </MMEP>
    </MSoDPolicy>
  </MSoDPolicySet>
</RBACPolicy>`)
	res, err := msod.VerifyPolicySource(broken)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors() == 0 {
		t.Fatalf("broken policy verified clean: %v", res.Findings)
	}
	hasError := false
	for _, f := range res.Findings {
		if f.Severity == msod.LintError {
			hasError = true
		}
	}
	if !hasError {
		t.Errorf("no LintError-severity finding: %v", res.Findings)
	}

	// The semantic pass alone agrees.
	deep, err := msod.VerifyPolicy(res.Policy)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range deep {
		if f.Severity == msod.LintError && f.Check != "" {
			found = true
		}
	}
	if !found {
		t.Errorf("VerifyPolicy reported no checked error finding: %v", deep)
	}

	// LintPolicy inherits the deep findings through the facade link.
	lint, err := msod.LintPolicy(res.Policy)
	if err != nil {
		t.Fatal(err)
	}
	if len(lint) < len(deep) {
		t.Errorf("LintPolicy (%d findings) lost the deep findings (%d)", len(lint), len(deep))
	}

	// The verification status feeds the server surface.
	vs := &msod.PolicyVerificationStatus{}
	vs.Set(res.Warnings(), res.Suppressed)
	_ = msod.WithServerPolicyVerification(vs)
}
