package msod_test

import (
	"errors"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"msod"
)

const bankXML = `
<RBACPolicy id="facade-bank">
  <RoleList>
    <Role value="Teller"/>
    <Role value="Auditor"/>
  </RoleList>
  <RoleAssignmentPolicy>
    <Assignment soa="hr.bank.example" role="Teller"/>
    <Assignment soa="hr.bank.example" role="Auditor"/>
  </RoleAssignmentPolicy>
  <TargetAccessPolicy>
    <Grant role="Teller" operation="HandleCash" target="till"/>
    <Grant role="Auditor" operation="Audit" target="ledger"/>
    <Grant role="Auditor" operation="CommitAudit" target="audit"/>
  </TargetAccessPolicy>
  <MSoDPolicySet>
    <MSoDPolicy BusinessContext="Branch=*, Period=!">
      <LastStep operation="CommitAudit" targetURI="audit"/>
      <MMER ForbiddenCardinality="2">
        <Role type="employee" value="Teller"/>
        <Role type="employee" value="Auditor"/>
      </MMER>
    </MSoDPolicy>
  </MSoDPolicySet>
</RBACPolicy>`

// TestQuickstartFlow exercises the documented public-API happy path:
// parse policy, build PDP, take history-dependent decisions.
func TestQuickstartFlow(t *testing.T) {
	pol, err := msod.ParsePolicy([]byte(bankXML))
	if err != nil {
		t.Fatal(err)
	}
	p, err := msod.NewPDP(msod.PDPConfig{Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := p.Decide(msod.Request{
		User: "alice", Roles: []msod.RoleName{"Teller"},
		Operation: "HandleCash", Target: "till",
		Context: msod.MustContext("Branch=York, Period=2006"),
	})
	if err != nil || !dec.Allowed || dec.Phase != msod.PhaseGranted {
		t.Fatalf("teller decision = %+v, %v", dec, err)
	}
	dec, err = p.Decide(msod.Request{
		User: "alice", Roles: []msod.RoleName{"Auditor"},
		Operation: "Audit", Target: "ledger",
		Context: msod.MustContext("Branch=Leeds, Period=2006"),
	})
	if err != nil || dec.Allowed || dec.Phase != msod.PhaseMSoD {
		t.Fatalf("auditor decision = %+v, %v", dec, err)
	}
}

// TestEngineOnlyFlow: the engine layer without a full PDP.
func TestEngineOnlyFlow(t *testing.T) {
	store := msod.NewADIStore()
	eng, err := msod.NewEngine(store, []msod.EnginePolicy{{
		Context: msod.MustContext("P=!"),
		MMER: []msod.MMERRule{{
			Roles:       []msod.RoleName{"A", "B"},
			Cardinality: 2,
		}},
	}}, msod.WithClock(func() time.Time { return time.Unix(42, 0) }))
	if err != nil {
		t.Fatal(err)
	}
	dec, err := eng.Evaluate(msod.EngineRequest{
		User: "u", Roles: []msod.RoleName{"A"},
		Operation: "op", Target: "t", Context: msod.MustContext("P=1"),
	})
	if err != nil || dec.Effect != msod.Grant {
		t.Fatalf("first = %+v, %v", dec, err)
	}
	dec, err = eng.Evaluate(msod.EngineRequest{
		User: "u", Roles: []msod.RoleName{"B"},
		Operation: "op", Target: "t", Context: msod.MustContext("P=1"),
	})
	if err != nil || dec.Effect != msod.Deny {
		t.Fatalf("second = %+v, %v", dec, err)
	}
	recs := store.UserRecords("u", msod.MustContext("P=1"))
	if len(recs) != 1 || !recs[0].Time.Equal(time.Unix(42, 0)) {
		t.Fatalf("records = %v", recs)
	}
}

// TestRemoteFlow: the server/client layer, with signed credentials.
func TestRemoteFlow(t *testing.T) {
	pol, err := msod.ParsePolicy([]byte(bankXML))
	if err != nil {
		t.Fatal(err)
	}
	p, err := msod.NewPDP(msod.PDPConfig{Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	hr, err := msod.NewAuthority("hr.bank.example")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.TrustAuthority(hr); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(msod.NewServer(p))
	defer ts.Close()

	now := time.Now()
	cred, err := hr.IssueRole("alice", "Teller", now.Add(-time.Hour), now.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	client := msod.NewClient(ts.URL)
	resp, err := client.Decision(msod.DecisionRequest{
		Credentials: []msod.Credential{cred},
		Operation:   "HandleCash", Target: "till",
		Context: "Branch=York, Period=2006",
	})
	if err != nil || !resp.Allowed || resp.User != "alice" {
		t.Fatalf("remote decision = %+v, %v", resp, err)
	}
}

// TestRecoveryFlow: the audit-trail round trip through the facade.
func TestRecoveryFlow(t *testing.T) {
	pol, err := msod.ParsePolicy([]byte(bankXML))
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "trail")
	w, err := msod.NewAuditWriter(dir, []byte("k"), 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := msod.NewPDP(msod.PDPConfig{Policy: pol, Trail: w})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Decide(msod.Request{
		User: "alice", Roles: []msod.RoleName{"Teller"},
		Operation: "HandleCash", Target: "till",
		Context: msod.MustContext("Branch=York, Period=2006"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	store, stats, err := msod.Recover(pol, msod.RecoveryConfig{
		Mode: msod.RecoverFromTrail, TrailDir: dir, TrailKey: []byte("k"),
	})
	if err != nil || stats.Records != 1 || store.Len() != 1 {
		t.Fatalf("recover = %+v, len=%d, %v", stats, store.Len(), err)
	}
}

// TestPEPFlow: the application-side enforcer through the facade.
func TestPEPFlow(t *testing.T) {
	pol, err := msod.ParsePolicy([]byte(bankXML))
	if err != nil {
		t.Fatal(err)
	}
	p, err := msod.NewPDP(msod.PDPConfig{Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	ctx := msod.MustContext("Branch=York, Period=2006")
	teller, err := msod.NewEnforcer(p, msod.Subject{
		User: "alice", Roles: []msod.RoleName{"Teller"},
	}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := teller.Do("HandleCash", "till"); err != nil {
		t.Fatal(err)
	}
	auditor, err := msod.NewEnforcer(p, msod.Subject{
		User: "alice", Roles: []msod.RoleName{"Auditor"},
	}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := auditor.Do("Audit", "ledger"); !errors.Is(err, msod.ErrDenied) {
		t.Fatalf("expected ErrDenied, got %v", err)
	}
}

// TestWorkflowFacade: the workflow layer through the facade.
func TestWorkflowFacade(t *testing.T) {
	def := msod.TaxRefundWorkflow()
	inst, err := msod.NewWorkflowInstance(def, msod.MustContext("TaxOffice=X, taxRefundProcess=1"))
	if err != nil {
		t.Fatal(err)
	}
	if ready := inst.ReadyTasks(); len(ready) != 1 || ready[0] != "T1" {
		t.Errorf("ready = %v", ready)
	}
	xmlDef, err := msod.ParseWorkflowDefinition([]byte(`
		<WorkflowDefinition name="two-step">
			<Task name="a" operation="op1" target="t" role="R"/>
			<Task name="b" operation="op2" target="t" role="R" dependsOn="a"/>
		</WorkflowDefinition>`))
	if err != nil {
		t.Fatal(err)
	}
	if len(xmlDef.Tasks) != 2 {
		t.Errorf("xml def = %+v", xmlDef)
	}
}

func TestContextHelpers(t *testing.T) {
	c, err := msod.ParseContext("Branch=*, Period=!")
	if err != nil {
		t.Fatal(err)
	}
	if c.IsInstance() {
		t.Error("wildcard context reported as instance")
	}
	h := msod.NewContextHierarchy()
	h.Touch(msod.MustContext("Branch=York, Period=2006"))
	if !h.Active(msod.MustContext("Branch=York")) {
		t.Error("hierarchy missing ancestor")
	}
	if msod.AnyInstance != "*" || msod.PerInstance != "!" {
		t.Error("wildcard constants wrong")
	}
}
