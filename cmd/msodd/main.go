// Command msodd runs an MSoD-enforcing PDP as an HTTP service: the
// distributed deployment of §4/§5. It loads an RBACPolicy XML document
// (with its embedded MSoDPolicySet), recovers or opens the retained ADI
// (audit-trail replay, encrypted snapshot, or the self-recovering
// durable store), and serves the decision, advice and management
// endpoints until SIGINT/SIGTERM, shutting down gracefully. SIGHUP
// hot-reloads the policy file over the live retained ADI; a failed
// reload keeps the previous policy serving.
//
// Usage:
//
//	msodd -policy policy.xml -addr :8443 \
//	      -trail ./trail -trail-key-file key.txt \
//	      -recover trail
//
//	msodd -policy policy.xml -adi ./adi -adi-secret-file secret.txt
//
// Endpoints:
//
//	POST /v1/decision              access control decisions
//	POST /v1/advice                advisory (side-effect-free) decisions
//	POST /v1/management            retained-ADI management (§4.3)
//	GET  /v1/health                liveness + policy ID
//	GET  /v1/metrics               decision counters (Prometheus text format)
//	GET  /v1/state/users/{user}    live retained-ADI and constraint progress
//	GET  /v1/state/contexts/{bc}   per-context state (wildcards allowed)
//	GET  /v1/events                decision event stream (SSE)
//	GET  /v1/explain/{requestID}   decision provenance: rules, k-of-m state, governing constraint
//	GET  /v1/traces/{traceID}      retained span tree of a tail-sampled decision
//	GET  /v1/handoff/users         retained-ADI user list (requires -handoff)
//	POST /v1/handoff/import        resharding subtree import (requires -handoff)
//	POST /v1/handoff/release       post-cutover donor purge (requires -handoff)
//	GET  /v1/ctx/activation        running FirstStep-gated context instances
//	POST /v1/ctx/activation        cluster activation fan-in: mark instances
//	                               started elsewhere (durable, deny-safe)
//
// The decision event stream is always on. The audit-chain sentinel
// (-sentinel-interval) incrementally re-verifies the HMAC chain while
// the daemon runs; with -sentinel-fail-closed a detected tamper makes
// the daemon refuse further decisions.
//
// -verify-policies gates boot (and every SIGHUP reload) on the policy
// model checker: error-severity findings — unsatisfiable or
// unfinishable business methods, unpurgeable contexts — refuse the
// policy outright (fail closed), warnings are logged, and the outcome
// is surfaced on /v1/health and the msod_policy_verification_* metric
// families. A failed verification during reload keeps the previous,
// verified policy serving.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"msod"
	"msod/internal/obsv"
)

// options are the parsed command-line settings.
type options struct {
	policyPath         string
	addr               string
	trailDir           string
	keyFile            string
	recover            string
	snapPath           string
	snapSecret         string
	segSize            int
	adiDir             string
	adiSecret          string
	adiSync            bool
	maxInFlight        int
	shedRetryAfter     time.Duration
	handoff            bool
	slowLog            time.Duration
	pprofAddr          string
	pprofAllowRemote   bool
	sentinelInterval   time.Duration
	sentinelFailClosed bool
	replicaOf          string
	maxStaleness       time.Duration
	explainCapacity    int
	traceCapacity      int
	traceSample        int
	traceSlow          time.Duration
	sloLatencyP99      time.Duration
	sloGoal            float64
	sloWindow          time.Duration
	verifyPolicies     bool
}

func parseFlags(args []string) (*options, error) {
	fs := flag.NewFlagSet("msodd", flag.ContinueOnError)
	o := &options{}
	fs.StringVar(&o.policyPath, "policy", "", "path to the RBACPolicy XML document (required)")
	fs.StringVar(&o.addr, "addr", ":8443", "listen address")
	fs.StringVar(&o.trailDir, "trail", "", "audit trail directory (empty disables the trail)")
	fs.StringVar(&o.keyFile, "trail-key-file", "", "file holding the trail HMAC key")
	fs.StringVar(&o.recover, "recover", "none", "retained-ADI recovery: none | trail | snapshot")
	fs.StringVar(&o.snapPath, "snapshot", "", "encrypted snapshot path (for -recover snapshot)")
	fs.StringVar(&o.snapSecret, "snapshot-secret-file", "", "file holding the snapshot secret")
	fs.IntVar(&o.segSize, "trail-segment", 4096, "audit trail entries per segment")
	fs.StringVar(&o.adiDir, "adi", "", "durable retained-ADI directory (self-recovering; overrides -recover)")
	fs.StringVar(&o.adiSecret, "adi-secret-file", "", "file holding the durable ADI secret")
	fs.BoolVar(&o.adiSync, "adi-sync", false, "fsync every durable-ADI mutation")
	fs.IntVar(&o.maxInFlight, "max-inflight", 0, "shed decision/management requests beyond this many in flight (0 = unbounded)")
	fs.DurationVar(&o.shedRetryAfter, "shed-retry-after", time.Second, "Retry-After hint on shed (503) responses")
	fs.BoolVar(&o.handoff, "handoff", false, "serve the resharding handoff endpoints (for shards behind an msodgw gateway; the import endpoint replaces per-user history)")
	fs.DurationVar(&o.slowLog, "slowlog", 0, "log decisions slower than this (0 disables; 1ns logs every decision)")
	fs.StringVar(&o.pprofAddr, "pprof", "", "serve net/http/pprof on this address (empty disables; binds loopback unless -pprof-allow-remote)")
	fs.BoolVar(&o.pprofAllowRemote, "pprof-allow-remote", false, "allow -pprof to bind a non-loopback address (profiling endpoints expose process internals)")
	fs.DurationVar(&o.sentinelInterval, "sentinel-interval", 0, "audit-chain sentinel check interval (0 disables; needs -trail)")
	fs.BoolVar(&o.sentinelFailClosed, "sentinel-fail-closed", false, "refuse decisions once the sentinel detects audit-chain tampering")
	fs.StringVar(&o.replicaOf, "replica-of", "", "run as an advisory read replica of the shard at this base URL (no authoritative decisions)")
	fs.DurationVar(&o.maxStaleness, "max-staleness", 0, "replica staleness bound: refuse answers once the owner has been silent this long (0 = 30s default; negative disables)")
	fs.IntVar(&o.explainCapacity, "explain-capacity", 0, "decision provenance records retained for /v1/explain (0 = 1024 default; negative disables explain)")
	fs.IntVar(&o.traceCapacity, "trace-capacity", 0, "tail-sampled span trees retained for /v1/traces (0 = 1024 default; negative disables trace retention)")
	fs.IntVar(&o.traceSample, "trace-sample", 0, "keep a deterministic 1-in-N sample of fast grants' span trees (0 keeps none; refusals, errors and slow decisions are always kept)")
	fs.DurationVar(&o.traceSlow, "trace-slow-threshold", 0, "always keep span trees of decisions slower than this (0 disables the slow criterion)")
	fs.DurationVar(&o.sloLatencyP99, "slo-latency-p99", 0, "declared per-decision latency objective; enables the msod_slo_* metric families (0 disables the SLO layer)")
	fs.Float64Var(&o.sloGoal, "slo-goal", 0.999, "declared good-request target fraction for the SLO layer")
	fs.DurationVar(&o.sloWindow, "slo-window", time.Hour, "rolling error-budget window for the SLO layer (fast burn-rate window is 1/12 of this)")
	fs.BoolVar(&o.verifyPolicies, "verify-policies", false, "model-check the policy at boot and on reload; refuse to serve on error-severity findings (fail closed)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if o.policyPath == "" {
		return nil, errors.New("msodd: -policy is required")
	}
	if o.replicaOf != "" {
		// A replica holds no authority and writes nothing: every flag
		// implying authoritative state is a configuration error, not a
		// silent no-op.
		switch {
		case o.trailDir != "":
			return nil, errors.New("msodd: -replica-of conflicts with -trail (replicas write no audit trail)")
		case o.adiDir != "":
			return nil, errors.New("msodd: -replica-of conflicts with -adi (the mirror is rebuilt from the owner, never persisted)")
		case o.recover != "none":
			return nil, errors.New("msodd: -replica-of conflicts with -recover (replicas bootstrap from the owner's snapshot)")
		case o.snapPath != "" || o.snapSecret != "":
			return nil, errors.New("msodd: -replica-of conflicts with -snapshot")
		case o.sentinelInterval > 0:
			return nil, errors.New("msodd: -replica-of conflicts with -sentinel-interval (replicas hold no trail to verify)")
		case o.handoff:
			return nil, errors.New("msodd: -replica-of conflicts with -handoff (replicas hold no authoritative history to stream)")
		}
	}
	return o, nil
}

// loadPolicy reads, parses and lints the policy file. With verify on
// (-verify-policies), the full model check runs instead — honouring the
// document's msod:ignore suppressions — and error-severity findings
// refuse the policy (fail closed); the outcome lands in status when one
// is supplied.
func loadPolicy(path string, verify bool, status *msod.PolicyVerificationStatus, logf func(format string, args ...any)) (*msod.Policy, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("read policy: %w", err)
	}
	if verify {
		res, err := msod.VerifyPolicySource(raw)
		if err != nil {
			return nil, fmt.Errorf("parse policy: %w", err)
		}
		for _, f := range res.Findings {
			logf("msodd: policy %s", f)
		}
		if n := res.Errors(); n > 0 {
			return nil, fmt.Errorf("policy verification failed: %d error-severity finding(s); refusing to serve an unenforceable policy (fail closed)", n)
		}
		if status != nil {
			status.Set(res.Warnings(), res.Suppressed)
		}
		return res.Policy, nil
	}
	pol, err := msod.ParsePolicy(raw)
	if err != nil {
		return nil, fmt.Errorf("parse policy: %w", err)
	}
	// Surface lint findings; they do not block.
	if findings, err := msod.LintPolicy(pol); err == nil {
		for _, f := range findings {
			logf("msodd: policy %s", f)
		}
	}
	return pol, nil
}

// deps are the long-lived runtime dependencies a PDP is built over;
// they survive policy hot-reloads.
type deps struct {
	store msod.ADIRecorder
	trail *msod.AuditWriter
	// trailKey is retained for the audit-chain sentinel, which verifies
	// the same trail the writer appends to.
	trailKey []byte
	// broker fans decision events out to /v1/events subscribers; it is
	// always on and carries over policy reloads so subscribers keep
	// their stream.
	broker *msod.EventBroker
	// sentinel, when enabled, continuously verifies the audit chain.
	sentinel *msod.AuditSentinel
	// verify, when -verify-policies is on, carries the latest boot-gate
	// outcome to the server's health and metrics surfaces across
	// reloads.
	verify *msod.PolicyVerificationStatus
}

// observer adapts the broker to the PDP's Observer hook.
func (d *deps) observer() func(msod.DecisionEvent) {
	return func(ev msod.DecisionEvent) { d.broker.Publish(ev) }
}

// buildPDP assembles the PDP from options, returning the reusable
// dependencies and a cleanup function that flushes stores and trails on
// shutdown.
func buildPDP(o *options, logf func(format string, args ...any)) (*msod.PDP, *deps, func(), error) {
	var verifyStatus *msod.PolicyVerificationStatus
	if o.verifyPolicies {
		verifyStatus = &msod.PolicyVerificationStatus{}
	}
	pol, err := loadPolicy(o.policyPath, o.verifyPolicies, verifyStatus, logf)
	if err != nil {
		return nil, nil, nil, err
	}

	var cleanups []func()
	cleanup := func() {
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
	}
	fail := func(err error) (*msod.PDP, *deps, func(), error) {
		cleanup()
		return nil, nil, nil, err
	}

	var trailKey []byte
	if o.keyFile != "" {
		k, err := os.ReadFile(o.keyFile)
		if err != nil {
			return fail(fmt.Errorf("read trail key: %w", err))
		}
		trailKey = []byte(strings.TrimSpace(string(k)))
	}

	cfg := msod.PDPConfig{Policy: pol}

	if o.adiDir != "" {
		if o.adiSecret == "" {
			return fail(errors.New("-adi needs -adi-secret-file"))
		}
		secret, err := os.ReadFile(o.adiSecret)
		if err != nil {
			return fail(fmt.Errorf("read ADI secret: %w", err))
		}
		ds, err := msod.OpenDurableADI(o.adiDir, secret, o.adiSync)
		if err != nil {
			return fail(fmt.Errorf("open durable ADI: %w", err))
		}
		cleanups = append(cleanups, func() {
			if err := ds.Compact(); err != nil {
				logf("msodd: compact durable ADI: %v", err)
			}
			if err := ds.Close(); err != nil {
				logf("msodd: close durable ADI: %v", err)
			}
		})
		logf("msodd: durable retained ADI open with %d records", ds.Len())
		cfg.Store = ds
	} else {
		switch o.recover {
		case "none":
		case "trail":
			if o.trailDir == "" || len(trailKey) == 0 {
				return fail(errors.New("-recover trail needs -trail and -trail-key-file"))
			}
			store, stats, err := msod.Recover(pol, msod.RecoveryConfig{
				Mode: msod.RecoverFromTrail, TrailDir: o.trailDir, TrailKey: trailKey,
			})
			if err != nil {
				return fail(fmt.Errorf("trail recovery: %w", err))
			}
			logf("msodd: recovered %d retained-ADI records from %d events (%d diverged)",
				stats.Records, stats.Events, stats.Diverged)
			cfg.Store = store
		case "snapshot":
			if o.snapPath == "" || o.snapSecret == "" {
				return fail(errors.New("-recover snapshot needs -snapshot and -snapshot-secret-file"))
			}
			secret, err := os.ReadFile(o.snapSecret)
			if err != nil {
				return fail(fmt.Errorf("read snapshot secret: %w", err))
			}
			snap, err := msod.NewADISecureStore(o.snapPath, secret)
			if err != nil {
				return fail(fmt.Errorf("open snapshot: %w", err))
			}
			store, stats, err := msod.Recover(pol, msod.RecoveryConfig{
				Mode: msod.RecoverFromSnapshot, Snapshot: snap,
			})
			if err != nil {
				return fail(fmt.Errorf("snapshot recovery: %w", err))
			}
			logf("msodd: loaded %d retained-ADI records from snapshot", stats.Records)
			cfg.Store = store
		default:
			return fail(fmt.Errorf("unknown -recover mode %q", o.recover))
		}
	}

	if o.trailDir != "" {
		if len(trailKey) == 0 {
			return fail(errors.New("-trail needs -trail-key-file"))
		}
		w, err := msod.NewAuditWriter(o.trailDir, trailKey, o.segSize)
		if err != nil {
			return fail(fmt.Errorf("open trail: %w", err))
		}
		cleanups = append(cleanups, func() {
			if err := w.Close(); err != nil {
				logf("msodd: close trail: %v", err)
			}
		})
		cfg.Trail = w
	}

	if cfg.Store == nil {
		// Pin the store so policy hot-reloads keep the same history.
		cfg.Store = msod.NewADIStore()
	}
	d := &deps{
		store:    cfg.Store,
		trail:    cfg.Trail,
		trailKey: trailKey,
		broker:   msod.NewEventBroker(0),
		verify:   verifyStatus,
	}
	cfg.Observer = d.observer()
	p, err := msod.NewPDP(cfg)
	if err != nil {
		return fail(fmt.Errorf("build PDP: %w", err))
	}
	return p, d, cleanup, nil
}

// reloadPDP builds a fresh PDP from the current policy file over the
// existing store and trail — the SIGHUP hot-reload path. The retained
// ADI carries over, so history-dependent decisions are unaffected by
// the policy swap (and a changed MSoD set applies to the existing
// history immediately, as §5.2's restart semantics do).
func reloadPDP(o *options, d *deps, logf func(format string, args ...any)) (*msod.PDP, error) {
	pol, err := loadPolicy(o.policyPath, o.verifyPolicies, d.verify, logf)
	if err != nil {
		return nil, err
	}
	return msod.NewPDP(msod.PDPConfig{
		Policy: pol, Store: d.store, Trail: d.trail, Observer: d.observer(),
	})
}

// serve runs the HTTP server on the listener until ctx is cancelled,
// then shuts down gracefully.
func serve(ctx context.Context, ln net.Listener, handler http.Handler, logf func(string, ...any)) error {
	srv := &http.Server{Handler: handler}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	logf("msodd: listening on %s", ln.Addr())

	select {
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		logf("msodd: shutting down")
		if err := srv.Shutdown(shutCtx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		<-errCh // Serve has returned ErrServerClosed
		return nil
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

// serverOptions assembles the server options shared by the initial
// build and every SIGHUP reload: slow-decision logging and, when the
// durable ADI is in use, its recovery-time and disk-usage gauges.
func serverOptions(o *options, d *deps, logger *slog.Logger) []msod.ServerOption {
	opts := []msod.ServerOption{msod.WithServerEventBroker(d.broker)}
	if d.verify != nil {
		opts = append(opts, msod.WithServerPolicyVerification(d.verify))
	}
	if o.explainCapacity != 0 {
		opts = append(opts, msod.WithServerExplainCapacity(o.explainCapacity))
	}
	if o.traceCapacity >= 0 {
		// One trace store per process: built here (not per reload) so
		// retained span trees survive SIGHUP policy reloads.
		opts = append(opts, msod.WithServerTraceStore(msod.NewTraceStore(msod.TraceStoreConfig{
			Capacity:      o.traceCapacity,
			SampleEvery:   o.traceSample,
			SlowThreshold: o.traceSlow,
		})))
	}
	if o.sloLatencyP99 > 0 {
		// One SLO tracker per process: built here (not per reload) so the
		// error-budget window survives SIGHUP policy reloads.
		opts = append(opts, msod.WithServerSLO(msod.NewSLO(msod.SLOConfig{
			Goal: o.sloGoal, Latency: o.sloLatencyP99, Window: o.sloWindow,
		})))
	}
	if d.sentinel != nil {
		opts = append(opts, msod.WithServerSentinel(d.sentinel, o.sentinelFailClosed))
	}
	if o.slowLog > 0 {
		opts = append(opts, msod.WithDecisionLog(logger, o.slowLog))
	}
	if o.maxInFlight > 0 {
		opts = append(opts, msod.WithServerAdmissionLimit(o.maxInFlight, o.shedRetryAfter))
	}
	if o.handoff {
		opts = append(opts, msod.WithServerHandoff())
	}
	if ds, ok := d.store.(*msod.ADIDurableStore); ok {
		opts = append(opts,
			msod.WithServerGauge("msod_adi_recovery_seconds",
				"Time spent recovering the durable retained ADI at startup.",
				func() float64 { return ds.RecoveryDuration().Seconds() }),
			msod.WithServerGauge("msod_adi_durable_bytes",
				"On-disk size of the durable retained ADI (snapshot + WAL).",
				func() float64 { return float64(ds.DiskUsage()) }),
		)
	}
	return opts
}

func main() {
	o, err := parseFlags(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	logger := obsv.NewLogger(os.Stderr, "msodd")
	logf := func(format string, args ...any) { logger.Info(fmt.Sprintf(format, args...)) }
	fatalf := func(format string, args ...any) {
		logger.Error(fmt.Sprintf(format, args...))
		os.Exit(1)
	}
	if o.replicaOf != "" {
		runReplica(o, logger, logf, fatalf)
		return
	}
	p, d, cleanup, err := buildPDP(o, logf)
	if err != nil {
		fatalf("msodd: %v", err)
	}
	defer cleanup()
	logf("msodd: policy %q loaded", p.PolicyID())

	if o.sentinelInterval > 0 {
		if o.trailDir == "" || len(d.trailKey) == 0 {
			fatalf("msodd: -sentinel-interval needs -trail and -trail-key-file")
		}
		sent, err := msod.NewAuditSentinel(msod.AuditSentinelConfig{
			Dir: o.trailDir, Key: d.trailKey, Interval: o.sentinelInterval, Logger: logger,
		})
		if err != nil {
			fatalf("msodd: sentinel: %v", err)
		}
		sent.Start()
		defer sent.Stop()
		d.sentinel = sent
		logf("msodd: audit-chain sentinel checking every %s (fail-closed=%v)",
			o.sentinelInterval, o.sentinelFailClosed)
	}

	srvOpts := serverOptions(o, d, logger)
	var cur atomic.Pointer[msod.Server]
	cur.Store(msod.NewServer(p, srvOpts...))

	if o.pprofAddr != "" {
		addr, warn, err := obsv.SanitizePprofAddr(o.pprofAddr, o.pprofAllowRemote)
		if err != nil {
			fatalf("msodd: %v", err)
		}
		if warn {
			logger.Warn("pprof bound to a non-loopback address; profiling endpoints expose process internals",
				slog.String("addr", addr))
		}
		pln, err := net.Listen("tcp", addr)
		if err != nil {
			fatalf("msodd: pprof listen: %v", err)
		}
		logf("msodd: pprof on %s", pln.Addr())
		go func() {
			if err := http.Serve(pln, obsv.PprofHandler()); err != nil {
				logf("msodd: pprof server stopped: %v", err)
			}
		}()
	}

	// SIGHUP hot-reloads the policy over the live store and trail; a
	// failed reload keeps the previous policy serving.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			np, err := reloadPDP(o, d, logf)
			if err != nil {
				logf("msodd: policy reload failed, keeping previous: %v", err)
				continue
			}
			cur.Store(msod.NewServer(np, srvOpts...))
			logf("msodd: policy %q reloaded", np.PolicyID())
		}
	}()

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		fatalf("msodd: listen: %v", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	// The handler is read through the pointer on every request, so a
	// SIGHUP policy reload swaps it atomically.
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cur.Load().ServeHTTP(w, r)
	})
	if err := serve(ctx, ln, handler, logf); err != nil {
		fatalf("msodd: %v", err)
	}
}

// runReplica is the -replica-of mode: bootstrap a retained-ADI mirror
// from the owner's snapshot, tail its event stream with sequence
// resume, and serve the advisory/state surface under the bounded
// staleness contract. Decision and management POSTs are refused with
// 421 — a replica never answers authoritatively.
func runReplica(o *options, logger *slog.Logger, logf func(string, ...any), fatalf func(string, ...any)) {
	pol, err := loadPolicy(o.policyPath, o.verifyPolicies, nil, logf)
	if err != nil {
		fatalf("msodd: %v", err)
	}
	f, err := msod.NewReplicaFollower(msod.ReplicaConfig{
		Owner:        o.replicaOf,
		Policy:       pol,
		MaxStaleness: o.maxStaleness,
		Logger:       logger,
	})
	if err != nil {
		fatalf("msodd: replica: %v", err)
	}
	logf("msodd: replica of %s (policy %q, max staleness %s)",
		o.replicaOf, pol.ID, f.MaxStaleness())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	go func() {
		if err := f.Run(ctx); err != nil && ctx.Err() == nil {
			// Terminal follower error (the owner runs a different
			// policy): serving would answer from alien history.
			logger.Error(fmt.Sprintf("msodd: replica follower stopped: %v", err))
			stop()
		}
	}()

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		fatalf("msodd: listen: %v", err)
	}
	if err := serve(ctx, ln, msod.NewReplicaServer(f), logf); err != nil {
		fatalf("msodd: %v", err)
	}
}
