package main

import (
	"context"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"msod"
)

const dPolicyXML = `
<RBACPolicy id="msodd-test">
  <RoleList><Role value="Teller"/><Role value="Auditor"/></RoleList>
  <TargetAccessPolicy>
    <Grant role="Teller" operation="HandleCash" target="till"/>
    <Grant role="Auditor" operation="Audit" target="ledger"/>
  </TargetAccessPolicy>
  <MSoDPolicySet>
    <MSoDPolicy BusinessContext="Branch=*, Period=!">
      <MMER ForbiddenCardinality="2">
        <Role type="e" value="Teller"/>
        <Role type="e" value="Auditor"/>
      </MMER>
    </MSoDPolicy>
  </MSoDPolicySet>
</RBACPolicy>`

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func discardLog(string, ...any) {}

func TestParseFlags(t *testing.T) {
	if _, err := parseFlags([]string{}); err == nil {
		t.Error("missing -policy accepted")
	}
	o, err := parseFlags([]string{"-policy", "p.xml", "-addr", ":0"})
	if err != nil || o.policyPath != "p.xml" || o.addr != ":0" {
		t.Errorf("parse = %+v, %v", o, err)
	}
	if _, err := parseFlags([]string{"-nonsense"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestBuildPDPVariants(t *testing.T) {
	dir := t.TempDir()
	policyPath := writeFile(t, dir, "policy.xml", dPolicyXML)
	keyPath := writeFile(t, dir, "key", "trail-key")
	secretPath := writeFile(t, dir, "secret", "adi-secret")

	// Plain.
	p, _, cleanup, err := buildPDP(&options{policyPath: policyPath, recover: "none"}, discardLog)
	if err != nil {
		t.Fatal(err)
	}
	if p.PolicyID() != "msodd-test" {
		t.Errorf("policy id = %q", p.PolicyID())
	}
	cleanup()

	// With trail + trail recovery round trip.
	trailDir := filepath.Join(dir, "trail")
	o := &options{policyPath: policyPath, recover: "none",
		trailDir: trailDir, keyFile: keyPath, segSize: 16}
	p, _, cleanup, err = buildPDP(o, discardLog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Decide(msod.Request{
		User: "alice", Roles: []msod.RoleName{"Teller"},
		Operation: "HandleCash", Target: "till",
		Context: msod.MustContext("Branch=York, Period=2006"),
	}); err != nil {
		t.Fatal(err)
	}
	cleanup()

	o.recover = "trail"
	p, _, cleanup, err = buildPDP(o, discardLog)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := p.Decide(msod.Request{
		User: "alice", Roles: []msod.RoleName{"Auditor"},
		Operation: "Audit", Target: "ledger",
		Context: msod.MustContext("Branch=York, Period=2006"),
	})
	if err != nil || dec.Allowed {
		t.Fatalf("recovered msodd PDP lost history: %+v, %v", dec, err)
	}
	cleanup()

	// Durable ADI.
	o2 := &options{policyPath: policyPath, recover: "none",
		adiDir: filepath.Join(dir, "adi"), adiSecret: secretPath}
	p, _, cleanup, err = buildPDP(o2, discardLog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Decide(msod.Request{
		User: "bob", Roles: []msod.RoleName{"Teller"},
		Operation: "HandleCash", Target: "till",
		Context: msod.MustContext("Branch=York, Period=2007"),
	}); err != nil {
		t.Fatal(err)
	}
	cleanup() // compacts + closes

	p, _, cleanup, err = buildPDP(o2, discardLog)
	if err != nil {
		t.Fatal(err)
	}
	if p.Store().Len() != 1 {
		t.Errorf("durable recovery: %d records", p.Store().Len())
	}
	cleanup()

	// Error paths.
	bad := []*options{
		{policyPath: filepath.Join(dir, "absent.xml"), recover: "none"},
		{policyPath: policyPath, recover: "bogus"},
		{policyPath: policyPath, recover: "trail"},               // missing trail params
		{policyPath: policyPath, recover: "snapshot"},            // missing snapshot params
		{policyPath: policyPath, recover: "none", trailDir: "x"}, // trail without key
		{policyPath: policyPath, recover: "none", adiDir: "x"},   // adi without secret
	}
	for i, o := range bad {
		if _, _, _, err := buildPDP(o, discardLog); err == nil {
			t.Errorf("bad option set %d accepted", i)
		}
	}
}

// TestServeGracefulShutdown boots the server on an ephemeral port,
// makes a real decision over HTTP, cancels the context, and checks the
// server drains cleanly.
func TestServeGracefulShutdown(t *testing.T) {
	dir := t.TempDir()
	policyPath := writeFile(t, dir, "policy.xml", dPolicyXML)
	p, _, cleanup, err := buildPDP(&options{policyPath: policyPath, recover: "none"}, discardLog)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()

	var cur atomic.Pointer[msod.Server]
	cur.Store(msod.NewServer(p))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cur.Load().ServeHTTP(w, r)
	})
	go func() { done <- serve(ctx, ln, handler, discardLog) }()

	client := msod.NewClient("http://" + ln.Addr().String())
	deadline := time.Now().Add(5 * time.Second)
	var id string
	for {
		id, err = client.Health()
		if err == nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil || id != "msodd-test" {
		t.Fatalf("health = %q, %v", id, err)
	}
	resp, err := client.Decision(msod.DecisionRequest{
		User: "alice", Roles: []string{"Teller"},
		Operation: "HandleCash", Target: "till",
		Context: "Branch=York, Period=2006",
	})
	if err != nil || !resp.Allowed {
		t.Fatalf("decision = %+v, %v", resp, err)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down")
	}
	if _, err := client.Health(); err == nil || !strings.Contains(err.Error(), "health") {
		// Any network error is fine; success is not.
		if err == nil {
			t.Error("server still answering after shutdown")
		}
	}
}

// TestReloadPDPKeepsHistory: a policy hot-reload builds a new PDP over
// the same store, so history-dependent decisions survive, and a policy
// change applies to the existing history immediately.
func TestReloadPDPKeepsHistory(t *testing.T) {
	dir := t.TempDir()
	policyPath := writeFile(t, dir, "policy.xml", dPolicyXML)
	o := &options{policyPath: policyPath, recover: "none"}
	p, d, cleanup, err := buildPDP(o, discardLog)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	if _, err := p.Decide(msod.Request{
		User: "alice", Roles: []msod.RoleName{"Teller"},
		Operation: "HandleCash", Target: "till",
		Context: msod.MustContext("Branch=York, Period=2006"),
	}); err != nil {
		t.Fatal(err)
	}

	// Reload with the same policy: alice is still barred from auditing.
	p2, err := reloadPDP(o, d, discardLog)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := p2.Decide(msod.Request{
		User: "alice", Roles: []msod.RoleName{"Auditor"},
		Operation: "Audit", Target: "ledger",
		Context: msod.MustContext("Branch=York, Period=2006"),
	})
	if err != nil || dec.Allowed {
		t.Fatalf("reload lost history: %+v, %v", dec, err)
	}

	// Reload with a policy whose MSoD set is gone: the same request is
	// now allowed (the new policy governs, over the old store).
	noMSoD := dPolicyXML[:strings.Index(dPolicyXML, "<MSoDPolicySet>")] + "</RBACPolicy>"
	writeFile(t, dir, "policy.xml", noMSoD)
	p3, err := reloadPDP(o, d, discardLog)
	if err != nil {
		t.Fatal(err)
	}
	dec, err = p3.Decide(msod.Request{
		User: "alice", Roles: []msod.RoleName{"Auditor"},
		Operation: "Audit", Target: "ledger",
		Context: msod.MustContext("Branch=York, Period=2006"),
	})
	if err != nil || !dec.Allowed {
		t.Fatalf("constraint-free reload still denies: %+v, %v", dec, err)
	}

	// A broken policy file fails the reload cleanly.
	writeFile(t, dir, "policy.xml", "<broken")
	if _, err := reloadPDP(o, d, discardLog); err == nil {
		t.Fatal("broken policy reloaded")
	}
}

// A policy with a provable defect (the LastStep privilege is granted
// to nobody) must refuse to boot under -verify-policies, while plain
// boot (lint only) accepts it.
const dBrokenPolicyXML = `
<RBACPolicy id="msodd-broken">
  <RoleList><Role value="Clerk"/></RoleList>
  <TargetAccessPolicy><Grant role="Clerk" operation="prepare" target="check"/></TargetAccessPolicy>
  <MSoDPolicySet>
    <MSoDPolicy BusinessContext="P=!">
      <LastStep operation="confirm" targetURI="audit"/>
      <MMEP ForbiddenCardinality="2">
        <Privilege operation="prepare" target="check"/>
        <Privilege operation="confirm" target="audit"/>
      </MMEP>
    </MSoDPolicy>
  </MSoDPolicySet>
</RBACPolicy>`

func TestVerifyPoliciesGate(t *testing.T) {
	dir := t.TempDir()
	broken := writeFile(t, dir, "broken.xml", dBrokenPolicyXML)

	// Without the gate: lint findings log, the policy loads.
	if _, err := loadPolicy(broken, false, nil, discardLog); err != nil {
		t.Fatalf("ungated load refused: %v", err)
	}

	// With the gate: the error finding refuses the policy, fail closed.
	_, err := loadPolicy(broken, true, nil, discardLog)
	if err == nil || !strings.Contains(err.Error(), "refusing to serve") {
		t.Fatalf("gated load of a broken policy: err = %v, want refusal", err)
	}

	// A clean policy passes the gate and publishes its outcome.
	clean := writeFile(t, dir, "clean.xml", dPolicyXML)
	status := &msod.PolicyVerificationStatus{}
	pol, err := loadPolicy(clean, true, status, discardLog)
	if err != nil {
		t.Fatalf("gated load of a clean policy refused: %v", err)
	}
	if pol.ID != "msodd-test" {
		t.Fatalf("loaded policy ID = %q", pol.ID)
	}
}

func TestVerifyPoliciesReloadKeepsPrevious(t *testing.T) {
	dir := t.TempDir()
	policyPath := writeFile(t, dir, "policy.xml", dPolicyXML)
	o := &options{policyPath: policyPath, recover: "none", verifyPolicies: true}
	p, d, cleanup, err := buildPDP(o, discardLog)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	if d.verify == nil {
		t.Fatal("gate on but deps carry no verification status")
	}

	// Swap in a provably broken policy: the reload must refuse, so the
	// daemon keeps serving the previous verified policy.
	writeFile(t, dir, "policy.xml", dBrokenPolicyXML)
	if _, err := reloadPDP(o, d, discardLog); err == nil {
		t.Fatal("broken policy passed the reload gate")
	}
	if got := p.PolicyID(); got != "msodd-test" {
		t.Fatalf("serving policy = %q, want msodd-test", got)
	}
}
