// Command msodgw fronts a user-sharded cluster of msodd PDP shards
// with a consistent-hash gateway: decision and advisory requests route
// to the shard that owns the user, management and metrics fan out to
// every shard, and health-checked failover fails closed — a decision
// for a user whose shard is down gets an explicit 503, never a silent
// re-route that would evaluate MSoD against a partial retained ADI.
//
// Usage:
//
//	msodgw -addr :8440 \
//	       -shards a=http://10.0.0.1:8443,b=http://10.0.0.2:8443
//
// Each -shards entry is id=url; a bare URL uses itself as the ID. IDs
// are the stable sharding identity: restart a shard elsewhere under
// the same ID and its users follow it.
//
// Endpoints (same wire protocol as msodd, so PEPs and msodctl are
// unchanged):
//
//	POST /v1/decision              routed to the owning shard
//	POST /v1/advice                routed to the owning shard
//	POST /v1/management            fanned out to all shards (requires full cluster)
//	GET  /v1/health                gateway + per-shard health
//	GET  /v1/metrics               aggregated shard counters + msodgw_* series
//	GET  /v1/state/users/{user}    routed to the owning shard
//	GET  /v1/state/contexts/{bc}   fanned out and merged (requires full cluster)
//	GET  /v1/events                all live shards' event streams fanned in,
//	                               each event re-labelled with its shard ID
//	GET  /v1/explain/{requestID}   fanned out; the shard holding the record answers
//	GET  /v1/traces/{traceID}      fanned out; per-shard span sets merged into one
//	                               tree with X-Msod-Shard attribution
//	GET  /v1/cluster               ring membership, lifecycle states, handoff status
//	POST /v1/cluster/join          admit a new shard; stream its future users in live
//	POST /v1/cluster/drain         move every user off a shard, then drop it from the ring
//	POST /v1/cluster/remove        drop a shard that owns nothing (joining/gone)
//
// Membership is elastic: join and drain run a fail-closed handoff that
// streams the affected users' retained-ADI subtrees to their new
// owners; decisions for users in transit get 503 + Retry-After, never
// an answer from partial history. Shards must run with -handoff. With
// -state-file the live topology survives gateway restarts.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"msod/internal/cluster"
	"msod/internal/obsv"
)

// options are the parsed command-line settings.
type options struct {
	addr             string
	shards           []cluster.Shard
	replicas         map[string][]string
	vnodes           int
	timeout          time.Duration
	retries          int
	backoff          time.Duration
	probe            time.Duration
	failAfter        int
	breakerAfter     int
	breakerCooldown  time.Duration
	slowLog          time.Duration
	maxInflight      int
	shedRetryAfter   time.Duration
	stateFile        string
	handoffTimeout   time.Duration
	states           map[string]cluster.ShardState
	pprofAddr        string
	pprofAllowRemote bool
}

// parseShards parses "id=url,id=url" (or bare URLs) into a topology.
func parseShards(spec string) ([]cluster.Shard, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, errors.New("msodgw: -shards is required")
	}
	var out []cluster.Shard
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		id, url, ok := strings.Cut(entry, "=")
		if !ok {
			// Bare URL: it is its own (stable only as long as the
			// address is) identity.
			id, url = entry, entry
		}
		id, url = strings.TrimSpace(id), strings.TrimSpace(url)
		if id == "" || url == "" {
			return nil, fmt.Errorf("msodgw: malformed shard entry %q (want id=url)", entry)
		}
		out = append(out, cluster.Shard{ID: id, BaseURL: url})
	}
	if len(out) == 0 {
		return nil, errors.New("msodgw: -shards is required")
	}
	return out, nil
}

// repeatedFlag collects every occurrence of a repeatable flag.
type repeatedFlag []string

func (r *repeatedFlag) String() string     { return strings.Join(*r, ",") }
func (r *repeatedFlag) Set(v string) error { *r = append(*r, v); return nil }

// parseReplicas parses -replicas values ("shardID=replicaURL", comma
// separated, flag repeatable; repeat a shard ID to give it several
// replicas) into the gateway's replica map. Shard-ID validation
// happens in cluster.New, where the topology is known.
func parseReplicas(specs []string) (map[string][]string, error) {
	out := map[string][]string{}
	for _, spec := range specs {
		for _, entry := range strings.Split(spec, ",") {
			entry = strings.TrimSpace(entry)
			if entry == "" {
				continue
			}
			id, url, ok := strings.Cut(entry, "=")
			id, url = strings.TrimSpace(id), strings.TrimSpace(url)
			if !ok || id == "" || url == "" {
				return nil, fmt.Errorf("msodgw: malformed replica entry %q (want shardID=url)", entry)
			}
			out[id] = append(out[id], url)
		}
	}
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}

func parseFlags(args []string) (*options, error) {
	fs := flag.NewFlagSet("msodgw", flag.ContinueOnError)
	o := &options{}
	var shardSpec string
	var replicaSpecs repeatedFlag
	fs.StringVar(&o.addr, "addr", ":8440", "listen address")
	fs.StringVar(&shardSpec, "shards", "", "comma-separated shard list, id=url each (required)")
	fs.Var(&replicaSpecs, "replicas", "advisory read replicas, shardID=url each (comma separated; repeatable; repeat a shard ID for several replicas)")
	fs.IntVar(&o.vnodes, "vnodes", cluster.DefaultVirtualNodes, "virtual nodes per shard on the hash ring")
	fs.DurationVar(&o.timeout, "timeout", 5*time.Second, "per-request deadline for shard calls")
	fs.IntVar(&o.retries, "retries", 2, "same-shard retries after a transport error (-1 disables)")
	fs.DurationVar(&o.backoff, "retry-backoff", 25*time.Millisecond, "initial retry backoff (doubles per attempt)")
	fs.DurationVar(&o.probe, "probe", 5*time.Second, "health-probe interval")
	fs.IntVar(&o.failAfter, "fail-after", 2, "consecutive failures before a shard is marked down")
	fs.IntVar(&o.breakerAfter, "breaker-after", 5, "consecutive transport failures before a shard's circuit breaker opens")
	fs.DurationVar(&o.breakerCooldown, "breaker-cooldown", 5*time.Second, "how long an open circuit refuses traffic before a half-open probe")
	fs.DurationVar(&o.slowLog, "slowlog", 0, "log routed decisions slower than this (0 disables; 1ns logs every decision)")
	fs.IntVar(&o.maxInflight, "max-inflight", 0, "cluster-wide admission bound: shed routed requests beyond this many in flight (0 = unbounded)")
	fs.DurationVar(&o.shedRetryAfter, "shed-retry-after", time.Second, "Retry-After hint on admission sheds and handoff-window refusals")
	fs.StringVar(&o.stateFile, "state-file", "", "persist the live topology here after every membership change; restored on boot in preference to -shards")
	fs.DurationVar(&o.handoffTimeout, "handoff-timeout", 2*time.Minute, "end-to-end bound on one membership handoff")
	fs.StringVar(&o.pprofAddr, "pprof", "", "serve net/http/pprof on this address (empty disables; binds loopback unless -pprof-allow-remote)")
	fs.BoolVar(&o.pprofAllowRemote, "pprof-allow-remote", false, "allow -pprof to bind a non-loopback address (profiling endpoints expose process internals)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if err := resolveTopology(o, shardSpec); err != nil {
		return nil, err
	}
	replicas, err := parseReplicas(replicaSpecs)
	if err != nil {
		return nil, err
	}
	o.replicas = replicas
	return o, nil
}

// resolveTopology picks the boot topology: the -state-file, when it
// exists, wins over -shards — after a membership change the state file
// is what matches where the retained history actually lives, and a
// stale -shards flag could route moved users to a released donor. A
// missing state file falls back to -shards (first boot); a corrupt one
// is an error, never silently ignored.
func resolveTopology(o *options, shardSpec string) error {
	if o.stateFile != "" {
		persisted, err := cluster.LoadTopology(o.stateFile)
		switch {
		case err == nil:
			o.states = make(map[string]cluster.ShardState, len(persisted))
			for _, s := range persisted {
				state, perr := cluster.ParseShardState(s.State)
				if perr != nil {
					return fmt.Errorf("msodgw: state file %s: %w", o.stateFile, perr)
				}
				o.shards = append(o.shards, cluster.Shard{ID: s.ID, BaseURL: s.URL})
				o.states[s.ID] = state
			}
			return nil
		case os.IsNotExist(err):
			// First boot: no state yet, use the flag.
		default:
			return fmt.Errorf("msodgw: %w", err)
		}
	}
	shards, err := parseShards(shardSpec)
	if err != nil {
		return err
	}
	o.shards = shards
	return nil
}

// serve runs the gateway on the listener until ctx is cancelled, then
// shuts down gracefully.
func serve(ctx context.Context, ln net.Listener, gw *cluster.Gateway, logf func(string, ...any)) error {
	srv := &http.Server{Handler: gw}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	logf("msodgw: listening on %s", ln.Addr())

	select {
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		logf("msodgw: shutting down")
		if err := srv.Shutdown(shutCtx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		<-errCh // Serve has returned ErrServerClosed
		return nil
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

func main() {
	o, err := parseFlags(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	logger := obsv.NewLogger(os.Stderr, "msodgw")
	logf := func(format string, args ...any) { logger.Info(fmt.Sprintf(format, args...)) }
	fatalf := func(format string, args ...any) {
		logger.Error(fmt.Sprintf(format, args...))
		os.Exit(1)
	}
	// The logger is always wired in so refusals (fail-closed 503s,
	// misrouted 502s) surface as warnings; per-decision lines are gated
	// by -slowlog, with 0 pushing the threshold out of reach.
	slow := o.slowLog
	if slow <= 0 {
		slow = time.Duration(1<<63 - 1)
	}
	if o.states != nil {
		logf("msodgw: topology restored from state file %s (%d shard(s)); -shards ignored", o.stateFile, len(o.shards))
	}
	gw, err := cluster.New(cluster.Config{
		Shards:          o.shards,
		States:          o.states,
		Replicas:        o.replicas,
		VirtualNodes:    o.vnodes,
		Timeout:         o.timeout,
		Retries:         o.retries,
		RetryBackoff:    o.backoff,
		FailAfter:       o.failAfter,
		BreakerAfter:    o.breakerAfter,
		BreakerCooldown: o.breakerCooldown,
		Logger:          logger,
		SlowLog:         slow,
		MaxInflight:     o.maxInflight,
		ShedRetryAfter:  o.shedRetryAfter,
		StatePath:       o.stateFile,
		HandoffTimeout:  o.handoffTimeout,
	})
	if err != nil {
		fatalf("msodgw: %v", err)
	}
	defer gw.Close()

	if o.pprofAddr != "" {
		addr, warn, err := obsv.SanitizePprofAddr(o.pprofAddr, o.pprofAllowRemote)
		if err != nil {
			fatalf("msodgw: %v", err)
		}
		if warn {
			logger.Warn("pprof bound to a non-loopback address; profiling endpoints expose process internals",
				slog.String("addr", addr))
		}
		pln, err := net.Listen("tcp", addr)
		if err != nil {
			fatalf("msodgw: pprof listen: %v", err)
		}
		logf("msodgw: pprof on %s", pln.Addr())
		go func() {
			if err := http.Serve(pln, obsv.PprofHandler()); err != nil {
				logf("msodgw: pprof server stopped: %v", err)
			}
		}()
	}

	// One synchronous probe round before serving, so the first requests
	// already see real shard state, then periodic probing.
	gw.Checker().CheckNow()
	for id, st := range gw.Checker().Statuses() {
		logf("msodgw: shard %s %s (policy %q)", id, st.State, st.PolicyID)
	}
	gw.Checker().Start(o.probe)

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		fatalf("msodgw: listen: %v", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := serve(ctx, ln, gw, logf); err != nil {
		fatalf("msodgw: %v", err)
	}
}
