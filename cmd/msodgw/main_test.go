package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"msod"
	"msod/internal/cluster"
	"msod/internal/server"
)

func TestParseShards(t *testing.T) {
	cases := []struct {
		spec string
		want []cluster.Shard
		err  bool
	}{
		{"a=http://h1:1, b=http://h2:2", []cluster.Shard{
			{ID: "a", BaseURL: "http://h1:1"}, {ID: "b", BaseURL: "http://h2:2"}}, false},
		{"http://h1:1", []cluster.Shard{{ID: "http://h1:1", BaseURL: "http://h1:1"}}, false},
		{"a=http://h1:1,,", []cluster.Shard{{ID: "a", BaseURL: "http://h1:1"}}, false},
		{"", nil, true},
		{"  ,  ", nil, true},
		{"=http://h1:1", nil, true},
		{"a=", nil, true},
	}
	for _, c := range cases {
		got, err := parseShards(c.spec)
		if c.err {
			if err == nil {
				t.Errorf("parseShards(%q) accepted", c.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseShards(%q): %v", c.spec, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("parseShards(%q) = %v, want %v", c.spec, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("parseShards(%q)[%d] = %v, want %v", c.spec, i, got[i], c.want[i])
			}
		}
	}
}

func TestParseFlags(t *testing.T) {
	o, err := parseFlags([]string{"-shards", "a=http://h:1", "-addr", ":0", "-retries", "-1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(o.shards) != 1 || o.retries != -1 || o.addr != ":0" {
		t.Errorf("options = %+v", o)
	}
	if _, err := parseFlags([]string{"-addr", ":0"}); err == nil {
		t.Error("missing -shards accepted")
	}
}

// TestServeSmoke boots a real gateway over one in-process PDP shard and
// drives a decision through the serve loop, then shuts it down.
func TestServeSmoke(t *testing.T) {
	pol, err := msod.ParsePolicy([]byte(`
<RBACPolicy id="gw-smoke">
  <RoleList><Role value="Teller"/></RoleList>
  <TargetAccessPolicy>
    <Grant role="Teller" operation="HandleCash" target="till"/>
  </TargetAccessPolicy>
</RBACPolicy>`))
	if err != nil {
		t.Fatal(err)
	}
	p, err := msod.NewPDP(msod.PDPConfig{Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	shard := httptest.NewServer(msod.NewServer(p))
	defer shard.Close()

	gw, err := cluster.New(cluster.Config{Shards: []cluster.Shard{{ID: "s0", BaseURL: shard.URL}}})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	gw.Checker().CheckNow()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serve(ctx, ln, gw, func(string, ...any) {}) }()

	base := fmt.Sprintf("http://%s", ln.Addr())
	resp, err := server.NewClient(base, nil, server.WithTimeout(5*time.Second)).Decision(server.DecisionRequest{
		User: "alice", Roles: []string{"Teller"},
		Operation: "HandleCash", Target: "till", Context: "Branch=York, Period=2006",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Allowed {
		t.Fatalf("decision = %+v", resp)
	}
	hr, err := http.Get(base + server.HealthPath)
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
		Role   string `json:"role"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if health.Status != "ok" || health.Role != "gateway" {
		t.Errorf("health = %+v", health)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not shut down")
	}
}
