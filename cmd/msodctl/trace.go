package main

import (
	"flag"
	"fmt"
	"sort"
	"strings"
	"time"

	"msod"
)

// cmdTrace fetches a tail-sampled decision's span tree and renders it
// as a waterfall (msodctl trace -server ... <traceID>): one line per
// span, indented under its parent, with a bar showing where in the
// decision's wall-clock window the span ran. Span names match the
// msod_stage_duration_seconds stage labels (cvs, rbac, msod, store,
// audit) plus the finer sub-spans (store.wal, audit.rotate,
// msod.policy:<ctx>). Against a gateway the query fans out to every
// shard and the merged tree carries per-span shard attribution.
func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	srv := fs.String("server", "http://127.0.0.1:8443", "PDP or gateway base URL")
	tid := fs.String("trace", "", "trace ID from a decision response, audit record, or metric exemplar")
	timeout := fs.Duration("timeout", 10*time.Second, "request deadline (0 disables)")
	jsonOut := fs.Bool("json", false, "print the raw JSON record")
	fs.Parse(args)
	if *tid == "" && fs.NArg() == 1 {
		*tid = fs.Arg(0)
	}
	if *tid == "" {
		return fmt.Errorf("trace: -trace <traceID> is required (a decision response's traceID field or a metric exemplar)")
	}
	client := msod.NewClient(*srv, msod.WithClientTimeout(*timeout))
	rec, err := client.Trace(*tid)
	if err != nil {
		return err
	}
	if *jsonOut {
		return printJSON(rec)
	}
	printTrace(rec)
	return nil
}

// barWidth is the character width of the waterfall's timeline column.
const barWidth = 32

// printTrace renders a sampled trace for humans: envelope first, then
// the span waterfall in execution order.
func printTrace(rec msod.TraceRecord) {
	fmt.Printf("%s user=%s op=%s target=%s ctx=%q\n",
		strings.ToUpper(rec.Outcome), rec.User, rec.Operation, rec.Target, rec.Context)
	fmt.Printf("  trace %s", rec.TraceID)
	if rec.RequestID != "" {
		fmt.Printf("  request %s", rec.RequestID)
	}
	if rec.Advisory {
		fmt.Printf("  (advisory)")
	}
	fmt.Println()
	fmt.Printf("  at %s (%.6fs)  sampled for: %s\n",
		rec.Time.Format(time.RFC3339Nano), rec.ElapsedSeconds, rec.SampledFor)
	if rec.Reason != "" {
		fmt.Printf("  reason: %s\n", rec.Reason)
	}
	if len(rec.Shards) > 0 {
		fmt.Printf("  shards: %s\n", strings.Join(rec.Shards, ", "))
	}
	if len(rec.Spans) == 0 {
		fmt.Println("  no spans recorded")
		return
	}

	spans := make([]msod.TraceSpan, len(rec.Spans))
	copy(spans, rec.Spans)
	sort.SliceStable(spans, func(i, j int) bool {
		return spans[i].StartOffsetUS < spans[j].StartOffsetUS
	})

	// The timeline spans from the earliest start to the latest end so
	// every bar lands inside the column.
	minStart := spans[0].StartOffsetUS
	var maxEnd int64
	for _, sp := range spans {
		if end := sp.StartOffsetUS + int64(sp.DurationSeconds*1e6); end > maxEnd {
			maxEnd = end
		}
	}
	window := maxEnd - minStart
	if window <= 0 {
		window = 1
	}

	nameWidth := 0
	for _, sp := range spans {
		if w := 2*spanDepth(spans, sp) + len(sp.Name); w > nameWidth {
			nameWidth = w
		}
	}

	fmt.Printf("  spans (%d):\n", len(spans))
	for _, sp := range spans {
		indent := strings.Repeat("  ", spanDepth(spans, sp))
		label := indent + sp.Name
		fmt.Printf("    %-*s  %s  %10s", nameWidth, label,
			timelineBar(sp, minStart, window), formatSpanDuration(sp.DurationSeconds))
		if sp.Shard != "" {
			fmt.Printf("  [%s]", sp.Shard)
		}
		fmt.Println()
	}
}

// spanDepth computes how deep a span nests by walking its parent
// chain. Names can repeat across shards, so the walk is bounded by
// the span count to stay safe against accidental cycles.
func spanDepth(spans []msod.TraceSpan, sp msod.TraceSpan) int {
	byName := make(map[string]msod.TraceSpan, len(spans))
	for _, s := range spans {
		if _, ok := byName[s.Name]; !ok {
			byName[s.Name] = s
		}
	}
	depth := 0
	cur := sp
	for cur.Parent != "" && depth < len(spans) {
		next, ok := byName[cur.Parent]
		if !ok {
			break
		}
		depth++
		cur = next
	}
	return depth
}

// timelineBar renders a span's position in the decision's wall-clock
// window as a fixed-width bar: dots for idle time, '=' while the span
// ran. Every span gets at least one '=' so instantaneous spans stay
// visible.
func timelineBar(sp msod.TraceSpan, minStart, window int64) string {
	start := int((sp.StartOffsetUS - minStart) * barWidth / window)
	width := int(int64(sp.DurationSeconds*1e6) * barWidth / window)
	if width < 1 {
		width = 1
	}
	if start > barWidth-1 {
		start = barWidth - 1
	}
	if start+width > barWidth {
		width = barWidth - start
	}
	var b strings.Builder
	b.WriteString(strings.Repeat(".", start))
	b.WriteString(strings.Repeat("=", width))
	b.WriteString(strings.Repeat(".", barWidth-start-width))
	return b.String()
}

// formatSpanDuration renders a span duration at a scale fit for a
// decision pipeline (sub-millisecond to seconds).
func formatSpanDuration(seconds float64) string {
	d := time.Duration(seconds * float64(time.Second))
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}
