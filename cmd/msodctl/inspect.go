package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"msod"
)

// cmdTail follows the decision event stream of a PDP or gateway
// (msodctl tail -server ... [-user u] [-context pat] [-outcome deny]
// [-replay n] [-json]), printing one line per decision until
// interrupted.
func cmdTail(args []string) error {
	fs := flag.NewFlagSet("tail", flag.ExitOnError)
	srv := fs.String("server", "http://127.0.0.1:8443", "PDP or gateway base URL")
	user := fs.String("user", "", "only this user's decisions")
	ctxPat := fs.String("context", "", "only decisions in contexts matching this pattern (wildcards allowed)")
	outcome := fs.String("outcome", "", "only this outcome: grant | deny")
	replay := fs.Int("replay", 0, "start with up to N recent retained events")
	jsonOut := fs.Bool("json", false, "print events as JSON lines")
	fs.Parse(args)

	// Validate the filter locally for an immediate error message instead
	// of a stream-open failure.
	if _, err := msod.NewEventFilter(*user, *ctxPat, *outcome); err != nil {
		return fmt.Errorf("tail: %w", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	client := msod.NewClient(*srv)
	enc := json.NewEncoder(os.Stdout)
	// FollowEvents reconnects dropped streams with sequence resume, so
	// a server restart or network blip no longer silently skips the
	// events published while the tail was down. Only an unrecoverable
	// gap (events rotated past the server's retained ring) ends the
	// command, with an explanation rather than a quiet hole.
	err := client.FollowEvents(ctx, msod.FollowEventsOptions{
		User: *user, Context: *ctxPat, Outcome: *outcome, Replay: *replay,
	}, func(ev msod.DecisionEvent) error {
		if *jsonOut {
			return enc.Encode(ev)
		}
		fmt.Println(formatEvent(ev))
		return nil
	})
	switch {
	case errors.Is(err, context.Canceled):
		return nil // interrupted: a clean exit for a follow command
	case errors.Is(err, msod.ErrEventGap):
		return fmt.Errorf("tail: the stream could not resume where it left off — events were dropped while disconnected and have rotated out of the server's retained ring: %w (re-run tail to rejoin live)", err)
	}
	return err
}

// formatEvent renders one decision event as a human-readable line.
func formatEvent(ev msod.DecisionEvent) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %-5s user=%s", ev.Time.Format(time.RFC3339), strings.ToUpper(ev.Effect), ev.User)
	if len(ev.Roles) > 0 {
		fmt.Fprintf(&b, " roles=%s", strings.Join(ev.Roles, ","))
	}
	fmt.Fprintf(&b, " op=%s target=%s", ev.Operation, ev.Target)
	if ev.Context != "" {
		fmt.Fprintf(&b, " ctx=%q", ev.Context)
	}
	if ev.Stage != "" {
		fmt.Fprintf(&b, " stage=%s", ev.Stage)
	}
	if ev.Shard != "" {
		fmt.Fprintf(&b, " shard=%s", ev.Shard)
	}
	if ev.TraceID != "" {
		fmt.Fprintf(&b, " trace=%s", ev.TraceID)
	}
	if ev.Rule != "" {
		// The refusing MSoD constraint, inline: which rule denied and how
		// full its k-of-m counter already was.
		fmt.Fprintf(&b, " rule=%s k=%d/%d", ev.Rule, ev.K, ev.M)
	}
	if ev.Reason != "" {
		fmt.Fprintf(&b, " reason=%q", ev.Reason)
	}
	return b.String()
}

// cmdState queries live retained-ADI state: per-user with -user, or
// per-context (wildcards allowed) with -context.
func cmdState(args []string) error {
	fs := flag.NewFlagSet("state", flag.ExitOnError)
	srv := fs.String("server", "http://127.0.0.1:8443", "PDP or gateway base URL")
	user := fs.String("user", "", "user ID to inspect")
	ctxPat := fs.String("context", "", "business context pattern to inspect")
	timeout := fs.Duration("timeout", 10*time.Second, "request deadline (0 disables)")
	jsonOut := fs.Bool("json", false, "print the raw JSON answer")
	fs.Parse(args)
	if (*user == "") == (*ctxPat == "") {
		return fmt.Errorf("state: exactly one of -user or -context is required")
	}
	client := msod.NewClient(*srv, msod.WithClientTimeout(*timeout))

	if *user != "" {
		st, err := client.UserState(*user)
		if err != nil {
			return err
		}
		if *jsonOut {
			return printJSON(st)
		}
		printUserState(st, "")
		return nil
	}
	st, err := client.ContextState(*ctxPat)
	if err != nil {
		return err
	}
	if *jsonOut {
		return printJSON(st)
	}
	fmt.Printf("context %q: %d open instance(s), %d user(s)\n", st.Context, len(st.Instances), len(st.Users))
	for _, inst := range st.Instances {
		fmt.Printf("  instance %q\n", inst)
	}
	for _, u := range st.Users {
		printUserState(u, "  ")
	}
	return nil
}

func printJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// printUserState renders one user's records and constraint progress.
func printUserState(st msod.UserStateView, indent string) {
	fmt.Printf("%suser %s: %d retained record(s), %d tracked constraint(s)\n",
		indent, st.User, len(st.Records), len(st.Constraints))
	for _, rec := range st.Records {
		fmt.Printf("%s  record: roles=%s op=%s target=%s ctx=%q at %s\n",
			indent, strings.Join(rec.Roles, ","), rec.Operation, rec.Target,
			rec.Context, rec.Time.Format(time.RFC3339))
	}
	for _, c := range st.Constraints {
		consumed := c.Roles
		if c.Kind == "MMEP" {
			consumed = c.Privileges
		}
		mark := ""
		if c.NearLimit {
			mark = "  <- NEAR LIMIT (next conflicting activation is denied)"
		}
		fmt.Printf("%s  constraint %s @ %q (policy %s): %d of %d consumed [%s]%s\n",
			indent, c.Rule, c.Bound, c.Policy, c.K, c.M, strings.Join(consumed, ", "), mark)
		if c.LastTraceID != "" {
			fmt.Printf("%s    last decision trace: %s\n", indent, c.LastTraceID)
		}
	}
}
