package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"msod/internal/cluster"
)

// cmdCluster is the elastic-membership operator surface (msodctl
// cluster [status|join|drain|remove] -server http://gw:8440 ...):
// status renders the ring, lifecycle states and per-shard health from
// GET /v1/cluster; join/drain/remove drive the gateway's membership
// endpoints. Join and drain return immediately (the handoff runs
// asynchronously); -wait polls status until it finishes.
func cmdCluster(args []string) error {
	verb := "status"
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		verb = args[0]
		args = args[1:]
	}
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	srv := fs.String("server", "http://127.0.0.1:8440", "gateway base URL")
	shard := fs.String("shard", "", "shard ID (join/drain/remove)")
	shardURL := fs.String("url", "", "shard base URL (join)")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request deadline (0 disables)")
	wait := fs.Bool("wait", false, "after join/drain, poll until the handoff finishes")
	waitTimeout := fs.Duration("wait-timeout", 3*time.Minute, "give up on -wait after this long")
	fs.Parse(args)
	hc := &http.Client{Timeout: *timeout}

	needShard := func() error {
		if *shard == "" {
			return fmt.Errorf("cluster %s: -shard is required", verb)
		}
		return nil
	}
	switch verb {
	case "status":
		st, err := clusterStatus(hc, *srv)
		if err != nil {
			return err
		}
		printClusterStatus(st)
		return nil
	case "join":
		if err := needShard(); err != nil {
			return err
		}
		if *shardURL == "" {
			return fmt.Errorf("cluster join: -url is required")
		}
		return clusterChange(hc, *srv, cluster.ClusterJoinPath,
			cluster.ClusterMemberRequest{ID: *shard, URL: *shardURL}, *wait, *waitTimeout)
	case "drain":
		if err := needShard(); err != nil {
			return err
		}
		return clusterChange(hc, *srv, cluster.ClusterDrainPath,
			cluster.ClusterMemberRequest{ID: *shard}, *wait, *waitTimeout)
	case "remove":
		if err := needShard(); err != nil {
			return err
		}
		return clusterChange(hc, *srv, cluster.ClusterRemovePath,
			cluster.ClusterMemberRequest{ID: *shard}, false, 0)
	default:
		return fmt.Errorf("cluster: unknown verb %q (want status, join, drain or remove)", verb)
	}
}

// clusterStatus fetches GET /v1/cluster.
func clusterStatus(hc *http.Client, base string) (cluster.ClusterStatusResponse, error) {
	var st cluster.ClusterStatusResponse
	resp, err := hc.Get(strings.TrimRight(base, "/") + cluster.ClusterStatusPath)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return st, err
	}
	if resp.StatusCode != http.StatusOK {
		return st, clusterAPIError(resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &st); err != nil {
		return st, fmt.Errorf("decode status: %w", err)
	}
	return st, nil
}

// clusterChange POSTs one membership change and optionally waits the
// resulting handoff out.
func clusterChange(hc *http.Client, base, path string, req cluster.ClusterMemberRequest, wait bool, waitTimeout time.Duration) error {
	payload, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := hc.Post(strings.TrimRight(base, "/")+path, "application/json", bytes.NewReader(payload))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return clusterAPIError(resp.StatusCode, body)
	}
	var change cluster.ClusterChangeResponse
	if err := json.Unmarshal(body, &change); err != nil {
		return fmt.Errorf("decode response: %w", err)
	}
	fmt.Printf("shard %s: %s\n", change.Shard, change.State)
	if change.Handoff != nil {
		fmt.Printf("handoff %s (%s) started, phase %s\n", change.Handoff.ID, change.Handoff.Kind, change.Handoff.Phase)
	}
	if !wait || change.Handoff == nil {
		return nil
	}
	return waitForHandoff(hc, base, change.Handoff.ID, waitTimeout)
}

// waitForHandoff polls status until the named handoff leaves the
// current slot, then reports how it ended.
func waitForHandoff(hc *http.Client, base, id string, waitTimeout time.Duration) error {
	deadline := time.Now().Add(waitTimeout)
	for {
		st, err := clusterStatus(hc, base)
		if err != nil {
			return fmt.Errorf("poll: %w", err)
		}
		if st.Handoff == nil || st.Handoff.ID != id {
			if st.LastHandoff != nil && st.LastHandoff.ID == id {
				h := st.LastHandoff
				if h.Phase == cluster.PhaseDone {
					fmt.Printf("handoff %s done: %d of %d user(s) moved\n", h.ID, h.Moved, h.Users)
					return nil
				}
				return fmt.Errorf("handoff %s %s: %s", h.ID, h.Phase, h.Error)
			}
			return fmt.Errorf("handoff %s no longer tracked", id)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("handoff %s still %s after %s (moved %d of %d); check msod_handoff_age_seconds",
				id, st.Handoff.Phase, waitTimeout, st.Handoff.Moved, st.Handoff.Users)
		}
		time.Sleep(250 * time.Millisecond)
	}
}

// clusterAPIError surfaces the gateway's {"error": ...} body.
func clusterAPIError(status int, body []byte) error {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("gateway: %s (status %d)", e.Error, status)
	}
	return fmt.Errorf("gateway: status %d", status)
}

// printClusterStatus renders one status snapshot.
func printClusterStatus(st cluster.ClusterStatusResponse) {
	fmt.Printf("ring version %s  epoch %d  members %d [%s]\n",
		st.RingVersion, st.Epoch, len(st.Members), strings.Join(st.Members, ", "))
	if st.Admission.Capacity > 0 {
		fmt.Printf("admission: %d/%d in flight, %d shed\n",
			st.Admission.InFlight, st.Admission.Capacity, st.Admission.Shed)
	} else {
		fmt.Printf("admission: unbounded, %d shed\n", st.Admission.Shed)
	}
	ids := make([]string, 0, len(st.Shards))
	for id := range st.Shards {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		s := st.Shards[id]
		ring := " "
		if s.InRing {
			ring = "*"
		}
		line := fmt.Sprintf("%s %-12s %-9s %-5s breaker=%s", ring, id, s.Lifecycle, s.Health, s.Breaker)
		if s.Policy != "" {
			line += fmt.Sprintf(" policy=%q", s.Policy)
		}
		line += " " + s.URL
		if s.LastError != "" {
			line += fmt.Sprintf(" (last error: %s)", s.LastError)
		}
		fmt.Println(line)
	}
	if h := st.Handoff; h != nil {
		fmt.Printf("handoff %s: %s of %s, phase %s, moved %d of %d user(s), running %s\n",
			h.ID, h.Kind, h.Shard, h.Phase, h.Moved, h.Users, time.Since(h.Started).Round(time.Second))
	}
	if h := st.LastHandoff; h != nil {
		suffix := ""
		if h.Error != "" {
			suffix = ": " + h.Error
		}
		fmt.Printf("last handoff %s: %s of %s, %s, moved %d of %d user(s)%s\n",
			h.ID, h.Kind, h.Shard, h.Phase, h.Moved, h.Users, suffix)
	}
}
