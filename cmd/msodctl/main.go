// Command msodctl is the operator tool for an MSoD deployment.
//
// Subcommands:
//
//	msodctl validate -policy policy.xml
//	    Parse and validate a policy document; print a summary.
//
//	msodctl lint -policy policy.xml
//	    Report probable policy-authoring mistakes (dead roles, MSoD
//	    constraints that can never fire, unterminable contexts).
//
//	msodctl verify-trail -trail ./trail -trail-key-file key.txt
//	    Verify the audit trail's HMAC chain end to end.
//
//	msodctl replay -trail ./trail -trail-key-file key.txt -policy policy.xml
//	    Rebuild the retained ADI from the trail under the given policy and
//	    report what a restarting PDP would recover (§5.2).
//
//	msodctl decide -server http://host:8443 -user u -roles Teller \
//	        -op HandleCash -target till -context "Branch=York, Period=2006"
//	    Submit one decision request to a running msodd. With -advise the
//	    request is advisory only (nothing is recorded).
//
//	msodctl manage -server http://host:8443 -user admin \
//	        -roles RetainedADIController -op purgeContext \
//	        -pattern "Branch=*, Period=2006"
//	    Run a §4.3 retained-ADI management operation.
//
//	msodctl health -server http://host:8443
//	    Check liveness and print the loaded policy ID.
//
//	msodctl tail -server http://host:8443 [-user u] [-context "Branch=*"] \
//	        [-outcome deny] [-replay 50] [-json]
//	    Follow the live decision event stream (of one msodd, or of a
//	    whole cluster through msodgw, where events carry shard labels).
//
//	msodctl state -server http://host:8443 -user alice
//	msodctl state -server http://host:8443 -context "Branch=*, Period=2006"
//	    Show live retained-ADI state: records and per-constraint progress
//	    (k of m roles/privileges consumed, near-limit warnings).
//
//	msodctl explain -server http://host:8443 -request <requestID>
//	    Show one decision's provenance: the rules evaluated, their k-of-m
//	    counter state before and after, and the governing constraint.
//	    Against msodgw the query fans out to the shard that decided.
//
//	msodctl trace -server http://host:8443 <traceID>
//	    Render a tail-sampled decision's span tree as a waterfall:
//	    pipeline stages indented under their parents with duration
//	    bars. Against msodgw the per-shard span sets are merged and
//	    each span carries shard attribution.
//
//	msodctl cluster [status] -server http://gw:8440
//	msodctl cluster join -server http://gw:8440 -shard c -url http://host:8445 [-wait]
//	msodctl cluster drain -server http://gw:8440 -shard a [-wait]
//	msodctl cluster remove -server http://gw:8440 -shard a
//	    Inspect and change elastic cluster membership through msodgw:
//	    status shows the ring, lifecycle states and any in-flight
//	    handoff; join/drain start a live resharding handoff (async;
//	    -wait polls it to completion); remove drops a shard that owns
//	    nothing.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"msod"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "validate":
		err = cmdValidate(os.Args[2:])
	case "lint":
		err = cmdLint(os.Args[2:])
	case "verify-trail":
		err = cmdVerifyTrail(os.Args[2:])
	case "replay":
		err = cmdReplay(os.Args[2:])
	case "decide":
		err = cmdDecide(os.Args[2:])
	case "manage":
		err = cmdManage(os.Args[2:])
	case "health":
		err = cmdHealth(os.Args[2:])
	case "tail":
		err = cmdTail(os.Args[2:])
	case "state":
		err = cmdState(os.Args[2:])
	case "explain":
		err = cmdExplain(os.Args[2:])
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "cluster":
		err = cmdCluster(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "msodctl: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "msodctl: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: msodctl <validate|lint|verify-trail|replay|decide|manage|health|tail|state|explain|trace|cluster> [flags]")
}

func cmdLint(args []string) error {
	fs := flag.NewFlagSet("lint", flag.ExitOnError)
	policyPath := fs.String("policy", "", "policy XML path")
	fs.Parse(args)
	if *policyPath == "" {
		return fmt.Errorf("lint: -policy is required")
	}
	raw, err := os.ReadFile(*policyPath)
	if err != nil {
		return err
	}
	// Full verification: declaration lint, the semantic model check, and
	// the document's msod:ignore suppressions.
	res, err := msod.VerifyPolicySource(raw)
	if err != nil {
		return err
	}
	if len(res.Findings) == 0 {
		if res.Suppressed > 0 {
			fmt.Printf("no findings (%d suppressed)\n", res.Suppressed)
		} else {
			fmt.Println("no findings")
		}
		return nil
	}
	for _, f := range res.Findings {
		fmt.Println(f)
	}
	// Errors are provable defects, warnings probable ones; both fail the
	// lint so scripted pipelines catch them.
	if n := res.Errors(); n > 0 {
		return fmt.Errorf("%d error(s), %d warning(s)", n, res.Warnings())
	}
	if n := res.Warnings(); n > 0 {
		return fmt.Errorf("%d warning(s)", n)
	}
	return nil
}

func cmdValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	policyPath := fs.String("policy", "", "policy XML path")
	fs.Parse(args)
	if *policyPath == "" {
		return fmt.Errorf("validate: -policy is required")
	}
	raw, err := os.ReadFile(*policyPath)
	if err != nil {
		return err
	}
	pol, err := msod.ParsePolicy(raw)
	if err != nil {
		return err
	}
	fmt.Printf("policy %q: valid\n", pol.ID)
	fmt.Printf("  roles:       %d\n", len(pol.Roles))
	fmt.Printf("  hierarchy:   %d edge(s)\n", len(pol.Hierarchy))
	fmt.Printf("  assignments: %d (SOA trust entries)\n", len(pol.Assignments))
	fmt.Printf("  grants:      %d\n", len(pol.Grants))
	fmt.Printf("  SSD/DSD:     %d/%d set(s)\n", len(pol.SSD), len(pol.DSD))
	if pol.MSoD == nil {
		fmt.Println("  MSoD:        none")
		return nil
	}
	fmt.Printf("  MSoD:        %d polic(ies)\n", len(pol.MSoD.Policies))
	for _, mp := range pol.MSoD.Policies {
		steps := ""
		if mp.FirstStep != nil {
			steps += " first=" + mp.FirstStep.Operation
		}
		if mp.LastStep != nil {
			steps += " last=" + mp.LastStep.Operation
		}
		fmt.Printf("    context %q: %d MMER, %d MMEP%s\n",
			mp.BusinessContext, len(mp.MMER), len(mp.MMEP), steps)
	}
	return nil
}

func cmdVerifyTrail(args []string) error {
	fs := flag.NewFlagSet("verify-trail", flag.ExitOnError)
	dir := fs.String("trail", "", "trail directory")
	keyFile := fs.String("trail-key-file", "", "HMAC key file")
	fs.Parse(args)
	if *dir == "" || *keyFile == "" {
		return fmt.Errorf("verify-trail: -trail and -trail-key-file are required")
	}
	key, err := os.ReadFile(*keyFile)
	if err != nil {
		return err
	}
	r, err := msod.NewAuditReader(*dir, []byte(strings.TrimSpace(string(key))))
	if err != nil {
		return err
	}
	start := time.Now()
	n, err := r.Verify()
	if err != nil {
		return fmt.Errorf("trail INVALID: %w", err)
	}
	fmt.Printf("trail OK: %d entries verified in %s\n", n, time.Since(start).Round(time.Millisecond))
	return nil
}

func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	dir := fs.String("trail", "", "trail directory")
	keyFile := fs.String("trail-key-file", "", "HMAC key file")
	policyPath := fs.String("policy", "", "policy XML path")
	lastN := fs.Int("last", 0, "only the last N segments (0 = all)")
	since := fs.String("since", "", "only events at or after this RFC3339 time")
	fs.Parse(args)
	if *dir == "" || *keyFile == "" || *policyPath == "" {
		return fmt.Errorf("replay: -trail, -trail-key-file and -policy are required")
	}
	key, err := os.ReadFile(*keyFile)
	if err != nil {
		return err
	}
	raw, err := os.ReadFile(*policyPath)
	if err != nil {
		return err
	}
	pol, err := msod.ParsePolicy(raw)
	if err != nil {
		return err
	}
	rc := msod.RecoveryConfig{
		Mode:         msod.RecoverFromTrail,
		TrailDir:     *dir,
		TrailKey:     []byte(strings.TrimSpace(string(key))),
		LastSegments: *lastN,
	}
	if *since != "" {
		t, err := time.Parse(time.RFC3339, *since)
		if err != nil {
			return fmt.Errorf("replay: -since: %w", err)
		}
		rc.Since = t
	}
	start := time.Now()
	store, stats, err := msod.Recover(pol, rc)
	if err != nil {
		return err
	}
	fmt.Printf("replayed %d event(s) in %s\n", stats.Events, time.Since(start).Round(time.Millisecond))
	fmt.Printf("  MSoD-relevant grants: %d\n", stats.Replayed)
	fmt.Printf("  diverged under current policy: %d\n", stats.Diverged)
	fmt.Printf("  rebuilt retained-ADI records: %d (%d user(s))\n", store.Len(), store.Users())
	return nil
}

func cmdDecide(args []string) error {
	fs := flag.NewFlagSet("decide", flag.ExitOnError)
	srv := fs.String("server", "http://127.0.0.1:8443", "PDP base URL")
	user := fs.String("user", "", "user ID")
	roles := fs.String("roles", "", "comma-separated activated roles")
	op := fs.String("op", "", "operation")
	target := fs.String("target", "", "target object")
	ctx := fs.String("context", "", "business context instance")
	reqID := fs.String("request-id", "", "idempotency/explain key for this decision (server assigns the trace ID when empty)")
	advise := fs.Bool("advise", false, "advisory only: do not record the decision")
	timeout := fs.Duration("timeout", 10*time.Second, "request deadline (0 disables)")
	fs.Parse(args)

	client := msod.NewClient(*srv, msod.WithClientTimeout(*timeout))
	wire := msod.DecisionRequest{
		RequestID: *reqID,
		User:      *user,
		Roles:     splitList(*roles),
		Operation: *op,
		Target:    *target,
		Context:   *ctx,
	}
	var (
		resp msod.DecisionResponse
		err  error
	)
	if *advise {
		resp, err = client.Advice(wire)
	} else {
		resp, err = client.Decision(wire)
	}
	if err != nil {
		return err
	}
	verdict := "DENY"
	if resp.Allowed {
		verdict = "GRANT"
	}
	fmt.Printf("%s (phase=%s)\n", verdict, resp.Phase)
	if resp.Reason != "" {
		fmt.Printf("  reason: %s\n", resp.Reason)
	}
	if resp.Recorded > 0 || resp.Purged > 0 {
		fmt.Printf("  retained ADI: +%d recorded, -%d purged\n", resp.Recorded, resp.Purged)
	}
	if resp.RequestID != "" {
		fmt.Printf("  explain: msodctl explain -server %s -request %s\n", *srv, resp.RequestID)
	}
	return nil
}

func cmdManage(args []string) error {
	fs := flag.NewFlagSet("manage", flag.ExitOnError)
	srv := fs.String("server", "http://127.0.0.1:8443", "PDP base URL")
	user := fs.String("user", "", "administrator user ID")
	roles := fs.String("roles", "RetainedADIController", "comma-separated roles")
	op := fs.String("op", "stats", "operation: stats | purgeContext | purgeUser | purgeBefore")
	pattern := fs.String("pattern", "", "context pattern for purgeContext")
	targetUser := fs.String("target-user", "", "user for purgeUser")
	before := fs.String("before", "", "RFC3339 cutoff for purgeBefore")
	timeout := fs.Duration("timeout", 10*time.Second, "request deadline (0 disables)")
	fs.Parse(args)

	wire := msod.ManagementWireRequest{
		User: *user, Roles: splitList(*roles), Operation: *op,
		ContextPattern: *pattern, TargetUser: *targetUser,
	}
	if *before != "" {
		t, err := time.Parse(time.RFC3339, *before)
		if err != nil {
			return fmt.Errorf("manage: -before: %w", err)
		}
		wire.Before = &t
	}
	client := msod.NewClient(*srv, msod.WithClientTimeout(*timeout))
	res, err := client.Manage(wire)
	if err != nil {
		return err
	}
	fmt.Printf("ok: removed %d record(s); %d remain\n", res.Removed, res.Records)
	return nil
}

func cmdHealth(args []string) error {
	fs := flag.NewFlagSet("health", flag.ExitOnError)
	srv := fs.String("server", "http://127.0.0.1:8443", "PDP base URL")
	timeout := fs.Duration("timeout", 10*time.Second, "request deadline (0 disables)")
	fs.Parse(args)
	client := msod.NewClient(*srv, msod.WithClientTimeout(*timeout))
	id, err := client.Health()
	if err != nil {
		return err
	}
	fmt.Printf("ok: policy %q\n", id)
	return nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}
