package main

import (
	"flag"
	"fmt"
	"strings"
	"time"

	"msod"
)

// cmdExplain fetches and renders one decision's provenance record
// (msodctl explain -server ... -request <id>): the resolved subject,
// every MSoD rule evaluated with its k-of-m counter state before and
// after the decision, and the constraint that governed the outcome.
// Against a gateway the query fans out to the whole cluster and the
// shard that executed the decision answers.
func cmdExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	srv := fs.String("server", "http://127.0.0.1:8443", "PDP or gateway base URL")
	rid := fs.String("request", "", "request ID from a decision response (the trace ID works when no idempotency ID was sent)")
	timeout := fs.Duration("timeout", 10*time.Second, "request deadline (0 disables)")
	jsonOut := fs.Bool("json", false, "print the raw JSON record")
	fs.Parse(args)
	if *rid == "" && fs.NArg() == 1 {
		*rid = fs.Arg(0)
	}
	if *rid == "" {
		return fmt.Errorf("explain: -request <requestID> is required (a decision response's requestID field)")
	}
	client := msod.NewClient(*srv, msod.WithClientTimeout(*timeout))
	rec, err := client.Explain(*rid)
	if err != nil {
		return err
	}
	if *jsonOut {
		return printJSON(rec)
	}
	printExplain(rec)
	return nil
}

// printExplain renders a provenance record for humans.
func printExplain(rec msod.ExplainRecord) {
	fmt.Printf("%s user=%s op=%s target=%s ctx=%q\n",
		strings.ToUpper(rec.Outcome), rec.User, rec.Operation, rec.Target, rec.Context)
	fmt.Printf("  request %s  trace %s\n", rec.RequestID, rec.TraceID)
	fmt.Printf("  at %s (%.6fs)\n", rec.Time.Format(time.RFC3339Nano), rec.ElapsedSeconds)
	if len(rec.Roles) > 0 {
		fmt.Printf("  roles: %s\n", strings.Join(rec.Roles, ", "))
	}
	fmt.Printf("  phase=%s", rec.Phase)
	if rec.Reason != "" {
		fmt.Printf(" reason=%q", rec.Reason)
	}
	fmt.Println()
	if rec.MatchedPolicies > 0 || rec.Recorded > 0 || rec.Purged > 0 {
		fmt.Printf("  MSoD: %d polic(ies) matched; retained ADI +%d recorded, -%d purged\n",
			rec.MatchedPolicies, rec.Recorded, rec.Purged)
	}
	if len(rec.Rules) == 0 {
		fmt.Println("  no MSoD rule applied to this request")
	} else {
		fmt.Printf("  rule evaluations (%d):\n", len(rec.Rules))
		for _, ev := range rec.Rules {
			fmt.Printf("    %s\n", formatRuleEval(ev))
		}
	}
	if rec.Governing != nil {
		fmt.Printf("  governing constraint: %s\n", formatRuleEval(*rec.Governing))
	}
	for _, t := range rec.Terminated {
		fmt.Printf("  context terminated (last step): %q — bound history purged\n", t)
	}
}

// formatRuleEval renders one rule evaluation with its k-of-m movement.
func formatRuleEval(ev msod.ExplainRuleEval) string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] %s @ %q (policy %s): k %d -> %d of m %d",
		ev.Kind, ev.Rule, ev.Bound, ev.Policy, ev.K, ev.KAfter, ev.M)
	if len(ev.Matched) > 0 {
		fmt.Fprintf(&b, " [%s]", strings.Join(ev.Matched, ", "))
	}
	if ev.Denied {
		b.WriteString("  <- DENIED here (count reached the forbidden cardinality)")
	}
	return b.String()
}
