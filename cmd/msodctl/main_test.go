package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"msod"
)

func TestSplitList(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"Teller", []string{"Teller"}},
		{"Teller, Auditor", []string{"Teller", "Auditor"}},
		{" a ,b , c ", []string{"a", "b", "c"}},
	}
	for _, c := range cases {
		if got := splitList(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("splitList(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

const ctlPolicyXML = `
<RBACPolicy id="ctl-test">
  <RoleList><Role value="Teller"/><Role value="RetainedADIController"/></RoleList>
  <TargetAccessPolicy>
    <Grant role="Teller" operation="HandleCash" target="till"/>
    <Grant role="RetainedADIController" operation="stats" target="msod:retainedADI"/>
  </TargetAccessPolicy>
  <MSoDPolicySet>
    <MSoDPolicy BusinessContext="Branch=*, Period=!">
      <MMER ForbiddenCardinality="2">
        <Role type="e" value="Teller"/>
        <Role type="e" value="Auditor"/>
      </MMER>
    </MSoDPolicy>
  </MSoDPolicySet>
</RBACPolicy>`

func writeTempPolicy(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "policy.xml")
	if err := os.WriteFile(path, []byte(ctlPolicyXML), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCmdValidate(t *testing.T) {
	if err := cmdValidate([]string{"-policy", writeTempPolicy(t)}); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if err := cmdValidate([]string{}); err == nil {
		t.Error("validate without -policy accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.xml")
	os.WriteFile(bad, []byte("<RBACPolicy><RoleList><Role value=''/></RoleList></RBACPolicy>"), 0o600)
	if err := cmdValidate([]string{"-policy", bad}); err == nil {
		t.Error("invalid policy accepted")
	}
	if err := cmdValidate([]string{"-policy", filepath.Join(t.TempDir(), "absent.xml")}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestCmdLint(t *testing.T) {
	// The ctl test policy references an undeclared "Auditor" in its MMER,
	// so lint must fail with warnings.
	if err := cmdLint([]string{"-policy", writeTempPolicy(t)}); err == nil {
		t.Error("lint passed a policy with an undeclared MMER role")
	}
	if err := cmdLint([]string{}); err == nil {
		t.Error("lint without -policy accepted")
	}
	clean := filepath.Join(t.TempDir(), "clean.xml")
	os.WriteFile(clean, []byte(`
<RBACPolicy id="clean">
  <RoleList><Role value="A"/><Role value="B"/></RoleList>
  <TargetAccessPolicy>
    <Grant role="A" operation="op" target="t"/>
    <Grant role="B" operation="op" target="t"/>
    <Grant role="A" operation="end" target="t"/>
  </TargetAccessPolicy>
  <MSoDPolicySet>
    <MSoDPolicy BusinessContext="P=!">
      <LastStep operation="end" targetURI="t"/>
      <MMER ForbiddenCardinality="2"><Role type="e" value="A"/><Role type="e" value="B"/></MMER>
    </MSoDPolicy>
  </MSoDPolicySet>
</RBACPolicy>`), 0o600)
	if err := cmdLint([]string{"-policy", clean}); err != nil {
		t.Errorf("lint on clean policy: %v", err)
	}
}

func TestCmdVerifyTrail(t *testing.T) {
	dir := t.TempDir()
	keyFile := filepath.Join(dir, "key")
	if err := os.WriteFile(keyFile, []byte("trail-key\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	trailDir := filepath.Join(dir, "trail")
	w, err := msod.NewAuditWriter(trailDir, []byte("trail-key"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(msod.AuditEvent{User: "u", Operation: "op", Target: "t",
		Context: "A=1", Effect: "grant"}); err != nil {
		t.Fatal(err)
	}
	w.Close()

	if err := cmdVerifyTrail([]string{"-trail", trailDir, "-trail-key-file", keyFile}); err != nil {
		t.Fatalf("verify-trail: %v", err)
	}
	if err := cmdVerifyTrail([]string{"-trail", trailDir}); err == nil {
		t.Error("verify-trail without key accepted")
	}
	wrongKey := filepath.Join(dir, "wrong")
	os.WriteFile(wrongKey, []byte("nope"), 0o600)
	if err := cmdVerifyTrail([]string{"-trail", trailDir, "-trail-key-file", wrongKey}); err == nil {
		t.Error("wrong key verified")
	}
}

func TestCmdReplay(t *testing.T) {
	dir := t.TempDir()
	keyFile := filepath.Join(dir, "key")
	if err := os.WriteFile(keyFile, []byte("k"), 0o600); err != nil {
		t.Fatal(err)
	}
	policyPath := writeTempPolicy(t)

	// Build a trail by running a PDP.
	trailDir := filepath.Join(dir, "trail")
	w, err := msod.NewAuditWriter(trailDir, []byte("k"), 0)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := msod.ParsePolicy([]byte(ctlPolicyXML))
	if err != nil {
		t.Fatal(err)
	}
	p, err := msod.NewPDP(msod.PDPConfig{Policy: pol, Trail: w})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Decide(msod.Request{
		User: "alice", Roles: []msod.RoleName{"Teller"},
		Operation: "HandleCash", Target: "till",
		Context: msod.MustContext("Branch=York, Period=2006"),
	}); err != nil {
		t.Fatal(err)
	}
	w.Close()

	if err := cmdReplay([]string{"-trail", trailDir, "-trail-key-file", keyFile,
		"-policy", policyPath}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if err := cmdReplay([]string{"-trail", trailDir}); err == nil {
		t.Error("replay without required flags accepted")
	}
	if err := cmdReplay([]string{"-trail", trailDir, "-trail-key-file", keyFile,
		"-policy", policyPath, "-since", "garbage"}); err == nil {
		t.Error("bad -since accepted")
	}
}

func TestCmdDecideManageHealth(t *testing.T) {
	pol, err := msod.ParsePolicy([]byte(ctlPolicyXML))
	if err != nil {
		t.Fatal(err)
	}
	p, err := msod.NewPDP(msod.PDPConfig{Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(msod.NewServer(p))
	t.Cleanup(ts.Close)

	if err := cmdHealth([]string{"-server", ts.URL}); err != nil {
		t.Fatalf("health: %v", err)
	}
	if err := cmdDecide([]string{"-server", ts.URL,
		"-user", "alice", "-roles", "Teller",
		"-op", "HandleCash", "-target", "till",
		"-context", "Branch=York, Period=2006"}); err != nil {
		t.Fatalf("decide: %v", err)
	}
	if err := cmdManage([]string{"-server", ts.URL,
		"-user", "root", "-roles", "RetainedADIController", "-op", "stats"}); err != nil {
		t.Fatalf("manage stats: %v", err)
	}
	// Unauthorized manage surfaces the server error.
	if err := cmdManage([]string{"-server", ts.URL,
		"-user", "alice", "-roles", "Teller", "-op", "stats"}); err == nil {
		t.Error("unauthorized manage succeeded")
	}
	// Bad -before flag.
	if err := cmdManage([]string{"-server", ts.URL,
		"-user", "root", "-roles", "RetainedADIController",
		"-op", "purgeBefore", "-before", "not-a-time"}); err == nil {
		t.Error("bad -before accepted")
	}
}
