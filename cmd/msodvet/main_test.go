package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// chdir moves the process into dir for the test's duration (the driver
// discovers the module from the working directory).
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(old) })
}

// writeModule lays out a throwaway module for the driver to analyse.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestDriverFailsOnSeededViolation(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module seeded\n\ngo 1.22\n",
		"internal/pdp/pdp.go": `package pdp

type Decision struct{ Allowed bool }

func Decide(err error) Decision {
	if err != nil {
		return Decision{Allowed: true}
	}
	return Decision{}
}
`,
	})
	chdir(t, dir)
	var stdout, stderr bytes.Buffer
	code := run([]string{"./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "[failclosed]") {
		t.Errorf("stdout missing failclosed finding:\n%s", stdout.String())
	}
}

func TestDriverCleanModuleExitsZero(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module clean\n\ngo 1.22\n",
		"internal/pdp/pdp.go": `package pdp

type Decision struct{ Allowed bool }

func Decide(err error) Decision {
	if err != nil {
		return Decision{}
	}
	return Decision{Allowed: true}
}
`,
	})
	chdir(t, dir)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0; stdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
}

func TestDriverUnknownAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-run", "nosuch"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr missing unknown-analyzer message: %s", stderr.String())
	}
}

func TestDriverList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"failclosed", "auditerr", "clockuse", "metricname", "lockspan"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout.String())
		}
	}
}

func TestDriverPoliciesCleanDir(t *testing.T) {
	dir := t.TempDir()
	clean := `<RBACPolicy id="p">
  <RoleList><Role value="A"/><Role value="B"/></RoleList>
  <TargetAccessPolicy>
    <Grant role="A" operation="op" target="t"/>
    <Grant role="B" operation="end" target="t"/>
  </TargetAccessPolicy>
  <MSoDPolicySet>
    <MSoDPolicy BusinessContext="P=!">
      <LastStep operation="end" targetURI="t"/>
      <MMER ForbiddenCardinality="2"><Role type="e" value="A"/><Role type="e" value="B"/></MMER>
    </MSoDPolicy>
  </MSoDPolicySet>
</RBACPolicy>`
	if err := os.WriteFile(filepath.Join(dir, "clean.xml"), []byte(clean), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-policies", dir}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0; stdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stderr.String(), "ok (1 policy document(s)") {
		t.Errorf("missing ok summary: %s", stderr.String())
	}
}

func TestDriverPoliciesSeededDefectFails(t *testing.T) {
	dir := t.TempDir()
	// The LastStep privilege is granted to nobody: a provable
	// unpurgeable-context defect the gate must refuse.
	bad := `<RBACPolicy id="p">
  <RoleList><Role value="A"/></RoleList>
  <TargetAccessPolicy><Grant role="A" operation="op" target="t"/></TargetAccessPolicy>
  <MSoDPolicySet>
    <MSoDPolicy BusinessContext="P=!">
      <LastStep operation="finish" targetURI="t"/>
      <MMEP ForbiddenCardinality="2">
        <Privilege operation="op" target="t"/>
        <Privilege operation="finish" target="t"/>
      </MMEP>
    </MSoDPolicy>
  </MSoDPolicySet>
</RBACPolicy>`
	if err := os.WriteFile(filepath.Join(dir, "bad.xml"), []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-policies", dir}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1; stdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "[unpurgeable]") {
		t.Errorf("expected an unpurgeable finding, got:\n%s", stdout.String())
	}
}

func TestDriverPoliciesEmptyDir(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-policies", t.TempDir()}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2; stderr:\n%s", code, stderr.String())
	}
}
