package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// chdir moves the process into dir for the test's duration (the driver
// discovers the module from the working directory).
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(old) })
}

// writeModule lays out a throwaway module for the driver to analyse.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestDriverFailsOnSeededViolation(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module seeded\n\ngo 1.22\n",
		"internal/pdp/pdp.go": `package pdp

type Decision struct{ Allowed bool }

func Decide(err error) Decision {
	if err != nil {
		return Decision{Allowed: true}
	}
	return Decision{}
}
`,
	})
	chdir(t, dir)
	var stdout, stderr bytes.Buffer
	code := run([]string{"./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "[failclosed]") {
		t.Errorf("stdout missing failclosed finding:\n%s", stdout.String())
	}
}

func TestDriverCleanModuleExitsZero(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module clean\n\ngo 1.22\n",
		"internal/pdp/pdp.go": `package pdp

type Decision struct{ Allowed bool }

func Decide(err error) Decision {
	if err != nil {
		return Decision{}
	}
	return Decision{Allowed: true}
}
`,
	})
	chdir(t, dir)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0; stdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
}

func TestDriverUnknownAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-run", "nosuch"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr missing unknown-analyzer message: %s", stderr.String())
	}
}

func TestDriverList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"failclosed", "auditerr", "clockuse", "metricname", "lockspan"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout.String())
		}
	}
}
