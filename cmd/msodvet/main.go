// Command msodvet is the module's custom static-analysis suite. It
// proves the MSoD fail-closed and determinism invariants at compile
// time: no error-dominated branch may grant, no audit/ADI error may be
// discarded, decision-path packages must use the injected clock, metric
// families must be literal and registered exactly once, and no audit
// append / broadcast / HTTP call may run under a store mutex.
//
// Usage:
//
//	go run ./cmd/msodvet ./...
//	go run ./cmd/msodvet -run failclosed,auditerr ./internal/pdp/...
//	go run ./cmd/msodvet -policies policies
//
// Findings print as "file:line: [analyzer] message". Exit status is 1
// when findings exist, 2 when the module fails to load, 0 otherwise.
// A finding is suppressible only with a reasoned directive on the same
// or preceding line:
//
//	//msod:ignore <analyzer> <reason>
//
// Unused or malformed directives are findings themselves. See
// docs/ANALYZERS.md for the invariant catalogue.
//
// -policies switches from Go sources to policy XML documents: every
// *.xml under the directory is parsed, linted and model-checked
// (internal/policycheck) and the run fails on any error- or
// warning-severity finding. Suppressions use XML comments:
//
//	<!-- msod:ignore <check> <where-prefix|*> <reason> -->
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"msod/internal/analysis"
	"msod/internal/policycheck"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("msodvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	runList := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	policiesDir := fs.String("policies", "", "verify every policy XML document under this directory instead of analysing Go packages")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: msodvet [-run a,b] [-list] [-policies dir] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *policiesDir != "" {
		return runPolicies(*policiesDir, stdout, stderr)
	}

	analyzers := analysis.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name(), a.Doc())
		}
		return 0
	}
	if *runList != "" {
		analyzers = selectAnalyzers(analyzers, *runList, stderr)
		if analyzers == nil {
			return 2
		}
	}

	root, module, err := findModule()
	if err != nil {
		fmt.Fprintf(stderr, "msodvet: %v\n", err)
		return 2
	}

	loader, err := analysis.NewLoader(root, module)
	if err != nil {
		fmt.Fprintf(stderr, "msodvet: %v\n", err)
		return 2
	}

	keep := packageFilter(fs.Args(), root)
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintf(stderr, "msodvet: %v\n", err)
		return 2
	}
	var selected []*analysis.Package
	for _, p := range pkgs {
		if keep(p.RelPath) {
			selected = append(selected, p)
		}
	}
	if len(selected) == 0 {
		fmt.Fprintln(stderr, "msodvet: no packages matched")
		return 2
	}

	res, err := analysis.RunPackages(loader.Fset(), selected, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "msodvet: %v\n", err)
		return 2
	}

	for _, f := range res.Findings {
		fmt.Fprintln(stdout, f.String(root))
	}
	if len(res.Findings) > 0 {
		fmt.Fprintf(stderr, "msodvet: %d finding(s) in %d package(s), %d suppressed\n",
			len(res.Findings), len(selected), res.Suppressed)
		return 1
	}
	fmt.Fprintf(stderr, "msodvet: ok (%d package(s), %d finding(s) suppressed by //msod:ignore)\n",
		len(selected), res.Suppressed)
	return 0
}

// runPolicies is the -policies mode: verify every *.xml under dir with
// the policy model checker. Error- and warning-severity findings fail
// the run; info notes print but do not.
func runPolicies(dir string, stdout, stderr io.Writer) int {
	var files []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".xml") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		fmt.Fprintf(stderr, "msodvet: %v\n", err)
		return 2
	}
	if len(files) == 0 {
		fmt.Fprintf(stderr, "msodvet: no policy documents (*.xml) under %s\n", dir)
		return 2
	}
	sort.Strings(files)

	failing, suppressed := 0, 0
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintf(stderr, "msodvet: %v\n", err)
			return 2
		}
		res, err := policycheck.CheckSource(data, policycheck.Config{})
		if err != nil {
			fmt.Fprintf(stderr, "msodvet: %s: %v\n", file, err)
			return 2
		}
		for _, f := range res.Findings {
			fmt.Fprintf(stdout, "%s: %s\n", file, f)
		}
		failing += res.Errors() + res.Warnings()
		suppressed += res.Suppressed
	}
	if failing > 0 {
		fmt.Fprintf(stderr, "msodvet: %d failing finding(s) in %d policy document(s), %d suppressed\n",
			failing, len(files), suppressed)
		return 1
	}
	fmt.Fprintf(stderr, "msodvet: ok (%d policy document(s), %d finding(s) suppressed by msod:ignore)\n",
		len(files), suppressed)
	return 0
}

// selectAnalyzers filters by the -run list; nil means an unknown name.
func selectAnalyzers(all []analysis.Analyzer, runList string, stderr io.Writer) []analysis.Analyzer {
	byName := make(map[string]analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name()] = a
	}
	var out []analysis.Analyzer
	for _, name := range strings.Split(runList, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			fmt.Fprintf(stderr, "msodvet: unknown analyzer %q (use -list)\n", name)
			return nil
		}
		out = append(out, a)
	}
	return out
}

// packageFilter converts go-style package patterns (./..., ./internal/pdp,
// internal/pdp/...) into a RelPath predicate. No patterns means
// everything.
func packageFilter(patterns []string, root string) func(rel string) bool {
	if len(patterns) == 0 {
		return func(string) bool { return true }
	}
	type rule struct {
		rel  string
		tree bool
	}
	var rules []rule
	for _, pat := range patterns {
		tree := false
		if strings.HasSuffix(pat, "/...") {
			tree = true
			pat = strings.TrimSuffix(pat, "/...")
		} else if pat == "..." {
			tree = true
			pat = "."
		}
		pat = strings.TrimPrefix(pat, "./")
		if pat == "." || pat == "" {
			if tree {
				return func(string) bool { return true }
			}
			rules = append(rules, rule{rel: "", tree: false})
			continue
		}
		rules = append(rules, rule{rel: filepath.ToSlash(pat), tree: tree})
	}
	return func(rel string) bool {
		for _, r := range rules {
			if rel == r.rel {
				return true
			}
			if r.tree && strings.HasPrefix(rel, r.rel+"/") {
				return true
			}
		}
		return false
	}
}

// findModule walks up from the working directory to the go.mod and
// returns the module root and module path.
func findModule() (root, module string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		gomod := filepath.Join(dir, "go.mod")
		if _, statErr := os.Stat(gomod); statErr == nil {
			module, err = modulePath(gomod)
			if err != nil {
				return "", "", err
			}
			return dir, module, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath reads the module directive from a go.mod file.
func modulePath(gomod string) (string, error) {
	f, err := os.Open(gomod)
	if err != nil {
		return "", err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}
