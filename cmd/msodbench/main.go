// Command msodbench regenerates the experiment tables of EXPERIMENTS.md.
//
// Usage:
//
//	msodbench                        # run every experiment (E1..E17)
//	msodbench -e E3                  # run one experiment
//	msodbench -e E1,E4               # run a subset
//	msodbench -list                  # list experiments
//	msodbench -json out/             # also write machine-readable BENCH_<ID>.json files
//	msodbench -trajectory BENCH_6.json  # bundle the run into one checked-in trajectory point
//
// Scenario experiments (E1–E3, E11, E12) assert the paper's expected
// outcomes and fail loudly on any mismatch; timing experiments report
// machine-dependent numbers whose *shape* is what EXPERIMENTS.md
// discusses.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"msod/internal/bench"
)

func main() {
	var (
		exps       = flag.String("e", "", "comma-separated experiment IDs (default: all)")
		list       = flag.Bool("list", false, "list experiments and exit")
		jsonDir    = flag.String("json", "", "also write BENCH_<ID>.json reports to this directory")
		trajectory = flag.String("trajectory", "", "bundle the selected experiments' reports into this single JSON file (one checked-in perf trajectory point, e.g. BENCH_6.json)")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-5s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []bench.Experiment
	if *exps == "" {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*exps, ",") {
			id = strings.TrimSpace(id)
			e, ok := bench.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "msodbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	failed := 0
	var tables []*bench.Table
	for _, e := range selected {
		tbl, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "msodbench: %s FAILED: %v\n\n", e.ID, err)
			failed++
			continue
		}
		if err := tbl.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "msodbench: render %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		tables = append(tables, tbl)
		if *jsonDir != "" {
			path, err := tbl.WriteJSONFile(*jsonDir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "msodbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "msodbench: wrote %s\n", path)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "msodbench: %d experiment(s) failed\n", failed)
		os.Exit(1)
	}
	if *trajectory != "" {
		label := strings.TrimSuffix(filepath.Base(*trajectory), ".json")
		if err := bench.WriteTrajectoryFile(*trajectory, label, tables); err != nil {
			fmt.Fprintf(os.Stderr, "msodbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "msodbench: wrote %s\n", *trajectory)
	}
}
