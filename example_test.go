package msod_test

import (
	"fmt"
	"log"

	"msod"
)

// Example reproduces the paper's Example 1 in a few lines: a bank
// employee who handled cash in an audit period may not audit that same
// period, even in a later session at another branch.
func Example() {
	policyXML := []byte(`
<RBACPolicy id="bank">
  <RoleList><Role value="Teller"/><Role value="Auditor"/></RoleList>
  <TargetAccessPolicy>
    <Grant role="Teller" operation="HandleCash" target="till"/>
    <Grant role="Auditor" operation="Audit" target="ledger"/>
  </TargetAccessPolicy>
  <MSoDPolicySet>
    <MSoDPolicy BusinessContext="Branch=*, Period=!">
      <MMER ForbiddenCardinality="2">
        <Role type="employee" value="Teller"/>
        <Role type="employee" value="Auditor"/>
      </MMER>
    </MSoDPolicy>
  </MSoDPolicySet>
</RBACPolicy>`)

	pol, err := msod.ParsePolicy(policyXML)
	if err != nil {
		log.Fatal(err)
	}
	p, err := msod.NewPDP(msod.PDPConfig{Policy: pol})
	if err != nil {
		log.Fatal(err)
	}

	dec, _ := p.Decide(msod.Request{
		User: "alice", Roles: []msod.RoleName{"Teller"},
		Operation: "HandleCash", Target: "till",
		Context: msod.MustContext("Branch=York, Period=2006"),
	})
	fmt.Println("teller work:", dec.Allowed)

	dec, _ = p.Decide(msod.Request{
		User: "alice", Roles: []msod.RoleName{"Auditor"},
		Operation: "Audit", Target: "ledger",
		Context: msod.MustContext("Branch=Leeds, Period=2006"),
	})
	fmt.Println("same-period audit:", dec.Allowed, "-", dec.Phase)

	// Output:
	// teller work: true
	// same-period audit: false - msod
}

// ExampleNewEngine shows the engine layer alone: MMEP with a repeated
// privilege capping executions per business context instance.
func ExampleNewEngine() {
	approve := msod.Permission{Operation: "approve", Object: "check"}
	eng, err := msod.NewEngine(msod.NewADIStore(), []msod.EnginePolicy{{
		Context: msod.MustContext("taxRefundProcess=!"),
		MMEP: []msod.MMEPRule{{
			Privileges:  []msod.Permission{approve, approve},
			Cardinality: 2,
		}},
	}})
	if err != nil {
		log.Fatal(err)
	}
	req := msod.EngineRequest{
		User: "m1", Roles: []msod.RoleName{"Manager"},
		Operation: "approve", Target: "check",
		Context: msod.MustContext("taxRefundProcess=p1"),
	}
	for i := 1; i <= 2; i++ {
		dec, _ := eng.Evaluate(req)
		fmt.Printf("approval %d: %s\n", i, dec.Effect)
	}
	// Output:
	// approval 1: grant
	// approval 2: deny
}

// ExampleParseContext shows business context names and their matching
// semantics.
func ExampleParseContext() {
	policyCtx := msod.MustContext("Branch=*, Period=!")
	instance := msod.MustContext("Branch=York, Period=2006")
	fmt.Println("policy context:", policyCtx)
	fmt.Println("is instance:", policyCtx.IsInstance(), "/", instance.IsInstance())
	fmt.Println("instance depth:", instance.Len())
	// Output:
	// policy context: Branch=*, Period=!
	// is instance: false / true
	// instance depth: 2
}

// ExampleLintPolicy shows the policy linter catching a role-name typo
// that would otherwise silently disable a constraint.
func ExampleLintPolicy() {
	pol, err := msod.ParsePolicy([]byte(`
<RBACPolicy id="typo">
  <RoleList><Role value="Teller"/><Role value="Auditor"/></RoleList>
  <TargetAccessPolicy>
    <Grant role="Teller" operation="HandleCash" target="till"/>
    <Grant role="Auditor" operation="Audit" target="ledger"/>
  </TargetAccessPolicy>
  <MSoDPolicySet>
    <MSoDPolicy BusinessContext="Period=!">
      <MMER ForbiddenCardinality="2">
        <Role type="e" value="Teller"/>
        <Role type="e" value="Auditr"/>
      </MMER>
    </MSoDPolicy>
  </MSoDPolicySet>
</RBACPolicy>`))
	if err != nil {
		log.Fatal(err)
	}
	findings, err := msod.LintPolicy(pol)
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range findings {
		if f.Severity == msod.LintWarn {
			fmt.Println(f)
		}
	}
	// Output:
	// warning: MSoDPolicy[0]: unpurgeable business context "Period=!": no policy's last step terminates it, so retained history grows without bound until an administrative purge (§4.3, §6)
	// warning: MSoDPolicy[0].MMER[0]: role "Auditr" is not declared in RoleList; the constraint can never match it
}
